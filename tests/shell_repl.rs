//! Regression test driving the real `infpdb shell` binary over a pipe:
//! load the example PDB, prepare a query, evaluate at two tolerances,
//! and check the printed intervals are identical to what `infpdb open`
//! prints for the same queries.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_infpdb");

fn kb_path() -> String {
    format!("{}/examples/kb.pdb", env!("CARGO_MANIFEST_DIR"))
}

/// Runs the shell binary with `script` on stdin, returning stdout.
fn run_shell(script: &str) -> String {
    let mut child = Command::new(BIN)
        .arg("shell")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn infpdb shell");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8(out.stdout).unwrap()
}

/// Runs a plain `infpdb` subcommand, returning stdout.
fn run_cli(args: &[&str]) -> String {
    let out = Command::new(BIN).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "infpdb {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Extracts `estimate` and `[lo, hi]` from a `P(q) = e ± ... in [lo, hi]`
/// or `open`-style output line.
fn estimate_of(line: &str) -> String {
    line.split('=')
        .nth(1)
        .unwrap()
        .trim()
        .split(' ')
        .next()
        .unwrap()
        .to_string()
}

fn interval_of(text: &str) -> String {
    let open = text.find('[').expect("interval bracket");
    let close = text[open..].find(']').expect("interval close") + open;
    text[open..=close].to_string()
}

#[test]
fn shell_over_a_pipe_matches_the_open_subcommand_at_two_tolerances() {
    let kb = kb_path();
    let query = "Person(1000000)";
    let script = format!(
        "load {kb}\n\
         prepare far {query}\n\
         list\n\
         eps 0.01\n\
         run far\n\
         eps 0.001\n\
         run far\n\
         trace\n\
         quit\n"
    );
    let out = run_shell(&script);
    assert!(out.contains("loaded"), "{out}");
    assert!(out.contains("prepared far"), "{out}");
    assert!(out.contains("far: Person(1000000)"), "{out}");
    let result_lines: Vec<&str> = out
        .lines()
        .filter(|l| l.starts_with(&format!("P({query})")))
        .collect();
    assert_eq!(result_lines.len(), 2, "{out}");
    for (line, eps) in result_lines.iter().zip(["0.01", "0.001"]) {
        // the offline `open` subcommand is the reference
        let reference = run_cli(&["open", &kb, query, "--eps", eps]);
        assert_eq!(
            estimate_of(line),
            estimate_of(reference.lines().next().unwrap()),
            "estimate at eps {eps}: shell {line:?} vs open {reference:?}"
        );
        let ref_interval = reference
            .lines()
            .find(|l| l.starts_with("certified interval"))
            .unwrap();
        assert_eq!(
            interval_of(line),
            interval_of(ref_interval),
            "interval at eps {eps}"
        );
    }
    // the trace of the last run is inspectable
    assert!(
        out.contains("shannon") || out.contains("arena"),
        "trace missing: {out}"
    );
    assert!(out.trim_end().ends_with("bye"), "{out}");
}

#[test]
fn shell_survives_garbage_and_still_quits_cleanly() {
    let kb = kb_path();
    let script = format!(
        "frobnicate\n\
         query Person(42)\n\
         load {kb}\n\
         query Nope(1)\n\
         query Person(42)\n\
         quit\n"
    );
    let out = run_shell(&script);
    assert!(out.contains("error: unknown command"), "{out}");
    assert!(out.contains("error: no backend"), "{out}");
    let errors = out.lines().filter(|l| l.starts_with("error:")).count();
    assert_eq!(errors, 3, "{out}");
    assert!(
        out.lines().any(|l| l.starts_with("P(Person(42)) = ")),
        "{out}"
    );
}

//! Failure-injection integration tests: every user-facing error path
//! produces a typed error, never a panic or silent nonsense.

use infpdb::finite::{BidTable, TiTable};
use infpdb::logic::parse;
use infpdb::math::series::{GeometricSeries, HarmonicSeries};
use infpdb::ti::construction::CountableTiPdb;
use infpdb::ti::enumerator::FactSupply;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;

fn schema() -> Schema {
    Schema::from_relations([Relation::new("R", 1)]).unwrap()
}

fn rfact(n: i64) -> Fact {
    Fact::new(RelId(0), [Value::int(n)])
}

#[test]
fn divergent_series_rejected_everywhere() {
    let divergent =
        || FactSupply::unary_over_naturals(schema(), RelId(0), HarmonicSeries::new(1.0).unwrap());
    // construction
    assert!(CountableTiPdb::new(divergent()).is_err());
    // completion of a valid table with a divergent tail
    let t = TiTable::from_facts(schema(), [(rfact(1), 0.5)]).unwrap();
    let tail = FactSupply::from_fn(
        schema(),
        |i| rfact(100 + i as i64),
        HarmonicSeries::new(0.5).unwrap(),
    );
    assert!(infpdb::openworld::independent_facts::complete_ti_table(&t, tail).is_err());
}

#[test]
fn probabilities_outside_unit_interval_rejected() {
    let mut t = TiTable::new(schema());
    assert!(t.add_fact(rfact(1), -0.1).is_err());
    assert!(t.add_fact(rfact(1), 1.1).is_err());
    assert!(t.add_fact(rfact(1), f64::NAN).is_err());
    assert!(t.add_fact(rfact(1), f64::INFINITY).is_err());
    // still usable after rejected inserts
    assert!(t.add_fact(rfact(1), 0.5).is_ok());
    assert_eq!(t.len(), 1);
}

#[test]
fn malformed_queries_rejected() {
    let s = schema();
    for bad in ["R(", "R(x", "exists . R(x)", "R(x) /\\", "Q(x)", "R(x, y)"] {
        assert!(parse(bad, &s).is_err(), "{bad:?} should fail to parse");
    }
}

#[test]
fn free_variable_queries_rejected_by_boolean_apis() {
    let s = schema();
    let t = TiTable::from_facts(s.clone(), [(rfact(1), 0.5)]).unwrap();
    let free = parse("R(x)", &s).unwrap();
    assert!(
        infpdb::finite::engine::prob_boolean(&free, &t, infpdb::finite::engine::Engine::Auto)
            .is_err()
    );
    let pdb = CountableTiPdb::new(FactSupply::unary_over_naturals(
        s,
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap();
    assert!(infpdb::query::approx::approx_prob_boolean(
        &pdb,
        &free,
        0.1,
        infpdb::finite::engine::Engine::Auto
    )
    .is_err());
}

#[test]
fn tolerances_outside_proposition_6_1_range_rejected() {
    let pdb = CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema(),
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap();
    let q = parse("exists x. R(x)", pdb.schema()).unwrap();
    for eps in [0.0, -0.1, 0.5, 0.9, 1.5, f64::NAN] {
        assert!(
            infpdb::query::approx::approx_prob_boolean(
                &pdb,
                &q,
                eps,
                infpdb::finite::engine::Engine::Auto
            )
            .is_err(),
            "eps = {eps} must be rejected"
        );
    }
}

#[test]
fn overfull_blocks_rejected() {
    let s = Schema::from_relations([Relation::new("KV", 2)]).unwrap();
    let kv = |k: i64, v: i64| Fact::new(RelId(0), [Value::int(k), Value::int(v)]);
    assert!(BidTable::from_blocks(s.clone(), [vec![(kv(1, 0), 0.7), (kv(1, 1), 0.6)]],).is_err());
    // duplicate fact across blocks
    assert!(BidTable::from_blocks(s, [vec![(kv(1, 0), 0.2)], vec![(kv(1, 0), 0.2)]],).is_err());
}

#[test]
fn world_enumeration_guards_explode_gracefully() {
    let t = TiTable::from_facts(schema(), (0..30).map(|i| (rfact(i), 0.5))).unwrap();
    let err = t.worlds().unwrap_err();
    assert!(err.to_string().contains("2^30"));
}

#[test]
fn schema_violations_rejected() {
    let mut s = schema();
    assert!(s.add_relation("R", 2).is_err()); // duplicate name
    assert!(s.add_relation("", 1).is_err()); // empty name
                                             // arity mismatch at fact construction
    assert!(Fact::checked(
        &s,
        &infpdb_core::universe::Naturals,
        RelId(0),
        [Value::int(1), Value::int(2)],
    )
    .is_err());
}

#[test]
fn fact_lookup_misses_are_errors_not_zeros() {
    // Distinguishing "probability 0" from "not in the enumeration" matters:
    // locate failures surface as FactNotFound.
    let pdb = CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema(),
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap();
    let err = pdb.marginal(&rfact(-5), 100).unwrap_err();
    assert!(matches!(err, infpdb::ti::TiError::FactNotFound { .. }));
}

#[test]
fn non_injective_enumerations_detected() {
    let dup = FactSupply::from_fn(
        schema(),
        |_| rfact(7),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    );
    assert!(dup.check_injective(5).is_err());
    // and truncation through the table layer catches it too
    let pdb = CountableTiPdb::new(dup).unwrap(); // construction can't see it…
    assert!(pdb.truncate(5).is_err()); // …but materialization does
}

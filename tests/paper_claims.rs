//! One integration test per formal claim of the paper, numbered as in the
//! text. EXPERIMENTS.md indexes these against the benchmark suite.

use infpdb::finite::engine::Engine;
use infpdb::finite::TiTable;
use infpdb::logic::parse;
use infpdb::math::series::{GeometricSeries, HarmonicSeries, ProbSeries, ZetaSeries};
use infpdb::ti::construction::CountableTiPdb;
use infpdb::ti::enumerator::FactSupply;
use infpdb_core::fact::{Fact, FactId};
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;

fn unary_schema() -> Schema {
    Schema::from_relations([Relation::new("R", 1)]).unwrap()
}

fn geometric_pdb() -> CountableTiPdb {
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        unary_schema(),
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap()
}

#[test]
fn fact_2_1_answers_live_in_the_active_domain() {
    // φ(D) ⊆ (adom(D) ∪ adom(φ))^k for finite answers.
    use infpdb_core::storage::InstanceStore;
    use infpdb_logic::Evaluator;
    let schema = Schema::from_relations([Relation::new("E", 2)]).unwrap();
    let e = schema.rel_id("E").unwrap();
    let facts = [
        Fact::new(e, [Value::int(1), Value::int(2)]),
        Fact::new(e, [Value::int(2), Value::int(3)]),
    ];
    let store = InstanceStore::from_facts(facts.iter(), &schema);
    let q = parse("exists y. E(x, y) \\/ x = 7", &schema).unwrap();
    let ev = Evaluator::new(&store, &q);
    let answers = ev.answers(&q);
    let adom_plus_consts: Vec<Value> = ev.domain().to_vec();
    for t in &answers {
        assert!(adom_plus_consts.contains(&t[0]));
    }
    // and the formula constant 7 is indeed answerable
    assert!(answers.contains(&vec![Value::int(7)]));
}

#[test]
fn lemma_2_3_distributive_law() {
    // ∏(1 + a_i) = Σ_{J finite} ∏_{j∈J} a_j on finite slices.
    for terms in [
        vec![0.3, -0.2, 0.5],
        vec![0.9; 6],
        vec![-0.5, 0.25, -0.125, 0.0625],
    ] {
        let (lhs, rhs) = infpdb::math::products::distributive_law_sides(&terms);
        assert!((lhs - rhs).abs() < 1e-9, "{terms:?}: {lhs} vs {rhs}");
    }
}

#[test]
fn equation_6_size_tail_probabilities_vanish() {
    // lim P(S_D ≥ n) = 0 — on the truncated materialization.
    let pdb = geometric_pdb();
    let table = pdb.truncate(16).unwrap();
    let dist = table.size_distribution();
    let tail = |n: usize| -> f64 { dist.iter().skip(n).sum() };
    assert!(tail(0) > 0.999);
    let mut prev = tail(0);
    for n in 1..10 {
        let t = tail(n);
        assert!(t <= prev + 1e-12);
        prev = t;
    }
    assert!(tail(10) < 1e-3);
}

#[test]
fn proposition_3_4_positive_marginals_are_countable() {
    // In any materialized PDB the set F_ω is finite; the witness machinery
    // is fact_marginals.
    let pdb = geometric_pdb().truncate(12).unwrap().worlds().unwrap();
    let marginals = infpdb_core::size::fact_marginals(pdb.space());
    assert!(marginals.len() <= 12);
    assert!(marginals.values().all(|&p| p > 0.0));
}

#[test]
fn lemma_4_2_and_4_4_tuple_independence_realized() {
    // P(⋂ E_f) = ∏ P(E_f) for finite fact sets of the construction.
    let pdb = geometric_pdb();
    use infpdb_core::event::Event;
    let e0 = Event::fact(FactId(0));
    let e1 = Event::fact(FactId(1));
    let e2 = Event::fact(FactId(2));
    let joint = pdb
        .prob_event_exact(&e0.clone().and(e1.clone()).and(e2.clone()), 8)
        .unwrap();
    let product = pdb.prob_event_exact(&e0, 8).unwrap()
        * pdb.prob_event_exact(&e1, 8).unwrap()
        * pdb.prob_event_exact(&e2, 8).unwrap();
    assert!((joint - product).abs() < 1e-12);
    // and E_F events on disjoint fact sets are independent (Def 4.1)
    let f1 = Event::any_of([FactId(0), FactId(2)]);
    let f2 = Event::any_of([FactId(1), FactId(3)]);
    let joint2 = pdb
        .prob_event_exact(&f1.clone().and(f2.clone()), 8)
        .unwrap();
    let prod2 = pdb.prob_event_exact(&f1, 8).unwrap() * pdb.prob_event_exact(&f2, 8).unwrap();
    assert!((joint2 - prod2).abs() < 1e-12);
}

#[test]
fn theorem_4_8_existence_iff_convergence() {
    // convergent: exists
    assert!(CountableTiPdb::new(FactSupply::unary_over_naturals(
        unary_schema(),
        RelId(0),
        ZetaSeries::basel(),
    ))
    .is_ok());
    // divergent: rejected with a witness
    let err = CountableTiPdb::new(FactSupply::unary_over_naturals(
        unary_schema(),
        RelId(0),
        HarmonicSeries::new(1.0).unwrap(),
    ))
    .unwrap_err();
    assert!(err.to_string().contains("Theorem 4.8"));
}

#[test]
fn corollary_4_7_finite_expected_size() {
    let pdb = geometric_pdb();
    let (lo, hi) = pdb.expected_size_bounds(100).unwrap();
    assert!(lo <= 1.0 && 1.0 <= hi && hi.is_finite());
}

#[test]
fn example_3_3_infinite_expected_size() {
    let ex = infpdb::ti::counterexample::LazySizedPdb::example_3_3();
    // mass normalizes…
    assert!(ex.partial_mass(50_000) > 0.9999);
    // …but the expectation explodes
    assert!(ex.partial_moment(1, 40) > 1e6);
}

#[test]
fn proposition_4_9_size_envelope_contradiction() {
    // any FO view of a t.i. PDB has E(S) ≤ k·E(S_C) + c < ∞, while
    // Example 3.3 exceeds every finite bound
    let ex = infpdb::ti::counterexample::LazySizedPdb::example_3_3();
    for (k, c, e_sc) in [(2usize, 0usize, 1.0), (5, 10, 100.0), (10, 100, 1e6)] {
        let bound = infpdb::ti::counterexample::fo_view_expected_size_bound(k, c, e_sc);
        let mut n = 1;
        while ex.partial_moment(1, n) <= bound {
            n += 1;
            assert!(n < 100, "partial expectations must cross any bound");
        }
    }
}

#[test]
fn theorem_4_15_bid_existence_iff_convergence() {
    use infpdb::ti::bid::{BlockSupply, CountableBidPdb};
    let schema = Schema::from_relations([Relation::new("R", 2)]).unwrap();
    let convergent = BlockSupply::from_fn(
        schema.clone(),
        |i| {
            vec![(
                Fact::new(RelId(0), [Value::int(i as i64), Value::int(0)]),
                0.5f64.powi(i as i32 + 1),
            )]
        },
        GeometricSeries::new(0.5, 0.5).unwrap(),
    );
    assert!(CountableBidPdb::new(convergent, 8).is_ok());
    let divergent = BlockSupply::from_fn(
        schema,
        |i| {
            vec![(
                Fact::new(RelId(0), [Value::int(i as i64), Value::int(0)]),
                1.0 / (i + 1) as f64,
            )]
        },
        HarmonicSeries::new(1.0).unwrap(),
    );
    assert!(CountableBidPdb::new(divergent, 8).is_err());
}

#[test]
fn lemma_4_12_bid_independence_equivalence() {
    // For countable b.i.d. PDBs, condition (2) (independence of E_{B'}
    // for measurable subsets of distinct blocks) is equivalent to (2')
    // (independence of (E_f) for fact sets with ≤ 1 fact per block). We
    // check both formulations on a materialized finite b.i.d. space.
    use infpdb::finite::BidTable;
    use infpdb_core::event::Event;
    let schema = Schema::from_relations([Relation::new("KV", 2)]).unwrap();
    let kv = |k: i64, v: i64| Fact::new(RelId(0), [Value::int(k), Value::int(v)]);
    let t = BidTable::from_blocks(
        schema,
        [
            vec![(kv(1, 0), 0.3), (kv(1, 1), 0.4)],
            vec![(kv(2, 0), 0.6), (kv(2, 1), 0.2)],
        ],
    )
    .unwrap();
    let worlds = t.worlds().unwrap();
    let id = |k: i64, v: i64| t.interner().get(&kv(k, v)).unwrap();
    // (2'): single facts from distinct blocks are independent
    let f_a = Event::fact(id(1, 0));
    let f_b = Event::fact(id(2, 1));
    let joint = worlds.prob_event(&f_a.clone().and(f_b.clone()));
    assert!((joint - worlds.prob_event(&f_a) * worlds.prob_event(&f_b)).abs() < 1e-12);
    // (2): measurable *subsets* of distinct blocks (E_{B'} events, here
    // two-fact subsets) are independent too
    let b1 = Event::any_of([id(1, 0), id(1, 1)]);
    let b2 = Event::any_of([id(2, 0), id(2, 1)]);
    let joint2 = worlds.prob_event(&b1.clone().and(b2.clone()));
    assert!((joint2 - worlds.prob_event(&b1) * worlds.prob_event(&b2)).abs() < 1e-12);
    // while two facts *within* one block are exclusive, not independent
    let same = Event::fact(id(1, 0)).and(Event::fact(id(1, 1)));
    assert_eq!(worlds.prob_event(&same), 0.0);
}

#[test]
fn theorem_5_5_completion_condition() {
    use infpdb::finite::FinitePdb;
    use infpdb::openworld::independent_facts::complete_pdb;
    let schema = unary_schema();
    let rfact = |n: i64| Fact::new(RelId(0), [Value::int(n)]);
    // correlated original, closed under subsets/unions after closure repair
    let original = FinitePdb::from_worlds(
        schema.clone(),
        [
            (vec![rfact(1), rfact(2)], 0.5),
            (vec![rfact(1)], 0.2),
            (vec![rfact(2)], 0.2),
            (vec![], 0.1),
        ],
    )
    .unwrap();
    assert!(infpdb::openworld::closure::is_closed(&original));
    let tail = FactSupply::from_fn(
        schema,
        |i| Fact::new(RelId(0), [Value::int(100 + i as i64)]),
        GeometricSeries::new(0.3, 0.5).unwrap(),
    );
    let completed = complete_pdb(original, tail).unwrap();
    let worst = completed.verify_cc(64, 1e-9).unwrap();
    assert!(worst < 1e-9);
}

#[test]
fn proposition_6_1_additive_guarantee() {
    use infpdb::query::approx::approx_prob_boolean;
    let pdb = geometric_pdb();
    // ground truth via exact product
    let mut none = 1.0;
    for i in 0..2000 {
        none *= 1.0 - pdb.supply().prob(i);
    }
    let truth = 1.0 - none;
    let q = parse("exists x. R(x)", pdb.schema()).unwrap();
    for eps in [0.25, 0.05, 0.005] {
        let a = approx_prob_boolean(&pdb, &q, eps, Engine::Auto).unwrap();
        assert!(truth - eps <= a.estimate && a.estimate <= truth + eps);
    }
}

#[test]
fn proposition_6_1_claim_star() {
    // ∏(1−p_i) ≥ exp(−(3/2)Σp_i) for p_i < 1/2
    for series in [
        GeometricSeries::new(0.45, 0.5).unwrap(),
        GeometricSeries::new(0.01, 0.9).unwrap(),
    ] {
        let (prod, bound) = infpdb::math::products::claim_star_sides(&series, 1000);
        assert!(prod >= bound - 1e-12);
    }
}

#[test]
fn proposition_6_2_emptiness_dichotomy() {
    use infpdb::tm::reduction::{has_r_witness, prob_exists_r};
    use infpdb::tm::{RepresentedPdb, TuringMachine};
    // L(N) = ∅ ⟺ P(∃x R(x)) = 0
    let empty = RepresentedPdb::new(TuringMachine::rejects_all());
    assert!(has_r_witness(&empty, 300).is_none());
    assert_eq!(prob_exists_r(&empty, 40).unwrap().lo(), 0.0);
    let nonempty = RepresentedPdb::new(TuringMachine::accepts_strings_with_a_one());
    assert!(has_r_witness(&nonempty, 300).is_some());
    assert!(prob_exists_r(&nonempty, 40).unwrap().lo() > 0.0);
    // the representation has weight 1 as required
    let s = nonempty.supply();
    let (lo, hi) = s.total_bounds(50).unwrap();
    assert!(lo <= 1.0 && 1.0 <= hi);
}

#[test]
fn section_6_complexity_remark_n_of_eps() {
    use infpdb::query::budget::n_of_eps_profile;
    let geometric = geometric_pdb();
    let zeta = CountableTiPdb::new(FactSupply::unary_over_naturals(
        unary_schema(),
        RelId(0),
        ZetaSeries::basel(),
    ))
    .unwrap();
    let eps = [0.2, 0.02, 0.002];
    let pg = n_of_eps_profile(&geometric, &eps).unwrap();
    let pz = n_of_eps_profile(&zeta, &eps).unwrap();
    // log growth vs polynomial growth
    assert!(pg[2].1 < 40, "geometric n(0.002) = {}", pg[2].1);
    assert!(pz[2].1 > 400, "zeta n(0.002) = {}", pz[2].1);
}

#[test]
fn finite_pdbs_are_fo_definable_over_ti_finite_case() {
    // the classical finite fact the paper contrasts with Prop 4.9: here we
    // check a weaker executable instance — a correlated 2-world PDB is the
    // FO-view image of a t.i. PDB (standard construction with one switch
    // fact)
    use infpdb::logic::view::{FoView, ViewDef};
    let source = Schema::from_relations([Relation::new("W", 1)]).unwrap();
    let target = Schema::from_relations([Relation::new("R", 1)]).unwrap();
    let w = source.rel_id("W").unwrap();
    // t.i. source: a single switch fact W(0) with p = 0.3
    let ti = TiTable::from_facts(source.clone(), [(Fact::new(w, [Value::int(0)]), 0.3)]).unwrap();
    // view: R(x) ≡ (x = 1 ∧ W(0)) ∨ (x = 2 ∧ ¬W(0)) — worlds {R(1)} or {R(2)}
    let formula = parse("(x = 1 /\\ W(0)) \\/ (x = 2 /\\ !W(0))", &source).unwrap();
    let view = FoView::new(
        source,
        target.clone(),
        [ViewDef {
            target: target.rel_id("R").unwrap(),
            formula,
        }],
    )
    .unwrap();
    let worlds = ti.worlds().unwrap();
    let (image, interner) = view.pushforward(worlds.space(), ti.interner());
    // image: {R(1)} with 0.3, {R(2)} with 0.7 — a correlated (non-t.i.) PDB
    assert_eq!(image.support_size(), 2);
    let r = target.rel_id("R").unwrap();
    let r1 = interner.get(&Fact::new(r, [Value::int(1)])).unwrap();
    let p1 = image.prob_where(|d| d.contains(r1));
    assert!((p1 - 0.3).abs() < 1e-12);
}

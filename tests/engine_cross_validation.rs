//! Cross-validation of the four finite inference engines on randomized
//! tuple-independent tables: brute-force world enumeration is the ground
//! truth; lifted (where applicable), lineage+Shannon, and Monte Carlo must
//! agree.

use infpdb::finite::engine::{self, Engine};
use infpdb::finite::TiTable;
use infpdb::logic::parse;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_core::value::Value;

fn schema() -> Schema {
    Schema::from_relations([
        Relation::new("R", 1),
        Relation::new("S", 2),
        Relation::new("T", 1),
    ])
    .unwrap()
}

/// A random table over a small domain: every potential fact is included
/// with probability 1/2, with a random marginal.
fn random_table(rng: &mut SplitMix64, domain: i64) -> TiTable {
    let mut t = TiTable::new(schema());
    let mut maybe_add = |fact: Fact, rng: &mut SplitMix64| {
        if rng.next_u64().is_multiple_of(2) {
            let p = (rng.next_u64() % 1000) as f64 / 1000.0;
            t.add_fact(fact, p).unwrap();
        }
    };
    for a in 1..=domain {
        maybe_add(Fact::new(RelId(0), [Value::int(a)]), rng);
        maybe_add(Fact::new(RelId(2), [Value::int(a)]), rng);
        for b in 1..=domain {
            maybe_add(Fact::new(RelId(1), [Value::int(a), Value::int(b)]), rng);
        }
    }
    t
}

const SAFE_QUERIES: &[&str] = &[
    "exists x. R(x)",
    "exists x, y. R(x) /\\ S(x, y)",
    "exists x, y. S(x, y)",
    "(exists x. R(x)) /\\ (exists y. T(y))",
];

const UNSAFE_OR_NON_CQ_QUERIES: &[&str] = &[
    "exists x, y. R(x) /\\ S(x, y) /\\ T(y)", // H₀
    "forall x. (R(x) -> T(x))",
    "exists x. R(x) /\\ !T(x)",
    "exists x. (R(x) /\\ forall y. (S(x, y) -> T(y)))",
];

#[test]
fn lineage_engine_matches_brute_force_on_random_tables() {
    let mut rng = SplitMix64::new(42);
    for trial in 0..15 {
        let t = random_table(&mut rng, 3);
        if t.len() > 16 {
            continue;
        }
        for qs in SAFE_QUERIES.iter().chain(UNSAFE_OR_NON_CQ_QUERIES) {
            let q = parse(qs, t.schema()).unwrap();
            let fast = engine::prob_boolean(&q, &t, Engine::Lineage).unwrap();
            let slow = engine::prob_boolean(&q, &t, Engine::Brute).unwrap();
            assert!(
                (fast - slow).abs() < 1e-9,
                "trial {trial} {qs}: lineage {fast} vs brute {slow}"
            );
        }
    }
}

#[test]
fn lifted_engine_matches_brute_force_on_safe_queries() {
    let mut rng = SplitMix64::new(43);
    for trial in 0..15 {
        let t = random_table(&mut rng, 3);
        if t.len() > 16 {
            continue;
        }
        for qs in SAFE_QUERIES {
            let q = parse(qs, t.schema()).unwrap();
            let fast = engine::prob_boolean(&q, &t, Engine::Lifted).unwrap();
            let slow = engine::prob_boolean(&q, &t, Engine::Brute).unwrap();
            assert!(
                (fast - slow).abs() < 1e-9,
                "trial {trial} {qs}: lifted {fast} vs brute {slow}"
            );
        }
    }
}

#[test]
fn auto_engine_always_matches_brute_force() {
    let mut rng = SplitMix64::new(44);
    for trial in 0..10 {
        let t = random_table(&mut rng, 3);
        if t.len() > 16 {
            continue;
        }
        for qs in SAFE_QUERIES.iter().chain(UNSAFE_OR_NON_CQ_QUERIES) {
            let q = parse(qs, t.schema()).unwrap();
            let fast = engine::prob_boolean(&q, &t, Engine::Auto).unwrap();
            let slow = engine::prob_boolean(&q, &t, Engine::Brute).unwrap();
            assert!(
                (fast - slow).abs() < 1e-9,
                "trial {trial} {qs}: auto {fast} vs brute {slow}"
            );
        }
    }
}

#[test]
fn monte_carlo_lands_within_hoeffding_bounds() {
    let mut rng = SplitMix64::new(45);
    let t = random_table(&mut rng, 3);
    let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
    let truth = engine::prob_boolean(&q, &t, Engine::Lineage).unwrap();
    let est = infpdb::finite::monte_carlo::estimate_with_guarantee(&q, &t, 0.03, 0.001, &mut rng)
        .unwrap();
    assert!(
        (est.estimate - truth).abs() <= 0.03,
        "MC {} vs truth {truth}",
        est.estimate
    );
}

#[test]
fn answer_marginals_cross_validate() {
    let mut rng = SplitMix64::new(46);
    for _ in 0..5 {
        let t = random_table(&mut rng, 3);
        if t.len() > 14 {
            continue;
        }
        let q = parse("exists y. S(x, y)", t.schema()).unwrap();
        let fast = engine::answer_marginals(&q, &t, Engine::Auto).unwrap();
        let worlds = t.worlds().unwrap();
        let slow = worlds.answer_marginals(&q).unwrap();
        assert_eq!(fast.len(), slow.len());
        for ((ta, pa), (tb, pb)) in fast.iter().zip(slow.iter()) {
            assert_eq!(ta, tb);
            assert!((pa - pb).abs() < 1e-9);
        }
    }
}

#[test]
fn bid_worlds_cross_validate_with_direct_formula() {
    use infpdb::finite::BidTable;
    let mut rng = SplitMix64::new(47);
    for _ in 0..10 {
        // random keyed table: 3 keys, up to 3 alternatives each
        let mut facts = Vec::new();
        for k in 1..=3i64 {
            let alts = 1 + (rng.next_u64() % 3) as i64;
            let mut remaining = 1.0f64;
            for v in 0..alts {
                let p = (remaining * (rng.next_u64() % 900) as f64 / 1000.0).max(0.0);
                remaining -= p;
                facts.push((Fact::new(RelId(1), [Value::int(k), Value::int(v)]), p));
            }
        }
        let t = BidTable::keyed(schema(), facts, 0).unwrap();
        let worlds = t.worlds().unwrap();
        for (d, p) in worlds.space().outcomes() {
            assert!(
                (t.instance_prob(d) - p).abs() < 1e-9,
                "world probability mismatch"
            );
        }
        assert!((worlds.space().total_mass() - 1.0).abs() < 1e-9);
    }
}

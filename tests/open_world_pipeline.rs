//! End-to-end integration: finite table → open-world completion →
//! approximate query evaluation, validated against independently computed
//! ground truth.

use infpdb::finite::engine::Engine;
use infpdb::finite::TiTable;
use infpdb::logic::parse;
use infpdb::math::series::GeometricSeries;
use infpdb::openworld::closed_world::closed_world_completion;
use infpdb::openworld::independent_facts::complete_ti_table;
use infpdb::query::approx::approx_prob_boolean;
use infpdb::query::marginal::approx_answers;
use infpdb::ti::enumerator::FactSupply;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;

fn schema() -> Schema {
    Schema::from_relations([Relation::new("Likes", 2), Relation::new("Person", 1)]).unwrap()
}

fn person(n: i64) -> Fact {
    Fact::new(RelId(1), [Value::int(n)])
}

fn likes(a: i64, b: i64) -> Fact {
    Fact::new(RelId(0), [Value::int(a), Value::int(b)])
}

fn base_table() -> TiTable {
    TiTable::from_facts(
        schema(),
        [
            (person(1), 0.9),
            (person(2), 0.8),
            (likes(1, 2), 0.5),
            (likes(2, 1), 0.4),
        ],
    )
    .unwrap()
}

/// Open-world tail: new people 10, 11, 12, … with geometric probabilities.
fn people_tail() -> FactSupply {
    FactSupply::from_fn(
        schema(),
        |i| person(10 + i as i64),
        GeometricSeries::new(0.2, 0.5).unwrap(),
    )
}

#[test]
fn completion_preserves_closed_world_queries() {
    let table = base_table();
    let open = complete_ti_table(&table, people_tail()).unwrap();
    // Queries that only touch original facts keep their probabilities
    // (within ε): the completion condition in query form.
    for qs in [
        "Person(1)",
        "Person(1) /\\ Person(2)",
        "Likes(1, 2) \\/ Likes(2, 1)",
        "exists x, y. Likes(x, y)",
    ] {
        let q = parse(qs, &schema()).unwrap();
        let closed_truth = infpdb::finite::engine::prob_boolean(&q, &table, Engine::Brute).unwrap();
        let a = approx_prob_boolean(&open, &q, 0.005, Engine::Auto).unwrap();
        assert!(
            (a.estimate - closed_truth).abs() <= 0.005,
            "{qs}: open {} vs closed {closed_truth}",
            a.estimate
        );
    }
}

#[test]
fn open_world_changes_the_right_queries() {
    let table = base_table();
    let open = complete_ti_table(&table, people_tail()).unwrap();
    // "some person exists" is boosted by the tail
    let q = parse("exists x. Person(x)", &schema()).unwrap();
    let closed_truth = infpdb::finite::engine::prob_boolean(&q, &table, Engine::Brute).unwrap();
    let a = approx_prob_boolean(&open, &q, 0.001, Engine::Auto).unwrap();
    assert!(
        a.estimate > closed_truth + 0.001,
        "open {} should exceed closed {closed_truth}",
        a.estimate
    );
    // a specific unknown person went from impossible to merely unlikely
    let q10 = parse("Person(10)", &schema()).unwrap();
    let a10 = approx_prob_boolean(&open, &q10, 0.001, Engine::Auto).unwrap();
    assert!((a10.estimate - 0.2).abs() <= 0.001);
    assert_eq!(
        infpdb::finite::engine::prob_boolean(&q10, &table, Engine::Brute).unwrap(),
        0.0
    );
}

#[test]
fn closed_world_completion_is_the_degenerate_case() {
    let table = base_table();
    let cw = closed_world_completion(&table).unwrap();
    let q = parse("exists x. Person(x)", &schema()).unwrap();
    let closed_truth = infpdb::finite::engine::prob_boolean(&q, &table, Engine::Brute).unwrap();
    let a = approx_prob_boolean(&cw, &q, 0.001, Engine::Auto).unwrap();
    assert!((a.estimate - closed_truth).abs() < 1e-12);
}

#[test]
fn approximate_answers_over_the_completion() {
    let table = base_table();
    let open = complete_ti_table(&table, people_tail()).unwrap();
    let q = parse("Person(x)", &schema()).unwrap();
    let ans = approx_answers(&open, &q, 0.01, Engine::Auto).unwrap();
    // original people plus enough tail people to cover the mass
    assert!(ans.len() >= 4);
    let find = |n: i64| {
        ans.iter()
            .find(|a| a.tuple == vec![Value::int(n)])
            .map(|a| a.prob)
    };
    assert!((find(1).unwrap() - 0.9).abs() <= 0.01);
    assert!((find(10).unwrap() - 0.2).abs() <= 0.01);
    assert!((find(11).unwrap() - 0.1).abs() <= 0.01);
    assert_eq!(find(999), None);
}

#[test]
fn guarantee_vs_high_precision_ground_truth() {
    // ∃x Person(x) on the completed PDB has an analytically computable
    // probability: 1 − (1−.9)(1−.8)·∏_{i≥0}(1 − .2·.5^i).
    let table = base_table();
    let open = complete_ti_table(&table, people_tail()).unwrap();
    let mut none = 0.1 * 0.2;
    for i in 0..500 {
        none *= 1.0 - 0.2 * 0.5f64.powi(i);
    }
    let truth = 1.0 - none;
    let q = parse("exists x. Person(x)", &schema()).unwrap();
    for eps in [0.1, 0.01, 0.001, 0.0001] {
        let a = approx_prob_boolean(&open, &q, eps, Engine::Auto).unwrap();
        assert!(
            (a.estimate - truth).abs() <= eps,
            "eps {eps}: {} vs {truth}",
            a.estimate
        );
    }
}

#[test]
fn mixed_query_over_original_and_tail_facts() {
    let table = base_table();
    let open = complete_ti_table(&table, people_tail()).unwrap();
    // Person(1) ∧ Person(10): independent, .9 × .2
    let q = parse("Person(1) /\\ Person(10)", &schema()).unwrap();
    let a = approx_prob_boolean(&open, &q, 0.001, Engine::Auto).unwrap();
    assert!((a.estimate - 0.18).abs() <= 0.001);
    // negation across the boundary: Person(1) ∧ ¬Person(10)
    let q2 = parse("Person(1) /\\ !Person(10)", &schema()).unwrap();
    let a2 = approx_prob_boolean(&open, &q2, 0.001, Engine::Auto).unwrap();
    assert!((a2.estimate - 0.72).abs() <= 0.001);
}

#[test]
fn sampling_the_completion_matches_query_probabilities() {
    use infpdb::ti::sampler::TruncatedSampler;
    use infpdb_core::space::rand_core::SplitMix64;
    use infpdb_core::storage::InstanceStore;
    use infpdb_logic::Evaluator;

    let table = base_table();
    let open = complete_ti_table(&table, people_tail()).unwrap();
    let sampler = TruncatedSampler::new(&open, 1e-4).unwrap();
    let q = parse("exists x, y. Person(x) /\\ Person(y) /\\ x != y", &schema()).unwrap();
    let mut rng = SplitMix64::new(117);
    let n = 20_000;
    let mut hits = 0usize;
    for _ in 0..n {
        let world = sampler.sample(&mut rng);
        let store = InstanceStore::build(&world, sampler.table().interner(), &schema());
        if Evaluator::new(&store, &q).eval_sentence(&q).unwrap() {
            hits += 1;
        }
    }
    let freq = hits as f64 / n as f64;
    let a = approx_prob_boolean(&open, &q, 0.001, Engine::Auto).unwrap();
    assert!(
        (freq - a.estimate).abs() < 0.02,
        "sampled {freq} vs evaluated {}",
        a.estimate
    );
}

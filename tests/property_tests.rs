//! Property-based tests (proptest) on the library's core invariants.

use infpdb::finite::engine::{self, Engine};
use infpdb::finite::TiTable;
use infpdb::logic::parse;
use infpdb::math::series::{FiniteSeries, GeometricSeries, ProbSeries};
use infpdb::math::{LogProb, ProbInterval};
use infpdb_core::fact::{Fact, FactId};
use infpdb_core::instance::Instance;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|i| i as f64 / 1000.0)
}

fn strict_prob() -> impl Strategy<Value = f64> {
    (1u32..1000).prop_map(|i| i as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── Series ───────────────────────────────────────────────────────────

    #[test]
    fn finite_series_tails_are_exact_suffix_sums(terms in prop::collection::vec(prob(), 0..20)) {
        let s = FiniteSeries::new(terms.clone()).unwrap();
        for i in 0..=terms.len() {
            let suffix: f64 = terms[i.min(terms.len())..].iter().sum();
            let bound = s.tail_upper(i).finite().unwrap();
            prop_assert!((bound - suffix).abs() < 1e-9);
        }
        // partial + tail brackets the (equal) total
        let (lo, hi) = s.total_bounds(terms.len() / 2).unwrap();
        let total: f64 = terms.iter().sum();
        prop_assert!(lo <= total + 1e-9 && total <= hi + 1e-9);
    }

    #[test]
    fn geometric_tail_bound_dominates_partial_sums(
        first in strict_prob(),
        ratio in (1u32..99).prop_map(|i| i as f64 / 100.0),
        at in 0usize..30,
    ) {
        let g = GeometricSeries::new(first, ratio).unwrap();
        let bound = g.tail_upper(at).finite().unwrap();
        let sampled: f64 = (at..at + 500).map(|i| g.term(i)).sum();
        prop_assert!(sampled <= bound * (1.0 + 1e-12));
    }

    // ── LogProb / ProbInterval ───────────────────────────────────────────

    #[test]
    fn logprob_mul_add_match_linear_arithmetic(a in prob(), b in prob()) {
        let la = LogProb::from_prob(a).unwrap();
        let lb = LogProb::from_prob(b).unwrap();
        prop_assert!((la.mul(lb).prob() - a * b).abs() < 1e-12);
        let sum = (a + b).min(1.0);
        prop_assert!((la.add(lb).prob() - sum).abs() < 1e-9);
        prop_assert!((la.complement().prob() - (1.0 - a)).abs() < 1e-12);
    }

    #[test]
    fn interval_operations_enclose_pointwise_results(
        alo in prob(), awidth in prob(), blo in prob(), bwidth in prob(),
        apoint in prob(), bpoint in prob(),
    ) {
        let a = ProbInterval::new(alo, (alo + awidth).min(1.0)).unwrap();
        let b = ProbInterval::new(blo, (blo + bwidth).min(1.0)).unwrap();
        // pick points inside each
        let x = a.lo() + apoint * a.width();
        let y = b.lo() + bpoint * b.width();
        prop_assert!(a.mul(&b).contains(x * y));
        prop_assert!(a.complement().contains(1.0 - x));
        prop_assert!(a.add_disjoint(&b).contains((x + y).min(1.0)));
    }

    // ── Instances ────────────────────────────────────────────────────────

    #[test]
    fn instance_algebra_matches_btreeset_reference(
        xs in prop::collection::vec(0u32..40, 0..25),
        ys in prop::collection::vec(0u32..40, 0..25),
    ) {
        use std::collections::BTreeSet;
        let a = Instance::from_ids(xs.iter().map(|&i| FactId(i)));
        let b = Instance::from_ids(ys.iter().map(|&i| FactId(i)));
        let sa: BTreeSet<u32> = xs.iter().copied().collect();
        let sb: BTreeSet<u32> = ys.iter().copied().collect();
        let to_set = |d: &Instance| -> BTreeSet<u32> { d.iter().map(|f| f.0).collect() };
        prop_assert_eq!(to_set(&a.union(&b)), &sa | &sb);
        prop_assert_eq!(to_set(&a.intersection(&b)), &sa & &sb);
        prop_assert_eq!(to_set(&a.difference(&b)), &sa - &sb);
        prop_assert_eq!(a.is_subset_of(&b), sa.is_subset(&sb));
        prop_assert_eq!(a.is_disjoint_from(&b), sa.is_disjoint(&sb));
        prop_assert_eq!(a.size(), sa.len());
    }

    // ── Finite t.i. tables ───────────────────────────────────────────────

    #[test]
    fn world_probabilities_sum_to_one(ps in prop::collection::vec(prob(), 0..10)) {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let t = TiTable::from_facts(
            schema,
            ps.iter().enumerate().map(|(i, &p)| {
                (Fact::new(RelId(0), [Value::int(i as i64)]), p)
            }),
        ).unwrap();
        let worlds = t.worlds().unwrap();
        prop_assert!((worlds.space().total_mass() - 1.0).abs() < 1e-9);
        // marginals recovered
        for (id, _, p) in t.iter() {
            let m = worlds.space().prob_where(|d| d.contains(id));
            prop_assert!((m - p).abs() < 1e-9);
        }
        // size distribution consistency
        let dist = t.size_distribution();
        let mean: f64 = dist.iter().enumerate().map(|(k, q)| k as f64 * q).sum();
        prop_assert!((mean - t.expected_size()).abs() < 1e-9);
    }

    #[test]
    fn lineage_inference_matches_brute_force_on_random_marginals(
        ps in prop::collection::vec(prob(), 1..6),
        qs in prop::collection::vec(prob(), 1..6),
    ) {
        let schema = Schema::from_relations(
            [Relation::new("R", 1), Relation::new("S", 1)],
        ).unwrap();
        let mut t = TiTable::new(schema);
        for (i, &p) in ps.iter().enumerate() {
            t.add_fact(Fact::new(RelId(0), [Value::int(i as i64)]), p).unwrap();
        }
        for (i, &p) in qs.iter().enumerate() {
            t.add_fact(Fact::new(RelId(1), [Value::int(i as i64)]), p).unwrap();
        }
        for query in [
            "exists x. R(x) /\\ S(x)",
            "forall x. (R(x) -> S(x))",
            "exists x. R(x) /\\ !S(x)",
        ] {
            let q = parse(query, t.schema()).unwrap();
            let fast = engine::prob_boolean(&q, &t, Engine::Lineage).unwrap();
            let slow = engine::prob_boolean(&q, &t, Engine::Brute).unwrap();
            prop_assert!((fast - slow).abs() < 1e-9, "{}: {} vs {}", query, fast, slow);
        }
    }

    // ── Truncation / Proposition 6.1 ─────────────────────────────────────

    #[test]
    fn truncation_certificates_hold_for_random_geometric_series(
        first in strict_prob(),
        ratio in (10u32..95).prop_map(|i| i as f64 / 100.0),
        eps_m in (1u32..490).prop_map(|i| i as f64 / 1000.0),
    ) {
        let g = GeometricSeries::new(first, ratio).unwrap();
        let t = infpdb::math::truncation::for_tolerance(&g, eps_m).unwrap();
        prop_assert!(t.tail_mass <= 0.5 + 1e-12);
        prop_assert!(t.alpha.exp() <= 1.0 + eps_m + 1e-9);
        prop_assert!((-t.alpha).exp() >= 1.0 - eps_m - 1e-9);
        // the certified tail really bounds the series tail
        let sampled: f64 = (t.n..t.n + 500).map(|i| g.term(i)).sum();
        prop_assert!(sampled <= t.tail_mass * (1.0 + 1e-9));
    }

    // ── Completions (Theorem 5.5) ────────────────────────────────────────

    #[test]
    fn completion_condition_on_random_ti_seeds(
        ps in prop::collection::vec(strict_prob(), 1..5),
        tail_first in (1u32..500).prop_map(|i| i as f64 / 1000.0),
    ) {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let table = TiTable::from_facts(
            schema.clone(),
            ps.iter().enumerate().map(|(i, &p)| {
                (Fact::new(RelId(0), [Value::int(i as i64)]), p)
            }),
        ).unwrap();
        let tail = infpdb::ti::enumerator::FactSupply::from_fn(
            schema,
            |i| Fact::new(RelId(0), [Value::int(1000 + i as i64)]),
            GeometricSeries::new(tail_first, 0.5).unwrap(),
        );
        let open = infpdb::openworld::independent_facts::complete_ti_table(&table, tail)
            .unwrap();
        // original marginals preserved exactly
        for (i, &p) in ps.iter().enumerate() {
            prop_assert!((open.marginal_at(i) - p).abs() < 1e-12);
        }
        // queries over original facts agree with the closed world within ε
        let q = parse("exists x. R(x)", open.schema()).unwrap();
        let closed = engine::prob_boolean(&q, &table, Engine::Brute).unwrap();
        let a = infpdb::query::approx::approx_prob_boolean(
            &open, &q, 0.01, Engine::Auto,
        ).unwrap();
        // the tail only *adds* R-facts, so open-world P is ≥ closed-world P
        prop_assert!(a.estimate + 0.01 >= closed);
    }

    // ── Parser robustness ────────────────────────────────────────────────

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~]{0,60}") {
        let schema = Schema::from_relations(
            [Relation::new("R", 1), Relation::new("S", 2)],
        ).unwrap();
        // must return Ok or Err, never panic or hang
        let _ = parse(&s, &schema);
    }

    #[test]
    fn parser_never_panics_on_query_like_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "R(", ")", "x", ",", "1", "'a'", "/\\", "\\/", "!", "=", "!=",
                "exists", "forall", ".", "S(", "true", "false", "->", " ",
            ]),
            0..25,
        ),
    ) {
        let schema = Schema::from_relations(
            [Relation::new("R", 1), Relation::new("S", 2)],
        ).unwrap();
        let s: String = parts.concat();
        let _ = parse(&s, &schema);
    }

    // ── Parser/printer round trip ────────────────────────────────────────

    #[test]
    fn display_parse_round_trip(seed in 0u64..500) {
        // generate a random formula, print it, re-parse, compare answers on
        // a fixed instance
        use infpdb_core::space::rand_core::SplitMix64;
        let schema = Schema::from_relations(
            [Relation::new("R", 1), Relation::new("S", 2)],
        ).unwrap();
        let mut rng = SplitMix64::new(seed);
        let f = random_formula(&mut rng, 3, &mut vec![]);
        let text = f.display(&schema).to_string();
        let reparsed = parse(&text, &schema);
        prop_assert!(reparsed.is_ok(), "failed to reparse {:?}", text);
        // the parser flattens nested And/Or chains; compare modulo that
        prop_assert_eq!(flatten(&reparsed.unwrap()), flatten(&f));
    }
}

/// Flattens nested `And`/`Or` chains into canonical n-ary form.
fn flatten(f: &infpdb::logic::Formula) -> infpdb::logic::Formula {
    use infpdb::logic::Formula;
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => f.clone(),
        Formula::Not(g) => flatten(g).not(),
        Formula::And(gs) => {
            let mut out = Vec::new();
            for g in gs {
                match flatten(g) {
                    Formula::And(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            Formula::And(out)
        }
        Formula::Or(gs) => {
            let mut out = Vec::new();
            for g in gs {
                match flatten(g) {
                    Formula::Or(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            Formula::Or(out)
        }
        Formula::Exists(v, g) => Formula::Exists(v.clone(), Box::new(flatten(g))),
        Formula::Forall(v, g) => Formula::Forall(v.clone(), Box::new(flatten(g))),
    }
}

/// Random closed-ish formula generator for the round-trip test.
fn random_formula(
    rng: &mut infpdb_core::space::rand_core::SplitMix64,
    depth: usize,
    scope: &mut Vec<String>,
) -> infpdb::logic::Formula {
    use infpdb::logic::{Formula, Term};
    use infpdb_core::space::rand_core::RngCore;
    let term = |rng: &mut infpdb_core::space::rand_core::SplitMix64, scope: &[String]| -> Term {
        if !scope.is_empty() && rng.next_u64().is_multiple_of(2) {
            Term::Var(scope[(rng.next_u64() as usize) % scope.len()].clone())
        } else {
            Term::Const(Value::int((rng.next_u64() % 5) as i64))
        }
    };
    let choice = rng.next_u64() % if depth == 0 { 3 } else { 7 };
    match choice {
        0 => Formula::atom(RelId(0), [term(rng, scope)]),
        1 => Formula::atom(RelId(1), [term(rng, scope), term(rng, scope)]),
        2 => Formula::Eq(term(rng, scope), term(rng, scope)),
        3 => random_formula(rng, depth - 1, scope).not(),
        4 => {
            let a = random_formula(rng, depth - 1, scope);
            let b = random_formula(rng, depth - 1, scope);
            // avoid And/Or flattening ambiguity in equality comparison by
            // wrapping sides distinctly
            Formula::And(vec![a, b])
        }
        5 => {
            let a = random_formula(rng, depth - 1, scope);
            let b = random_formula(rng, depth - 1, scope);
            Formula::Or(vec![a, b])
        }
        _ => {
            let v = format!("v{}", scope.len());
            scope.push(v.clone());
            let body = random_formula(rng, depth - 1, scope);
            scope.pop();
            if rng.next_u64().is_multiple_of(2) {
                Formula::Exists(v, Box::new(body))
            } else {
                Formula::Forall(v, Box::new(body))
            }
        }
    }
}

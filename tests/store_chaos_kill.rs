//! Kill-and-reopen chaos against the real `infpdb serve` binary
//! (ISSUE 7 acceptance): start a durable server, SIGKILL it while the
//! periodic snapshot loop is running, then
//!
//! 1. `infpdb store verify --dir` must complete without crashing —
//!    either clean or reporting corruption with a nonzero exit;
//! 2. a reopened server must come up (no panic, status never worse
//!    than `recovered`) and answer queries on the recovered prefix
//!    **bit-for-bit** identical to the offline `infpdb open`
//!    subcommand over the same table.
//!
//! The kill delay is seeded: `INFPDB_CHAOS_SEED` (the CI `chaos-store`
//! job runs seeds 1, 20190625, 271828) or a built-in trio.

use infpdb_core::json::Json;
use infpdb_net::client::{self, BaseUrl};
use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_infpdb");

fn kb_path() -> String {
    format!("{}/examples/kb.pdb", env!("CARGO_MANIFEST_DIR"))
}

fn seeds() -> Vec<u64> {
    match std::env::var("INFPDB_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("INFPDB_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 20190625, 271828],
    }
}

/// Spawns `infpdb serve` over the example table with durability on a
/// fast snapshot cadence, and reads its startup banner: returns the
/// child, a line reader for the rest of stdout, the bound address, and
/// the reported store label.
fn spawn_serve(dir: &std::path::Path) -> (Child, BufReader<ChildStdout>, String, String) {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            &kb_path(),
            "--bind",
            "127.0.0.1:0",
            "--threads",
            "1",
            "--eps",
            "0.001",
            "--snapshot-every",
            "0.05",
            "--store",
            dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn infpdb serve");
    let mut lines = BufReader::new(child.stdout.take().unwrap());
    let mut read = || {
        let mut l = String::new();
        lines.read_line(&mut l).expect("serve stdout");
        l.trim_end().to_string()
    };
    let listening = read();
    let addr = listening
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {listening:?}"))
        .to_string();
    let store_line = read();
    let label = store_line
        .strip_prefix("store: ")
        .unwrap_or_else(|| panic!("unexpected store line: {store_line:?}"))
        .to_string();
    // wait for the startup warm + snapshot so the store has content
    let warmed = read();
    assert!(warmed.starts_with("warmed n = "), "{warmed:?}");
    let snap = read();
    assert!(snap.starts_with("snapshot epoch "), "{snap:?}");
    (child, lines, addr, label)
}

fn http_estimate(addr: &str, query: &str, eps: f64) -> f64 {
    let base = BaseUrl::parse(&format!("http://{addr}")).unwrap();
    let body = Json::obj([("query", Json::str(query)), ("eps", Json::Float(eps))]).encode();
    let resp = client::request(
        &base,
        "POST",
        "/query",
        &[("content-type", "application/json")],
        body.as_bytes(),
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{:?}", resp.body_utf8());
    let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
    doc.get("estimate").and_then(Json::as_f64).unwrap()
}

fn assert_no_panic(out: &std::process::Output, what: &str) {
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("panicked"), "{what} panicked:\n{err}");
}

#[test]
fn sigkill_mid_snapshot_then_reopen_answers_bit_for_bit() {
    let query = "Person(1000000)";
    let eps = 0.001;
    // the offline reference over the same table (same binary, no store)
    let offline = Command::new(BIN)
        .args(["open", &kb_path(), query, "--eps", "0.001"])
        .output()
        .unwrap();
    assert!(offline.status.success());
    let offline_out = String::from_utf8(offline.stdout.clone()).unwrap();

    for seed in seeds() {
        let dir =
            std::env::temp_dir().join(format!("infpdb-kill-chaos-{seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let (mut child, _lines, addr, label) = spawn_serve(&dir);
        assert_eq!(label, "fresh", "seed {seed}: first boot on an empty dir");
        // exercise the query path once so the server is mid-steady-state
        http_estimate(&addr, query, eps);
        // seeded kill delay: lands at an arbitrary phase of the 50ms
        // snapshot cadence, so some runs die mid-snapshot-write
        std::thread::sleep(Duration::from_millis(40 + seed % 130));
        child.kill().expect("SIGKILL serve");
        let out = child.wait_with_output().unwrap();
        assert!(!out.status.success(), "seed {seed}: kill must be abrupt");

        // 1. offline fsck never crashes; exit code is honest
        let verify = Command::new(BIN)
            .args(["store", "verify", "--dir", dir.to_str().unwrap()])
            .output()
            .unwrap();
        assert_no_panic(&verify, "store verify");
        let verdict = String::from_utf8_lossy(&verify.stdout).to_string()
            + &String::from_utf8_lossy(&verify.stderr);
        if verify.status.success() {
            assert!(verdict.contains("clean"), "seed {seed}: {verdict}");
        } else {
            assert!(
                verdict.contains("corruption detected"),
                "seed {seed}: {verdict}"
            );
        }

        // 2. reopen over the same directory: no panic, never degraded,
        // answers bit-for-bit equal to the offline reference
        let (mut child2, _lines2, addr2, label2) = spawn_serve(&dir);
        assert!(
            label2 == "ok" || label2 == "recovered",
            "seed {seed}: reopen label {label2:?}"
        );
        let wire = http_estimate(&addr2, query, eps);
        // `open` prints the same f64 via Display; bit-identity shows as
        // exact substring match
        assert!(
            offline_out.contains(&format!("= {wire} ±")),
            "seed {seed}: wire {wire} not bit-identical to offline:\n{offline_out}"
        );
        child2.kill().ok();
        child2.wait().ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}

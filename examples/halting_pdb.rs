//! Proposition 6.2, hands on: probabilistic databases that encode the
//! halting problem.
//!
//! Every Turing machine `N` *represents* a weight-1 tuple-independent PDB
//! `D_{M(N)}` over facts `R(k)`/`S(k)`: pair `k = ⟨n, t⟩` carries an
//! `R`-fact iff `N` accepts input `n` within `t` steps. Then
//! `P(∃x R(x)) = 0` iff `L(N) = ∅` — so an algorithm achieving any
//! *multiplicative* approximation guarantee would decide emptiness of
//! Turing machines. Additive approximation (Proposition 6.1) survives
//! because it may answer "somewhere below 10⁻¹²" without certifying zero.
//!
//! Run with `cargo run --example halting_pdb`.

use infpdb::tm::reduction::{has_r_witness, prefixes_agree, prob_exists_r};
use infpdb::tm::{RepresentedPdb, TuringMachine};

fn main() {
    let machines: Vec<(&str, TuringMachine)> = vec![
        ("rejects_all      (L = ∅)", TuringMachine::rejects_all()),
        ("loops_forever    (L = ∅)", TuringMachine::loops_forever()),
        ("accepts_all", TuringMachine::accepts_all()),
        ("even_parity", TuringMachine::accepts_even_parity()),
        ("needs_a_one", TuringMachine::accepts_strings_with_a_one()),
    ];

    println!(
        "{:<28} {:>9} {:>44}",
        "machine", "witness?", "certified P(∃x R(x))"
    );
    for (name, m) in &machines {
        let rep = RepresentedPdb::new(m.clone());
        let witness = has_r_witness(&rep, 300);
        let interval = prob_exists_r(&rep, 45).expect("interval");
        println!(
            "{name:<28} {:>9} {:>44}",
            witness.map(|k| format!("k = {k}")).unwrap_or("none".into()),
            interval.to_string()
        );
    }

    // The obstruction, concretely: two machines with empty languages are
    // observationally identical on every finite prefix of the fact
    // enumeration — no algorithm reading finitely many facts can separate
    // "P = 0" from "P > 0 but the first R-fact is beyond what I read".
    let empty = RepresentedPdb::new(TuringMachine::rejects_all());
    let looper = RepresentedPdb::new(TuringMachine::loops_forever());
    println!(
        "\nrejects_all and loops_forever produce identical facts (500-prefix): {}",
        prefixes_agree(&empty, &looper, 500)
    );
    assert!(prefixes_agree(&empty, &looper, 500));

    // Additive approximation still works: the interval for the empty
    // machine has width 2^{-n}, honestly reported, zero never claimed.
    for n in [10u32, 20, 40] {
        let iv = prob_exists_r(&empty, n).expect("interval");
        println!(
            "empty machine, {n} pairs examined: P ∈ {iv} (width {:.1e})",
            iv.width()
        );
    }

    // The full Proposition 6.1 machinery runs on represented PDBs too —
    // they satisfy the oracle assumptions (i)/(ii) by construction.
    let rep = RepresentedPdb::new(TuringMachine::accepts_even_parity());
    let pdb = rep.pdb().expect("weight 1 always converges");
    let q = infpdb::logic::parse("exists x. R(x)", pdb.schema()).expect("query");
    let a = infpdb::query::approx::approx_prob_boolean(
        &pdb,
        &q,
        0.01,
        infpdb::finite::engine::Engine::Auto,
    )
    .expect("Prop 6.1");
    println!(
        "\nProp 6.1 on the parity machine's PDB: P(∃x R(x)) = {:.4} ± {} (n = {})",
        a.estimate, a.eps, a.n
    );
}

//! Open-world knowledge bases: λ-completions (OpenPDB) vs convergent-series
//! completions.
//!
//! The paper's Section 1 motivates tuple-independent PDBs with web-scale
//! knowledge bases (Knowledge Vault, NELL, DeepDive); Section 5 positions
//! the infinite completion as the generalization of Ceylan et al.'s
//! OpenPDBs, whose fixed finite universe caps the open world. This example
//! builds a toy KB, applies **both** semantics, and shows where they agree
//! (finite-universe queries: interval vs point inside it) and where only
//! the infinite completion has anything to say (entities outside the
//! OpenPDB universe).
//!
//! Run with `cargo run --example knowledge_vault`.

use infpdb::finite::engine::Engine;
use infpdb::finite::TiTable;
use infpdb::openworld::independent_facts::complete_ti_table;
use infpdb::openworld::LambdaCompletion;
use infpdb::query::approx::approx_prob_boolean;
use infpdb::ti::enumerator::FactSupply;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::universe::FiniteUniverse;
use infpdb_core::value::Value;
use infpdb_logic::parse;
use infpdb_math::series::{ScaledSeries, WordLengthSeries};

fn main() {
    // A binary "extracted triple" relation: BornIn(person, city), with
    // extraction confidences as marginal probabilities.
    let schema = Schema::from_relations([Relation::new("BornIn", 2)]).expect("fresh schema");
    let born = schema.rel_id("BornIn").expect("BornIn");
    let triple = |p: &str, c: &str| Fact::new(born, [Value::str(p), Value::str(c)]);
    let kb = TiTable::from_facts(
        schema.clone(),
        [
            (triple("turing", "london"), 0.96),
            (triple("goedel", "bruenn"), 0.91),
            (triple("noether", "erlangen"), 0.88),
            (triple("turing", "cambridge"), 0.07), // a noisy extraction
        ],
    )
    .expect("valid KB");

    // ── OpenPDB: finite universe of known entities, threshold λ ──────────
    let entities = FiniteUniverse::new(
        [
            "turing",
            "goedel",
            "noether",
            "london",
            "bruenn",
            "erlangen",
            "cambridge",
        ]
        .map(Value::str),
    );
    let lambda = LambdaCompletion::new(kb.clone(), &entities, 0.02).expect("λ-completion");
    println!(
        "OpenPDB: {} candidate facts at λ = {}",
        lambda.candidates().len(),
        lambda.lambda()
    );

    let q = parse("exists x. BornIn('goedel', x)", &schema).expect("query");
    let iv = lambda.prob_interval(&q).expect("UCQ interval");
    println!("OpenPDB:  P(Gödel has a birthplace) ∈ {iv}");

    // ── Infinite completion: every string is a possible entity ───────────
    // Tail: BornIn(w, w') over pairs of strings, enumerated through one
    // string code split by the pairing function, word-length-decaying mass.
    let tail_schema = schema.clone();
    let tail = FactSupply::from_fn(
        schema.clone(),
        move |i| {
            let (a, b) = infpdb::math::pairing::unpair(i as u64 + 1);
            Fact::new(
                tail_schema.rel_id("BornIn").expect("BornIn"),
                [
                    Value::str(format!("e{}", infpdb::math::pairing::nat_to_string(a))),
                    Value::str(format!("e{}", infpdb::math::pairing::nat_to_string(b))),
                ],
            )
        },
        ScaledSeries::new(WordLengthSeries::new(2).expect("series"), 0.05).expect("scaled"),
    );
    let open = complete_ti_table(&kb, tail).expect("completion exists");

    let a = approx_prob_boolean(&open, &q, 0.01, Engine::Auto).expect("Prop 6.1");
    println!(
        "infinite: P(Gödel has a birthplace) = {:.4} ± {} — inside the OpenPDB interval: {}",
        a.estimate,
        a.eps,
        iv.widen(a.eps).contains(a.estimate)
    );

    // A query about an entity outside the OpenPDB universe: the λ-model
    // cannot even phrase it (its universe is closed); the infinite
    // completion assigns it positive probability.
    let unknown = parse("exists x. BornIn('e0', x)", &schema).expect("query");
    let a2 = approx_prob_boolean(&open, &unknown, 0.005, Engine::Auto).expect("Prop 6.1");
    println!(
        "infinite: P(unknown entity e0 has a birthplace) = {:.4} ± {} (> 0: truly open world)",
        a2.estimate, a2.eps
    );
    assert!(a2.estimate > 0.0);

    // Noisy-extraction cleanup: probability Turing has two birthplaces —
    // the kind of implausibility a downstream consumer would threshold on.
    let dup = parse(
        "exists x, y. BornIn('turing', x) /\\ BornIn('turing', y) /\\ x != y",
        &schema,
    )
    .expect("query");
    let a3 = approx_prob_boolean(&open, &dup, 0.01, Engine::Auto).expect("Prop 6.1");
    println!(
        "infinite: P(Turing has ≥ 2 birthplaces) = {:.4} ± {}",
        a3.estimate, a3.eps
    );
}

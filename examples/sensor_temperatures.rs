//! The paper's introductory scenario: office temperature measurements.
//!
//! "Suppose that the database never records a temperature between 20.2 °C
//! and 20.5 °C. Is it reasonable to derive that such a temperature is
//! impossible? … we would expect that the event 'the temperature in the
//! first author's office is 0.05 °C below that in the second author's
//! office' has a higher probability than the event '… 10 °C above …'. In a
//! closed-world model however, both events have the exact same
//! probability 0."
//!
//! We model readings as fixed-point decimals (the countable stand-in for ℝ
//! — see DESIGN.md, Substitutions), complete each office's unrecorded
//! readings with a discretized normal around its sensor history, and show
//! the two semantics disagree exactly as the paper says.
//!
//! Run with `cargo run --example sensor_temperatures`.

use infpdb::finite::FinitePdb;
use infpdb::openworld::distributions::discretized_normal;
use infpdb::openworld::null_completion::{complete_nulls, NullableRow};
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::value::Value;
use infpdb_logic::parse;

fn main() {
    // Temp(office, reading_in_centi_degrees): one uncertain reading each.
    let schema = Schema::from_relations([Relation::with_attributes("Temp", ["Office", "Reading"])])
        .expect("fresh schema");
    let temp = schema.rel_id("Temp").expect("Temp");

    // ── Closed world: the PDB over recorded readings only ───────────────
    // Office 1 recorded 20.1 or 20.2 (sensor flicker); office 2 recorded
    // 20.6 or 20.7. Note no reading strictly between 20.2 and 20.5 ever
    // appears.
    let reading =
        |office: i64, deci: i64| Fact::new(temp, [Value::int(office), Value::fixed(deci, 1)]);
    let closed = FinitePdb::from_worlds(
        schema.clone(),
        [
            (vec![reading(1, 201), reading(2, 206)], 0.25),
            (vec![reading(1, 201), reading(2, 207)], 0.25),
            (vec![reading(1, 202), reading(2, 206)], 0.25),
            (vec![reading(1, 202), reading(2, 207)], 0.25),
        ],
    )
    .expect("valid PDB");

    let q_gap = parse("exists o. Temp(o, 20.3)", &schema).expect("query");
    println!(
        "closed world: P(some office reads 20.3°C) = {}",
        closed.prob_boolean(&q_gap).expect("sentence")
    );
    let q_warmer = parse(
        "exists x, y. Temp(1, x) /\\ Temp(2, y) /\\ !(x = y)",
        &schema,
    )
    .expect("query");
    println!(
        "closed world: P(offices differ) = {}",
        closed.prob_boolean(&q_warmer).expect("sentence")
    );

    // ── Open world: complete each office's reading from a discretized ───
    // normal around its sensor history (office 1 ~ N(20.15, 0.2), office 2
    // ~ N(20.65, 0.2), on a 0.05 °C grid).
    let grid =
        |mean: f64| discretized_normal(mean, 0.2, 0.05, 2, 10.0, 1.0).expect("valid distribution");
    let open = complete_nulls(
        schema.clone(),
        vec![
            NullableRow::new(temp, vec![Some(Value::int(1)), None]),
            NullableRow::new(temp, vec![Some(Value::int(2)), None]),
        ],
        vec![grid(20.15), grid(20.65)],
    )
    .expect("completion");

    // The gap reading is now merely unlikely, not impossible:
    let q_gap2 = parse("exists o. Temp(o, 20.30)", &schema).expect("query");
    println!(
        "open world:   P(some office reads 20.3°C) = {:.4}",
        open.prob_boolean(&q_gap2).expect("sentence")
    );

    // The paper's comparison: "0.05 °C below" should beat a far-fetched
    // offset. (The paper contrasts with "10 °C above", whose probability
    // under these normals is e^{−1250} — positive in the model, beneath
    // f64 resolution in any implementation; we print the +1 °C point of
    // the same monotone decay.)
    let p_slightly_below = prob_office1_offset(&open, &schema, -0.05);
    let p_above = prob_office1_offset(&open, &schema, 1.0);
    println!("open world:   P(office1 = office2 − 0.05°C) = {p_slightly_below:.4}");
    println!("open world:   P(office1 = office2 + 1°C)    = {p_above:.8}");
    assert!(
        p_slightly_below > p_above && p_above > 0.0,
        "nearby offsets must dominate far-fetched ones, which stay possible"
    );

    // And office 1 being the warmer one — impossible in the closed world —
    // has small positive probability now:
    let q_flip = parse(
        "exists x, y. Temp(1, x) /\\ Temp(2, y) /\\ !(x = y) /\\ !(exists z. Temp(1, z) /\\ Temp(2, z))",
        &schema,
    )
    .expect("query");
    let _ = q_flip; // (equality on Fixed values is exact; the flip event is below)
    let p_flip = prob_office1_warmer(&open);
    println!("open world:   P(office 1 warmer than office 2) = {p_flip:.4}");
    assert!(p_flip > 0.0);
}

/// P(office1 reading = office2 reading + offset), by direct event
/// summation over the completed space.
fn prob_office1_offset(pdb: &FinitePdb, _schema: &Schema, offset: f64) -> f64 {
    sum_worlds(pdb, |t1, t2| ((t1 - t2) - offset).abs() < 1e-9)
}

/// P(office1 reading > office2 reading).
fn prob_office1_warmer(pdb: &FinitePdb) -> f64 {
    sum_worlds(pdb, |t1, t2| t1 > t2)
}

fn sum_worlds(pdb: &FinitePdb, pred: impl Fn(f64, f64) -> bool) -> f64 {
    let mut total = 0.0;
    for (world, p) in pdb.space().outcomes() {
        let mut t1 = None;
        let mut t2 = None;
        for id in world.iter() {
            let f = pdb.interner().resolve(id);
            let office = f.args()[0].as_int().expect("office id");
            let val = f.args()[1].as_fixed().expect("fixed reading").to_f64();
            match office {
                1 => t1 = Some(val),
                2 => t2 = Some(val),
                _ => {}
            }
        }
        if let (Some(a), Some(b)) = (t1, t2) {
            if pred(a, b) {
                total += p;
            }
        }
    }
    total
}

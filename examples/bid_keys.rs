//! Block-independent-disjoint PDBs with key constraints (Section 4.4).
//!
//! "The usual application of b.i.d. PDBs is to incorporate key constraints
//! in PDBs." We model a sensor registry where each sensor id (the key) has
//! several mutually exclusive candidate locations — within a block at most
//! one holds; across sensors everything is independent. Then we extend the
//! registry to *infinitely many* sensors with the Proposition 4.13
//! construction and sample from it.
//!
//! Run with `cargo run --example bid_keys`.

use infpdb::finite::BidTable;
use infpdb::ti::bid::{BlockSupply, CountableBidPdb};
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::space::rand_core::SplitMix64;
use infpdb_core::value::Value;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;

fn main() {
    let schema =
        Schema::from_relations([Relation::with_attributes("Location", ["Sensor", "Room"])])
            .expect("fresh schema");
    let loc = schema.rel_id("Location").expect("Location");
    let at = |s: i64, room: &str| Fact::new(loc, [Value::int(s), Value::str(room)]);

    // ── Finite b.i.d.: three sensors, keyed by sensor id ─────────────────
    let registry = BidTable::keyed(
        schema.clone(),
        [
            (at(1, "office-a"), 0.7),
            (at(1, "office-b"), 0.3), // sensor 1: exactly one of two rooms
            (at(2, "lab"), 0.9),      // sensor 2: maybe unplaced (p_⊥ = .1)
            (at(3, "hall"), 0.5),
            (at(3, "lab"), 0.2),
            (at(3, "office-a"), 0.2), // sensor 3: three candidates
        ],
        0, // key column: Sensor
    )
    .expect("valid registry");
    println!(
        "registry: {} facts in {} blocks, E(S) = {:.2}",
        registry.len(),
        registry.blocks().len(),
        registry.expected_size()
    );

    let worlds = registry.worlds().expect("small enough to enumerate");
    let q = parse("exists s. Location(s, 'lab')", &schema).expect("query");
    println!(
        "P(something is in the lab) = {:.4}",
        worlds.prob_boolean(&q).expect("sentence")
    );
    let both = parse(
        "Location(1, 'office-a') /\\ Location(1, 'office-b')",
        &schema,
    )
    .expect("query");
    println!(
        "P(sensor 1 in two rooms)   = {} (key constraint)",
        worlds.prob_boolean(&both).expect("sentence")
    );

    // ── Infinite b.i.d.: sensors 10, 11, 12, … with two candidate rooms ──
    // Block i has mass 2^{-(i+1)} split across two rooms — the convergent
    // block-mass series Theorem 4.15 requires.
    let supply_schema = schema.clone();
    let supply = BlockSupply::from_fn(
        schema.clone(),
        move |i| {
            let m = 0.5f64.powi(i as i32 + 1);
            let s = 10 + i as i64;
            vec![
                (
                    Fact::new(
                        supply_schema.rel_id("Location").expect("Location"),
                        [Value::int(s), Value::str("east-wing")],
                    ),
                    m * 0.6,
                ),
                (
                    Fact::new(
                        supply_schema.rel_id("Location").expect("Location"),
                        [Value::int(s), Value::str("west-wing")],
                    ),
                    m * 0.4,
                ),
            ]
        },
        GeometricSeries::new(0.5, 0.5).expect("series"),
    );
    let infinite = CountableBidPdb::new(supply, 16).expect("Theorem 4.15: converges");
    println!(
        "infinite registry: E(S) ≤ {:.4} (Corollary 4.7 analogue)",
        infinite.expected_size_bound()
    );

    // Exact instance probability with certified interval:
    let enc = infinite
        .instance_prob(&[(0, at(10, "east-wing"))])
        .expect("good instance");
    println!("P({{sensor 10 in east wing, nothing else}}) ∈ {enc}");

    // ε-truncated sampling with a reported TV bound:
    let sampler = infinite.sampler(1e-4).expect("sampler");
    println!(
        "sampler: {} explicit blocks, TV distance ≤ {}",
        sampler.prefix_blocks(),
        sampler.tv_bound()
    );
    let mut rng = SplitMix64::new(7);
    let mut sizes = [0usize; 4];
    let n = 10_000;
    for _ in 0..n {
        let d = sampler.sample(&mut rng);
        sizes[d.size().min(3)] += 1;
    }
    println!(
        "sampled placement counts: 0 → {:.3}, 1 → {:.3}, 2 → {:.3}, ≥3 → {:.3}",
        sizes[0] as f64 / n as f64,
        sizes[1] as f64 / n as f64,
        sizes[2] as f64 / n as f64,
        sizes[3] as f64 / n as f64,
    );
}

//! Example 3.2 of the paper: completing an incomplete database.
//!
//! A `Person(FirstName, LastName, Nationality, HeightMm)` relation with
//! null values, completed per the paper:
//!
//! * a missing **height** "distributed according to a known distribution
//!   of heights of German males, maybe a normal distribution with a mean
//!   around 180 (cm)" — our discretized normal on a millimetre grid;
//! * a missing **first name** completed from "a list of German names
//!   together with their frequencies … a small positive probability to all
//!   strings not occurring in the list, decaying with increasing length" —
//!   the name-frequency-with-decay supply.
//!
//! Run with `cargo run --example census_completion`.

use infpdb::openworld::distributions::{discretized_normal, names_with_decay};
use infpdb::openworld::null_completion::{complete_nulls, NullableRow};
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;
use infpdb_logic::parse;

fn main() {
    let schema = Schema::from_relations([Relation::with_attributes(
        "Person",
        ["FirstName", "LastName", "Nationality", "HeightMm"],
    )])
    .expect("fresh schema");
    let person = schema.rel_id("Person").expect("Person");

    // ── The paper's first tuple: (Peter, Lindner, German, ⊥) ─────────────
    // Height completed from a discretized N(1800mm, 70mm) on a 10mm grid.
    let heights = discretized_normal(1800.0, 70.0, 10.0, 0, 5.0, 1.0).expect("distribution");
    println!(
        "height model: {} grid points, mode at {}",
        heights.len(),
        heights
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(v, _)| v.to_string())
            .expect("nonempty")
    );

    let completed_heights = complete_nulls(
        schema.clone(),
        vec![NullableRow::new(
            person,
            vec![
                Some(Value::str("Peter")),
                Some(Value::str("Lindner")),
                Some(Value::str("German")),
                None,
            ],
        )],
        vec![heights],
    )
    .expect("completion");

    // Probability his height is at least 1.9 m — a query the incomplete
    // database cannot answer and the closed world would call 0 or 1.
    let tall: f64 = completed_heights
        .space()
        .outcomes()
        .iter()
        .filter(|(d, _)| {
            d.iter().any(|id| {
                completed_heights.interner().resolve(id).args()[3]
                    .as_fixed()
                    .map(|mm| mm.to_f64() >= 1900.0)
                    .unwrap_or(false)
            })
        })
        .map(|(_, p)| p)
        .sum();
    println!("P(Lindner is ≥ 1.90m) = {tall:.4}");

    // ── The paper's second tuple: (⊥, Grohe, male, German, 183) ─────────
    // First name from a frequency list plus decaying strings.
    let names = names_with_decay(
        Schema::from_relations([Relation::new("Name", 1)]).expect("schema"),
        RelId(0),
        vec![
            ("Martin".to_string(), 24.0),
            ("Peter".to_string(), 31.0),
            ("Thomas".to_string(), 29.0),
            ("Andreas".to_string(), 16.0),
        ],
        0.05, // 5% of the mass on names outside the list — the open world
    )
    .expect("name supply");

    println!("P(FirstName = Martin)  = {:.4}", names.prob(0));
    println!("P(FirstName = Peter)   = {:.4}", names.prob(1));
    // every unlisted string has positive probability, decaying with length
    let (short, shorter_code) = (names.prob(5), names.fact(5));
    let (long, longer_code) = (names.prob(40), names.fact(40));
    println!(
        "P(FirstName = {}) = {:.6}   P(FirstName = {}) = {:.8}",
        shorter_code.args()[0],
        short,
        longer_code.args()[0],
        long
    );
    assert!(short > long && long > 0.0);

    // total mass certified to be 1 (up to the tail bound)
    let bound = infpdb_math::series::certify_convergent(&names).expect("convergent");
    println!("certified total name mass ≤ {bound:.4}");

    // ── Joint completion of two nulls in one row ─────────────────────────
    // Independence per null (the paper notes when this is problematic —
    // e.g. birth year vs graduation year — and that a joint distribution
    // can be supplied instead; `complete_nulls` takes whatever marginal
    // list you give it).
    let first_names = vec![(Value::str("Martin"), 0.6), (Value::str("Peter"), 0.4)];
    let heights2 = discretized_normal(1800.0, 70.0, 50.0, 0, 3.0, 1.0).expect("distribution");
    let joint = complete_nulls(
        schema.clone(),
        vec![NullableRow::new(
            person,
            vec![
                None,
                Some(Value::str("Grohe")),
                Some(Value::str("German")),
                None,
            ],
        )],
        vec![first_names, heights2],
    )
    .expect("completion");
    let q = parse("exists h. Person('Martin', 'Grohe', 'German', h)", &schema).expect("query");
    println!(
        "P(the Grohe row is a Martin) = {:.4}",
        joint.prob_boolean(&q).expect("sentence")
    );
}

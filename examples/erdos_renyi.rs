//! Infinite t.i. PDBs vs the Erdős–Rényi model — the paper's related-work
//! contrast, made executable.
//!
//! "The classical Erdős–Rényi model G(n, p) of random graphs is also what
//! we would call a tuple-independent model … Then the behavior of these
//! spaces as n goes to infinity is studied. This means that the properties
//! of very large graphs dominate … This contrasts our model of infinite
//! tuple-independent PDBs, which is dominated by the behavior of PDBs
//! whose size is close to the expected value (which for tuple-independent
//! PDBs is always finite)."
//!
//! We materialize both: G(n, p) with constant p (expected size np → ∞) and
//! an infinite edge PDB with convergent edge probabilities (expected size
//! fixed as the universe grows without bound).
//!
//! Run with `cargo run --example erdos_renyi`.

use infpdb::finite::TiTable;
use infpdb::ti::construction::CountableTiPdb;
use infpdb::ti::enumerator::FactSupply;
use infpdb::ti::sampler::TruncatedSampler;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::space::rand_core::SplitMix64;
use infpdb_core::value::Value;
use infpdb_math::series::GeometricSeries;

fn schema() -> Schema {
    Schema::from_relations([Relation::new("Edge", 2)]).expect("fresh schema")
}

/// G(n, p): every potential edge over n vertices with probability p.
fn erdos_renyi(n: i64, p: f64) -> TiTable {
    let s = schema();
    let e = s.rel_id("Edge").expect("Edge");
    TiTable::from_facts(
        s,
        (1..=n).flat_map(|a| {
            (a + 1..=n).map(move |b| (Fact::new(e, [Value::int(a), Value::int(b)]), p))
        }),
    )
    .expect("valid table")
}

/// The infinite edge PDB: edges enumerated diagonally over ℕ², geometric
/// probabilities, total expected size 1 regardless of "universe size".
fn infinite_edges() -> CountableTiPdb {
    let s = schema();
    let e = s.rel_id("Edge").expect("Edge");
    CountableTiPdb::new(FactSupply::from_fn(
        s,
        move |i| {
            let (a, b) = infpdb::math::pairing::unpair(i as u64 + 1);
            Fact::new(e, [Value::int(a as i64), Value::int(b as i64)])
        },
        GeometricSeries::new(0.5, 0.5).expect("series"),
    ))
    .expect("convergent")
}

fn main() {
    println!("Erdős–Rényi G(n, 0.3): expected edge count grows with n");
    println!("{:>6} {:>16}", "n", "E(edges)");
    for n in [4i64, 8, 16, 32] {
        let g = erdos_renyi(n, 0.3);
        println!("{n:>6} {:>16.1}", g.expected_size());
    }

    let inf = infinite_edges();
    let (lo, hi) = inf.expected_size_bounds(100).expect("bounds");
    println!("\ninfinite t.i. edge PDB: E(edges) ∈ [{lo:.6}, {hi:.6}] — fixed, finite");

    // The paper's point: instance sizes concentrate near the (finite)
    // expectation, not near the (infinite) universe.
    let sampler = TruncatedSampler::new(&inf, 1e-5).expect("sampler");
    let mut rng = SplitMix64::new(2718);
    let n = 50_000;
    let mut hist = [0usize; 6];
    for _ in 0..n {
        let d = sampler.sample(&mut rng);
        hist[d.size().min(5)] += 1;
    }
    println!("sampled edge-count distribution ({n} draws):");
    for (k, c) in hist.iter().enumerate() {
        let label = if k == 5 {
            "≥5".to_string()
        } else {
            k.to_string()
        };
        println!("  {label:>3} edges: {:.4}", *c as f64 / n as f64);
    }
    let mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(k, c)| k as f64 * *c as f64)
        .sum::<f64>()
        / n as f64;
    println!("sample mean ≈ {mean:.3} (analytic 1.0)");
    assert!((mean - 1.0).abs() < 0.05);

    // Yet the open world stays open: any specific far-out edge is possible.
    let far = inf
        .marginal(
            &Fact::new(
                inf.schema().rel_id("Edge").expect("Edge"),
                [Value::int(40), Value::int(2)],
            ),
            1_000_000,
        )
        .expect("in enumeration");
    println!("P(Edge(40, 2)) = {far:.2e} — tiny but positive");
    assert!(far > 0.0);
}

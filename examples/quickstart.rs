//! Quickstart: Example 5.7 of the paper, end to end.
//!
//! Build the finite tuple-independent PDB of Example 5.7, apply the
//! infinite open-world assumption with a `2^{-i}` tail, and ask questions
//! the closed world cannot answer.
//!
//! Run with `cargo run --example quickstart`.

use infpdb::finite::engine::Engine;
use infpdb::finite::TiTable;
use infpdb::logic::parse;
use infpdb::math::series::GeometricSeries;
use infpdb::openworld::independent_facts::complete_ti_table;
use infpdb::query::approx::approx_prob_boolean;
use infpdb::ti::enumerator::FactSupply;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::value::Value;

fn main() {
    // ── The Example 5.7 table ────────────────────────────────────────────
    //   R     | P(E_f)
    //   A 1   | 0.8
    //   B 1   | 0.4
    //   B 2   | 0.5
    //   C 3   | 0.9
    let schema = Schema::from_relations([Relation::new("R", 2)]).expect("fresh schema");
    let r = schema.rel_id("R").expect("R exists");
    let row = |name: &str, i: i64| Fact::new(r, [Value::str(name), Value::int(i)]);
    let table = TiTable::from_facts(
        schema.clone(),
        [
            (row("A", 1), 0.8),
            (row("B", 1), 0.4),
            (row("B", 2), 0.5),
            (row("C", 3), 0.9),
        ],
    )
    .expect("valid table");

    println!(
        "Example 5.7 table: {} facts, E(S) = {}",
        table.len(),
        table.expected_size()
    );

    // ── Closed world: unlisted facts are impossible ─────────────────────
    println!(
        "closed world: P(R(D, 1)) = {}",
        table.marginal(&row("D", 1))
    );

    // ── Open world: give every unspecified tuple (x, i) a probability ───
    // Example 5.7 assigns probability 2^{-i} to unspecified tuples of
    // shape R(x, i). We enumerate {A,B,C,D} × ℕ row-block by row-block
    // (all four x for i = 1, then i = 2, …), skipping the four listed
    // rows, with a per-fact geometric decay (ratio 2^{-1/4}, so each block
    // of four roughly halves — the sum of all fact probabilities
    // converges, which is all Theorem 5.5 needs).
    let names = ["A", "B", "C", "D"];
    // enumeration positions of the listed rows in that block order:
    // (A,1)→0, (B,1)→1, (B,2)→5, (C,3)→10
    let skips = [0usize, 1, 5, 10];
    let tail = FactSupply::from_fn(
        schema.clone(),
        move |i| {
            let mut raw = i;
            for &s in &skips {
                if s <= raw {
                    raw += 1;
                }
            }
            Fact::new(
                r,
                [Value::str(names[raw % 4]), Value::int(raw as i64 / 4 + 1)],
            )
        },
        GeometricSeries::new(0.125, 0.5f64.powf(0.25)).expect("valid series"),
    );
    let open = complete_ti_table(&table, tail).expect("completion exists (Theorem 5.5)");

    // Every imaginable tuple now has positive probability.
    println!(
        "open world:  P(R(D, 1)) = {}",
        open.marginal(&row("D", 1), 10_000).expect("in enumeration")
    );
    // …while the original marginals are untouched (completion condition):
    println!(
        "open world:  P(R(A, 1)) = {} (was 0.8)",
        open.marginal(&row("A", 1), 10_000).expect("listed")
    );

    // ── Queries with the Proposition 6.1 guarantee ───────────────────────
    for (q, eps) in [
        ("exists x, y. R(x, y)", 0.01),
        ("exists y. R('D', y)", 0.01),
        ("R('B', 1) /\\ R('B', 2)", 0.001),
    ] {
        let query = parse(q, &schema).expect("well-formed query");
        let a =
            approx_prob_boolean(&open, &query, eps, Engine::Auto).expect("approximation succeeds");
        println!(
            "P({q}) = {:.4} ± {} (truncated at n = {})",
            a.estimate, a.eps, a.n
        );
    }

    // In the original example, "two facts of shape R(A, i)" had
    // probability 0 under the closed world; now it is positive:
    let q = parse("R('A', 1) /\\ R('A', 2)", &schema).expect("well-formed");
    let a = approx_prob_boolean(&open, &q, 0.001, Engine::Auto).expect("approximation");
    println!(
        "P(R(A,1) ∧ R(A,2)) = {:.5} ± {} — positive, as Example 5.7 promises",
        a.estimate, a.eps
    );
    assert!(a.estimate > 0.0);
}

//! Offline stand-in for the `memmap2` crate: read-only, whole-file
//! memory mappings with the same API shape (`Mmap::map(&file)` +
//! `Deref<Target = [u8]>`), no external dependencies.
//!
//! On 64-bit Unix the mapping is a real private `mmap(2)` obtained
//! through a two-symbol FFI declaration (the same pattern
//! `infpdb-net` uses for `signal(2)`), so reading a mapped segment
//! touches the page cache instead of copying the file into the heap.
//! Everywhere else — and whenever the syscall fails — callers are
//! expected to fall back to an ordinary read; `infpdb-store` does this
//! through its `StoreIo::view` seam and counts both outcomes.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// An immutable memory-mapped view of an entire file.
///
/// # Safety
///
/// As with the real `memmap2`, [`Mmap::map`] is `unsafe` because the
/// mapping's contents can change under the process if another writer
/// truncates or modifies the file while it is mapped. Store segments
/// are immutable once committed (they are replaced by rename, never
/// rewritten in place), which is what makes the store's use sound.
pub struct Mmap {
    inner: imp::Map,
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// Fails with the underlying OS error if the mapping cannot be
    /// established (including on platforms without `mmap` support,
    /// where it always fails and callers must use their read
    /// fallback). Mapping an empty file succeeds with a zero-length
    /// view without touching the syscall.
    ///
    /// # Safety
    ///
    /// The caller must ensure the file is not truncated or mutated in
    /// place for the lifetime of the mapping.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        Ok(Mmap {
            inner: imp::map(file, len as usize)?,
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

// The mapping is read-only and PRIVATE: no thread can observe a write
// through it, so sharing the view across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod imp {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    pub struct Map {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    pub fn map(file: &File, len: usize) -> io::Result<Map> {
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty view
            // needs no backing memory at all
            return Ok(Map {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(Map { ptr, len })
    }

    impl Map {
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                &[]
            } else {
                unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
            }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if self.len != 0 {
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
mod imp {
    use std::fs::File;
    use std::io;

    pub struct Map {
        _never: std::convert::Infallible,
    }

    pub fn map(_file: &File, _len: usize) -> io::Result<Map> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is unavailable on this platform; use the read fallback",
        ))
    }

    impl Map {
        pub fn as_slice(&self) -> &[u8] {
            match self._never {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-shim-{tag}-{}", std::process::id()))
    }

    #[test]
    #[cfg(all(unix, target_pointer_width = "64"))]
    fn maps_file_contents_byte_for_byte() {
        let path = temp_path("bytes");
        let payload: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(all(unix, target_pointer_width = "64"))]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }
}

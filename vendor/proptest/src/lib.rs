//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the subset of the proptest API the workspace tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]` headers),
//! integer-range and mapped strategies, `prop::collection::vec`,
//! `prop::sample::select`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Differences from real proptest: generation is a deterministic
//! SplitMix64 stream seeded from the test name (reproducible across
//! runs), there is no shrinking (failures report the raw inputs), and
//! regression files are ignored.

use std::fmt::Debug;

pub mod test_runner {
    //! The deterministic random source driving value generation.

    /// SplitMix64 generator; deterministic per test name.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a salt string (the test name), FNV-1a style.
        pub fn deterministic(salt: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in salt.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish draw in `[0, n)`; modulo bias is acceptable here.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

use test_runner::TestRng;

/// Runner configuration; only the knobs the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the property fails.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
}

impl TestCaseError {
    /// A falsifying failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-case result used by the assertion macros.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values; the shim samples directly (no shrink trees).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from regex-like patterns, as in real proptest.
///
/// The shim supports the subset the workspace uses: a single character
/// class with a bounded repetition, `"[<class>]{m,n}"`, where the class
/// holds literal characters and `a-z` style ranges. Plain literal strings
/// (no metacharacters) generate themselves. Anything else panics.
impl Strategy for &str {
    type Value = String;

    fn sample_value(&self, rng: &mut TestRng) -> String {
        let pat = *self;
        if let Some(rest) = pat.strip_prefix('[') {
            let class_end = rest
                .find(']')
                .unwrap_or_else(|| panic!("proptest shim: unterminated char class in {pat:?}"));
            let class = &rest[..class_end];
            let rep = &rest[class_end + 1..];
            let (min, max) = parse_repetition(pat, rep);
            let chars = expand_class(pat, class);
            let len = min + rng.below((max - min) as u64 + 1) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        } else if pat.chars().all(|c| !"[]{}()*+?|\\.^$".contains(c)) {
            pat.to_string()
        } else {
            panic!("proptest shim: unsupported string pattern {pat:?}");
        }
    }
}

fn parse_repetition(pat: &str, rep: &str) -> (usize, usize) {
    let inner = rep
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("proptest shim: expected {{m,n}} repetition in {pat:?}"));
    let (lo, hi) = inner
        .split_once(',')
        .unwrap_or_else(|| panic!("proptest shim: expected {{m,n}} repetition in {pat:?}"));
    let parse = |s: &str| {
        s.trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("proptest shim: bad repetition bound in {pat:?}"))
    };
    let (min, max) = (parse(lo), parse(hi));
    assert!(min <= max, "proptest shim: inverted repetition in {pat:?}");
    (min, max)
}

fn expand_class(pat: &str, class: &str) -> Vec<char> {
    let mut out = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i], cs[i + 2]);
            assert!(lo <= hi, "proptest shim: inverted char range in {pat:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(cs[i]);
            i += 1;
        }
    }
    assert!(
        !out.is_empty(),
        "proptest shim: empty char class in {pat:?}"
    );
    out
}

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Uniformly selects one of the given options.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestCaseResult};

    pub mod prop {
        //! The `prop::` module-path aliases.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Rejects the current inputs (the case is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cfg.cases {
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let __v = $crate::Strategy::sample_value(&($strat), &mut __rng);
                    __inputs.push(format!("{} = {:?}", stringify!($pat), __v));
                    let $pat = __v;
                )*
                let __outcome: $crate::TestCaseResult = (|| -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        if __rejected > __cfg.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name),
                                __rejected
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} falsified after {} passing case(s)\n  inputs: {}\n  {}",
                            stringify!($name),
                            __passed,
                            __inputs.join(", "),
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_salt() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (-5i64..7).sample_value(&mut rng);
            assert!((-5..7).contains(&v));
            let w = (3u32..=3).sample_value(&mut rng);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn string_pattern_strategies() {
        let mut rng = crate::test_runner::TestRng::deterministic("str");
        for _ in 0..300 {
            let s = "[ -~]{0,60}".sample_value(&mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = "[a-cz]{2,2}".sample_value(&mut rng);
            assert_eq!(t.len(), 2);
            assert!(t.chars().all(|c| "abcz".contains(c)));
        }
        assert_eq!("hello".sample_value(&mut rng), "hello");
    }

    #[test]
    fn vec_and_select_strategies() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..4, 2..5).sample_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
            let s = prop::sample::select(vec!["a", "b"]).sample_value(&mut rng);
            assert!(s == "a" || s == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, pair in (0u8..2).prop_map(|b| (b, b))) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(pair.0, pair.1);
        }
    }
}

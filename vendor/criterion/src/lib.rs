//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the subset of the criterion API the workspace benches use:
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short warm-up followed by a
//! time-boxed loop reporting the mean wall-clock time per iteration. No
//! statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each bench function by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim time-boxes internally.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmarks `f` with an explicit input under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<50} (no measurement)");
    } else {
        let per_iter = bencher.total / bencher.iters;
        println!(
            "{label:<50} {per_iter:>12?}/iter  ({} iters)",
            bencher.iters
        );
    }
}

/// Times a closure; see [`Bencher::iter`].
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up, then a time-boxed measured loop)
    /// and records the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let budget = Duration::from_millis(200);
        let max_iters = 50u32;
        let started = Instant::now();
        let mut iters = 0u32;
        while iters < max_iters && started.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        self.total = started.elapsed();
        self.iters = iters.max(1);
    }
}

/// A benchmark identifier `name/parameter`.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Groups bench functions into a callable named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut calls = 0u64;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        assert!(calls >= 2, "warm-up plus at least one measured iteration");
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
    }
}

//! The manifest: the store's single commit point.
//!
//! Segment files are epoch-named and immutable once written; `MANIFEST`
//! is the only file ever replaced in place, and only via write-temp →
//! fsync → atomic rename. Whatever instant a crash happens, the
//! manifest on disk names a complete file set from *some* successful
//! snapshot — the worst case is losing the snapshot in flight, never
//! the previous one.
//!
//! The format is the workspace's own JSON
//! ([`infpdb_core::json::Json`]). One encoding wrinkle: JSON numbers
//! are `f64`, which cannot carry a full `u64`, so the 64-bit
//! fingerprints are stored as fixed-width hex strings.

use infpdb_core::json::Json;

use crate::StoreError;

/// On-disk format version this crate writes and understands.
///
/// Version 2 is the sharded layout: each relation's facts are split
/// into fixed-capacity shards (dense `FactId` ranges), every shard is
/// its own segment file with its own fingerprint, and the manifest
/// records the shard capacity plus a `(rel, shard)`-indexed file list.
/// Version-1 manifests (one monolithic segment per relation) are
/// rejected as unknown — the store predates any deployment, so there is
/// no migration path to carry.
pub const FORMAT_VERSION: i64 = 2;

/// A relation declaration, enough to rebuild the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationEntry {
    /// Relation name.
    pub name: String,
    /// Relation arity.
    pub arity: usize,
}

/// One shard file the manifest commits to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Schema-local relation id the shard holds facts of.
    pub rel: u32,
    /// Shard index within the relation: shard `k` holds the relation's
    /// facts `[k·capacity, (k+1)·capacity)` in dense id order.
    pub shard: u32,
    /// File name, relative to the store directory. Shards keep the
    /// epoch they were *written* at in their name, so an unchanged
    /// shard is reused across snapshots without a rewrite.
    pub file: String,
    /// Records the writer put in the shard.
    pub count: u64,
    /// Order-insensitive fingerprint of the shard's records.
    pub fingerprint: u64,
}

/// The committed description of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Format version ([`FORMAT_VERSION`]).
    pub format: i64,
    /// Monotonic snapshot epoch; names the segment files.
    pub epoch: u64,
    /// Total facts in the snapshot (the materialized prefix length).
    pub facts: u64,
    /// Facts per shard; every shard except a relation's last holds
    /// exactly this many records.
    pub shard_capacity: u64,
    /// `TiTable::fingerprint()` of the full materialized prefix.
    pub table_fingerprint: u64,
    /// Identity of the generating supply
    /// (`countable_pdb_fingerprint`), if the writer knew it. Guards
    /// against opening a store against the wrong database.
    pub pdb_fingerprint: Option<u64>,
    /// Opaque open-world distribution descriptor the serving layer
    /// wants restored alongside the facts (tail mass, tail start, …).
    pub descriptor: Option<Json>,
    /// Schema relations in id order.
    pub relations: Vec<RelationEntry>,
    /// Shard files, `(rel, shard)`-indexed.
    pub segments: Vec<SegmentEntry>,
}

fn hex_u64(v: u64) -> Json {
    Json::str(format!("{v:016x}"))
}

fn parse_hex_u64(j: &Json, field: &str) -> Result<u64, StoreError> {
    let s = j
        .as_str()
        .ok_or_else(|| StoreError::Corrupt(format!("manifest: {field} is not a string")))?;
    u64::from_str_radix(s, 16)
        .map_err(|_| StoreError::Corrupt(format!("manifest: {field} is not a hex u64")))
}

fn require<'a>(j: &'a Json, field: &str) -> Result<&'a Json, StoreError> {
    j.get(field)
        .ok_or_else(|| StoreError::Corrupt(format!("manifest: missing field {field}")))
}

fn require_i64(j: &Json, field: &str) -> Result<i64, StoreError> {
    require(j, field)?
        .as_i64()
        .ok_or_else(|| StoreError::Corrupt(format!("manifest: {field} is not an integer")))
}

impl Manifest {
    /// Encodes the manifest to its on-disk JSON text.
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("format".to_string(), Json::Int(self.format)),
            ("epoch".to_string(), Json::Int(self.epoch as i64)),
            ("facts".to_string(), Json::Int(self.facts as i64)),
            (
                "shard_capacity".to_string(),
                Json::Int(self.shard_capacity as i64),
            ),
            ("table_fp".to_string(), hex_u64(self.table_fingerprint)),
        ];
        if let Some(fp) = self.pdb_fingerprint {
            fields.push(("pdb_fp".to_string(), hex_u64(fp)));
        }
        if let Some(d) = &self.descriptor {
            fields.push(("descriptor".to_string(), d.clone()));
        }
        fields.push((
            "relations".to_string(),
            Json::Array(
                self.relations
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::str(r.name.clone())),
                            ("arity", Json::Int(r.arity as i64)),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "segments".to_string(),
            Json::Array(
                self.segments
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("rel", Json::Int(i64::from(s.rel))),
                            ("shard", Json::Int(i64::from(s.shard))),
                            ("file", Json::str(s.file.clone())),
                            ("count", Json::Int(s.count as i64)),
                            ("fp", hex_u64(s.fingerprint)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Object(fields).encode_pretty()
    }

    /// Parses on-disk manifest text. Any malformation is
    /// [`StoreError::Corrupt`] — the manifest is the commit point, so
    /// it is either wholly trustworthy or not at all.
    pub fn parse(text: &str) -> Result<Self, StoreError> {
        let j = Json::parse(text).map_err(|e| StoreError::Corrupt(format!("manifest: {e}")))?;
        let format = require_i64(&j, "format")?;
        if format != FORMAT_VERSION {
            return Err(StoreError::Corrupt(format!(
                "manifest: unknown format version {format} (this build reads {FORMAT_VERSION})"
            )));
        }
        let epoch = require_i64(&j, "epoch")? as u64;
        let facts = require_i64(&j, "facts")? as u64;
        let shard_capacity = require_i64(&j, "shard_capacity")? as u64;
        if shard_capacity == 0 {
            return Err(StoreError::Corrupt(
                "manifest: shard_capacity must be positive".into(),
            ));
        }
        let table_fingerprint = parse_hex_u64(require(&j, "table_fp")?, "table_fp")?;
        let pdb_fingerprint = match j.get("pdb_fp") {
            Some(v) => Some(parse_hex_u64(v, "pdb_fp")?),
            None => None,
        };
        let descriptor = j.get("descriptor").cloned();
        let mut relations = Vec::new();
        for r in require(&j, "relations")?
            .as_array()
            .ok_or_else(|| StoreError::Corrupt("manifest: relations is not an array".into()))?
        {
            relations.push(RelationEntry {
                name: require(r, "name")?
                    .as_str()
                    .ok_or_else(|| {
                        StoreError::Corrupt("manifest: relation name is not a string".into())
                    })?
                    .to_string(),
                arity: require_i64(r, "arity")? as usize,
            });
        }
        let mut segments = Vec::new();
        for s in require(&j, "segments")?
            .as_array()
            .ok_or_else(|| StoreError::Corrupt("manifest: segments is not an array".into()))?
        {
            segments.push(SegmentEntry {
                rel: require_i64(s, "rel")? as u32,
                shard: require_i64(s, "shard")? as u32,
                file: require(s, "file")?
                    .as_str()
                    .ok_or_else(|| {
                        StoreError::Corrupt("manifest: segment file is not a string".into())
                    })?
                    .to_string(),
                count: require_i64(s, "count")? as u64,
                fingerprint: parse_hex_u64(require(s, "fp")?, "fp")?,
            });
        }
        Ok(Manifest {
            format,
            epoch,
            facts,
            shard_capacity,
            table_fingerprint,
            pdb_fingerprint,
            descriptor,
            relations,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            format: FORMAT_VERSION,
            epoch: 7,
            facts: 123,
            shard_capacity: 100,
            table_fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            pdb_fingerprint: Some(u64::MAX),
            descriptor: Some(Json::obj([
                ("tail_mass", Json::Float(0.5)),
                ("tail_start", Json::Int(1_000_000)),
            ])),
            relations: vec![
                RelationEntry {
                    name: "R".into(),
                    arity: 2,
                },
                RelationEntry {
                    name: "S".into(),
                    arity: 1,
                },
            ],
            segments: vec![
                SegmentEntry {
                    rel: 0,
                    shard: 0,
                    file: "rel0-s0-7.seg".into(),
                    count: 100,
                    fingerprint: 42,
                },
                SegmentEntry {
                    rel: 0,
                    shard: 1,
                    file: "rel0-s1-3.seg".into(),
                    count: 23,
                    fingerprint: 43,
                },
            ],
        }
    }

    #[test]
    fn encode_parse_round_trip() {
        let m = sample();
        let parsed = Manifest::parse(&m.encode()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn round_trip_without_optionals() {
        let m = Manifest {
            pdb_fingerprint: None,
            descriptor: None,
            ..sample()
        };
        assert_eq!(Manifest::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn u64_extremes_survive_the_hex_detour() {
        for fp in [0u64, 1, u64::MAX, 1 << 63, 0x8000_0000_0000_0001] {
            let m = Manifest {
                table_fingerprint: fp,
                pdb_fingerprint: Some(fp),
                ..sample()
            };
            let parsed = Manifest::parse(&m.encode()).unwrap();
            assert_eq!(parsed.table_fingerprint, fp);
            assert_eq!(parsed.pdb_fingerprint, Some(fp));
        }
    }

    #[test]
    fn malformed_manifests_are_corrupt_not_panics() {
        for text in [
            "",
            "not json",
            "{}",
            r#"{"format": 99, "epoch": 0, "facts": 0, "shard_capacity": 1, "table_fp": "0", "relations": [], "segments": []}"#,
            // the retired monolithic-segment v1 layout is unknown, loudly
            r#"{"format": 1, "epoch": 0, "facts": 0, "table_fp": "0", "relations": [], "segments": []}"#,
            r#"{"format": 2, "epoch": 0, "facts": 0, "shard_capacity": 0, "table_fp": "0", "relations": [], "segments": []}"#,
            r#"{"format": 2, "epoch": 0, "facts": 0, "table_fp": "0", "relations": [], "segments": []}"#,
            r#"{"format": 2, "epoch": 0, "facts": 0, "shard_capacity": 1, "table_fp": 12, "relations": [], "segments": []}"#,
            r#"{"format": 2, "epoch": 0, "facts": 0, "shard_capacity": 1, "table_fp": "zz", "relations": [], "segments": []}"#,
        ] {
            assert!(
                matches!(Manifest::parse(text), Err(StoreError::Corrupt(_))),
                "{text:?}"
            );
        }
    }
}

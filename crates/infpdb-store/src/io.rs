//! The store's I/O boundary and its failure model.
//!
//! Every byte the store reads or writes goes through [`StoreIo`], so the
//! failure model is explicit and injectable. [`StdIo`] is the real
//! thing; [`FaultyIo`] wraps any implementation and extends the PR-2
//! seeded-fault machinery ([`infpdb_core::faultsim`]) with storage
//! faults at three named sites:
//!
//! | site | faults |
//! |---|---|
//! | [`SITE_WRITE`] | [`IoFault::Error`], [`IoFault::ShortWrite`], [`IoFault::BitFlip`] |
//! | [`SITE_FSYNC`] | [`IoFault::Error`] |
//! | [`SITE_RENAME`] | [`IoFault::Error`] |
//!
//! `Error` makes the operation fail loudly — the snapshot aborts, the
//! old manifest stays the commit point, and nothing is lost.
//! `ShortWrite` and `BitFlip` are the dishonest failures real disks
//! exhibit across power loss: the write *reports success* but persists
//! only a prefix (or a corrupted byte), which is exactly the state a
//! `kill -9` mid-write or a lying write cache leaves behind. Recovery
//! must absorb those by checksum, not by trusting return codes.
//!
//! Determinism: triggers and the flipped bit position derive from the
//! injector's seed and per-site `SplitMix64` streams, so a chaos test
//! can assert the store's failure metrics match injected counts exactly.

use crate::StoreError;
use infpdb_core::faultsim::SiteInjector;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use infpdb_core::faultsim::Trigger;

/// Fault site name for payload writes.
pub const SITE_WRITE: &str = "store_write";
/// Fault site name for fsync barriers.
pub const SITE_FSYNC: &str = "store_fsync";
/// Fault site name for atomic renames.
pub const SITE_RENAME: &str = "store_rename";

/// A read-only view of a whole file: either a real memory mapping
/// (zero-copy — the page cache backs the bytes) or an owned buffer from
/// the pread fallback. `Deref`s to `[u8]` so callers scan it the same
/// way either way; [`is_mapped`](Self::is_mapped) is how the store
/// counts `store_mmap_{maps,fallbacks}_total`.
#[derive(Debug)]
pub enum FileView {
    /// A real `mmap(2)` of the file.
    Mapped(memmap2::Mmap),
    /// The ordinary-read fallback.
    Owned(Vec<u8>),
}

impl FileView {
    /// Whether this view is a real memory mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self, FileView::Mapped(_))
    }
}

impl std::ops::Deref for FileView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            FileView::Mapped(m) => m,
            FileView::Owned(v) => v,
        }
    }
}

/// The file operations the store needs, small enough to fault-inject
/// exhaustively. Implementations must be usable from multiple threads.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// The file's length in bytes without reading its contents — the
    /// manifest-only fast path of `store info`. The default reads the
    /// whole file; real implementations should stat instead.
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(self.read(path)?.len() as u64)
    }
    /// A read-only view of a whole file, preferably zero-copy. The
    /// default delegates to [`read`](Self::read) (an
    /// [`Owned`](FileView::Owned) view); [`StdIo`] overrides it with a
    /// real mapping and falls back to the read when mapping fails.
    fn view(&self, path: &Path) -> io::Result<FileView> {
        Ok(FileView::Owned(self.read(path)?))
    }
    /// Creates (or truncates) `path` and writes `bytes` in full.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Durability barrier: flushes `path`'s data and metadata to disk.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Atomically replaces `to` with `from` (POSIX rename semantics).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flushes the directory entry itself (so renames survive a crash).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file; used only for garbage collection.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Lists the files in a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Creates a directory (and parents).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// Maps an `io::Result` into a [`StoreError`] tagged with the operation.
pub(crate) fn io_err<T>(r: io::Result<T>, op: &'static str, path: &Path) -> Result<T, StoreError> {
    r.map_err(|source| StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    })
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl StoreIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn view(&self, path: &Path) -> io::Result<FileView> {
        let file = fs::File::open(path)?;
        // SAFETY: committed store files are immutable — they are only
        // ever replaced by rename, never rewritten in place — so the
        // mapping's contents cannot change under us.
        match unsafe { memmap2::Mmap::map(&file) } {
            Ok(map) => Ok(FileView::Mapped(map)),
            // graceful pread fallback on platforms or filesystems where
            // mapping fails; the caller counts which path it got
            Err(_) => Ok(FileView::Owned(fs::read(path)?)),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // opening a directory read-only for fsync is POSIX practice; on
        // platforms where it fails (e.g. Windows), the rename is already
        // as durable as the platform allows
        match fs::File::open(dir) {
            Ok(d) => d.sync_all().or(Ok(())),
            Err(_) => Ok(()),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// What to inject when a storage fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The operation returns an injected `io::Error`. A loud, honest
    /// failure: the caller sees it and aborts the snapshot.
    Error,
    /// The write reports success but persists only the first half of
    /// the buffer — the torn-tail state a crash mid-write leaves.
    ShortWrite,
    /// The write reports success but one bit (seeded choice) is
    /// flipped — silent media corruption, caught later by CRC32C.
    BitFlip,
}

/// A seeded fault-injecting [`StoreIo`] wrapper.
#[derive(Debug)]
pub struct FaultyIo<I = StdIo> {
    inner: I,
    injector: Arc<SiteInjector<IoFault>>,
}

impl FaultyIo<StdIo> {
    /// Wraps the real filesystem with a fresh injector.
    pub fn new(seed: u64) -> Self {
        FaultyIo {
            inner: StdIo,
            injector: Arc::new(SiteInjector::new(seed)),
        }
    }
}

impl<I: StoreIo> FaultyIo<I> {
    /// Wraps an arbitrary implementation with an existing injector.
    pub fn with_injector(inner: I, injector: Arc<SiteInjector<IoFault>>) -> Self {
        FaultyIo { inner, injector }
    }

    /// The shared injector, for configuring faults and reading counts.
    pub fn injector(&self) -> &Arc<SiteInjector<IoFault>> {
        &self.injector
    }

    fn injected(site: &str) -> io::Error {
        io::Error::other(format!("injected fault: {site}"))
    }
}

impl<I: StoreIo> StoreIo for FaultyIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.injector.check(SITE_WRITE) {
            None => self.inner.write(path, bytes),
            Some(IoFault::Error) => Err(Self::injected(SITE_WRITE)),
            Some(IoFault::ShortWrite) => {
                // persist a prefix, report success: the lying-cache crash
                self.inner.write(path, &bytes[..bytes.len() / 2])
            }
            Some(IoFault::BitFlip) => {
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let r = self.injector.draw(SITE_WRITE);
                    let byte = (r as usize / 8) % corrupted.len();
                    let bit = (r % 8) as u8;
                    corrupted[byte] ^= 1 << bit;
                }
                self.inner.write(path, &corrupted)
            }
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.injector.check(SITE_FSYNC) {
            Some(_) => Err(Self::injected(SITE_FSYNC)),
            None => self.inner.fsync(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.injector.check(SITE_RENAME) {
            Some(_) => Err(Self::injected(SITE_RENAME)),
            None => self.inner.rename(from, to),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
}

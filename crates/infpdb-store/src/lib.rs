#![warn(missing_docs)]
//! Durable fact store for `infpdb`: crash-safe snapshots of grounded
//! enumeration prefixes, with torn-write recovery.
//!
//! Everything the prepared-query pipeline grounds lives in one
//! append-only [`FactCatalog`](infpdb_ti::catalog::FactCatalog): dense
//! fact ids equal to enumeration indexes, probabilities aligned. This
//! crate persists that artifact so a restart skips the enumeration cost
//! and a crash loses at most the unsnapshotted suffix:
//!
//! * **Segments** ([`segment`]) — one file per *shard*: each relation's
//!   facts are chunked into fixed-capacity dense-id ranges, records in
//!   dense `FactId` order, fixed-width frame headers (length + CRC32C)
//!   around each record, a footer carrying the record count and an
//!   order-insensitive content fingerprint. Full shards are immutable,
//!   so incremental snapshots rewrite only the tail shards that changed
//!   and reuse the rest byte-for-byte.
//! * **Manifest** ([`manifest`]) — the single commit point. Shard
//!   files are immutable once written (named for the epoch that wrote
//!   them); `MANIFEST` is replaced only via write-temp → fsync → atomic
//!   rename, so at every instant the manifest on disk points at a
//!   complete set of files from *some* successful snapshot.
//! * **Recovery** ([`store`]) — total and honest. A torn or corrupt
//!   segment tail is detected by checksum, truncated to the last valid
//!   record, and reported as a recovered prefix (facts kept, facts
//!   dropped) rather than a panic or silent acceptance. Truncating to a
//!   prefix is *sound* by the paper's Proposition 6.1: any `m`-fact
//!   prefix re-certifies at the widened tolerance
//!   `ε_m = e^{1.5·T_m} − 1` (the query layer computes the floor via
//!   its partial certificates).
//! * **Failure model** ([`io`]) — all file I/O goes through the
//!   [`StoreIo`] trait. [`FaultyIo`] extends the serving layer's seeded
//!   fault machinery ([`infpdb_core::faultsim`]) with storage faults:
//!   short writes, seeded bit flips, and injected I/O errors at the
//!   write/fsync/rename sites, deterministically per seed.

pub mod io;
pub mod manifest;
pub mod segment;
pub mod store;

pub use io::{FaultyIo, FileView, IoFault, StdIo, StoreIo};
pub use manifest::Manifest;
pub use store::{
    FsckReport, Recovered, RecoveryReport, ShardStat, SnapshotInfo, Store, StoreStat,
    DEFAULT_SHARD_CAPACITY,
};

/// Errors of the durable-store layer.
#[derive(Debug)]
pub enum StoreError {
    /// A file operation failed (including injected faults).
    Io {
        /// Which operation (`"write"`, `"fsync"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: std::path::PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// On-disk state failed validation beyond what recovery can absorb
    /// (unparseable manifest, unknown format version).
    Corrupt(String),
    /// Rebuilding the catalog from recovered records failed.
    Ti(infpdb_ti::TiError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} failed on {}: {source}", path.display())
            }
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Ti(e) => write!(f, "store restore failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<infpdb_ti::TiError> for StoreError {
    fn from(e: infpdb_ti::TiError) -> Self {
        StoreError::Ti(e)
    }
}

/// CRC32C (Castagnoli), the per-record and footer checksum.
///
/// Software table implementation; the polynomial's error-detection
/// properties (and hardware support elsewhere) are why storage systems
/// standardized on it over CRC32.
pub fn crc32c(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32c_table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

const fn crc32c_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0x82F6_3B78 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 appendix test vectors
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn crc32c_detects_single_bit_flips() {
        let base = b"the quick brown fox".to_vec();
        let c0 = crc32c(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), c0, "flip at {byte}:{bit}");
            }
        }
    }
}

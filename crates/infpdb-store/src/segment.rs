//! Segment files: one relation's slice of the catalog, checksummed.
//!
//! A segment holds the facts of a single relation in dense [`FactId`]
//! order. The layout is designed so that *any* prefix of the file, cut
//! at any byte, decodes to a valid (possibly empty) prefix of records —
//! the property torn-write recovery rests on:
//!
//! ```text
//! header   "IPDBSEG1" | rel u32 | arity u32 | crc32c(rel,arity) u32      20 B
//! record*  len u32 | crc32c(payload) u32 | payload                     8+len
//! footer   "IPDBFTR1" | count u64 | fingerprint u64 | crc32c u32        28 B
//! ```
//!
//! The record payload is `fact_id u32 | prob_bits u64 | argc u16 | args`,
//! each argument tagged (`0` Int `i64`, `1` Fixed `mantissa i64, exp u8`,
//! `2` Str `len u32, utf8`). Probabilities cross the boundary as exact
//! `f64` bit patterns — restored answers must be bit-for-bit equal to
//! fresh-ground ones, so no decimal round trip is allowed anywhere.
//!
//! The footer's fingerprint is the order-insensitive
//! [`combine_unordered`] of [`fact_fingerprint`]s, the same digest
//! [`TiTable::fingerprint`](infpdb_finite::TiTable::fingerprint) builds
//! on, so a loaded segment can be verified against the live table.
//!
//! [`scan_segment`] never fails: it walks frames until the first
//! checksum mismatch or truncated frame and reports what it kept and
//! what it lost. Interpreting the loss is the caller's job.

use infpdb_core::fact::{Fact, FactId};
use infpdb_core::fingerprint::{combine_unordered, fact_fingerprint};
use infpdb_core::schema::{RelId, Schema};
use infpdb_core::value::{Fixed, Value};

use crate::crc32c;

/// Magic bytes opening every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"IPDBSEG1";
/// Magic bytes opening the footer.
pub const FTR_MAGIC: &[u8; 8] = b"IPDBFTR1";
/// Header length in bytes.
pub const HEADER_LEN: usize = 20;
/// Footer length in bytes.
pub const FOOTER_LEN: usize = 28;
/// Sanity cap on a single record frame's payload length. A frame
/// claiming more than this is treated as torn rather than allocated.
pub const MAX_RECORD_LEN: u32 = 1 << 24;
/// Minimum payload length: `fact_id u32 + prob u64 + argc u16`.
const MIN_RECORD_LEN: u32 = 14;

const TAG_INT: u8 = 0;
const TAG_FIXED: u8 = 1;
const TAG_STR: u8 = 2;

/// Parsed segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// The relation this segment belongs to (schema-local id).
    pub rel: u32,
    /// The relation's arity, recorded for fsck without a schema.
    pub arity: u32,
}

/// Parsed segment footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentFooter {
    /// Number of records the writer put in this segment.
    pub count: u64,
    /// Order-insensitive fingerprint of the records.
    pub fingerprint: u64,
}

/// One decoded record. The relation comes from the segment header.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRecord {
    /// Dense fact id (equals the enumeration index).
    pub id: u32,
    /// Marginal probability, exact bits preserved.
    pub prob: f64,
    /// Argument tuple.
    pub args: Vec<Value>,
}

impl SegmentRecord {
    /// Rebuilds the [`Fact`] this record encodes.
    pub fn to_fact(&self, rel: RelId) -> Fact {
        Fact::new(rel, self.args.iter().cloned())
    }
}

/// What a [`scan_segment`] pass found. Never an error: corruption is
/// data, reported in the counters.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// The header, if its magic and checksum were intact.
    pub header: Option<SegmentHeader>,
    /// Records up to the first damage, in file order.
    pub records: Vec<SegmentRecord>,
    /// The footer, if reached and intact.
    pub footer: Option<SegmentFooter>,
    /// Frames (or the header/footer) whose checksum did not match.
    pub checksum_failures: u64,
    /// Bytes after the last valid record that could not be decoded —
    /// the torn tail a crashed write leaves.
    pub torn_bytes: usize,
}

impl ScanOutcome {
    /// Whether the segment read back exactly as written: intact header,
    /// intact footer, record count matching the footer, no damage.
    pub fn clean(&self) -> bool {
        self.header.is_some()
            && self.checksum_failures == 0
            && self.torn_bytes == 0
            && self
                .footer
                .is_some_and(|f| f.count == self.records.len() as u64)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_payload(id: FactId, fact: &Fact, prob: f64) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    put_u32(&mut p, id.0);
    put_u64(&mut p, prob.to_bits());
    put_u16(&mut p, fact.args().len() as u16);
    for arg in fact.args() {
        match arg {
            Value::Int(n) => {
                p.push(TAG_INT);
                put_u64(&mut p, *n as u64);
            }
            Value::Fixed(x) => {
                p.push(TAG_FIXED);
                put_u64(&mut p, x.mantissa() as u64);
                p.push(x.exponent());
            }
            Value::Str(s) => {
                p.push(TAG_STR);
                put_u32(&mut p, s.len() as u32);
                p.extend_from_slice(s.as_bytes());
            }
        }
    }
    p
}

/// Serializes one relation's records into a complete segment file image.
/// `records` must be in ascending [`FactId`] order (the catalog's
/// iteration order, filtered to `rel`).
pub fn encode_segment(schema: &Schema, rel: RelId, records: &[(FactId, &Fact, f64)]) -> Vec<u8> {
    let arity = schema.get(rel).map(|r| r.arity()).unwrap_or(0) as u32;
    let mut out = Vec::with_capacity(HEADER_LEN + FOOTER_LEN + records.len() * 40);
    out.extend_from_slice(SEG_MAGIC);
    put_u32(&mut out, rel.0);
    put_u32(&mut out, arity);
    let hdr_crc = crc32c(&out[8..16]);
    put_u32(&mut out, hdr_crc);
    let mut digests = Vec::with_capacity(records.len());
    for &(id, fact, prob) in records {
        let payload = encode_payload(id, fact, prob);
        put_u32(&mut out, payload.len() as u32);
        put_u32(&mut out, crc32c(&payload));
        out.extend_from_slice(&payload);
        digests.push(fact_fingerprint(schema, fact, prob));
    }
    let fp = combine_unordered(digests);
    out.extend_from_slice(FTR_MAGIC);
    put_u64(&mut out, records.len() as u64);
    put_u64(&mut out, fp);
    let ftr_start = out.len() - 16;
    let ftr_crc = crc32c(&out[ftr_start..]);
    put_u32(&mut out, ftr_crc);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
}

fn decode_payload(payload: &[u8]) -> Option<SegmentRecord> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let id = c.u32()?;
    let prob = f64::from_bits(c.u64()?);
    let argc = c.u16()?;
    let mut args = Vec::with_capacity(argc as usize);
    for _ in 0..argc {
        let arg = match c.u8()? {
            TAG_INT => Value::Int(c.u64()? as i64),
            TAG_FIXED => {
                let mantissa = c.u64()? as i64;
                let exp = c.u8()?;
                if exp > Fixed::MAX_EXPONENT {
                    return None;
                }
                let fixed = Fixed::new(mantissa, exp);
                // reject non-canonical encodings: they cannot have been
                // produced by encode_payload, so this is corruption
                if fixed.mantissa() != mantissa || fixed.exponent() != exp {
                    return None;
                }
                Value::Fixed(fixed)
            }
            TAG_STR => {
                let len = c.u32()? as usize;
                let bytes = c.take(len)?;
                Value::Str(std::str::from_utf8(bytes).ok()?.into())
            }
            _ => return None,
        };
        args.push(arg);
    }
    if c.pos != payload.len() {
        return None;
    }
    Some(SegmentRecord { id, prob, args })
}

/// Walks a segment image front to back, keeping every record up to the
/// first damage. Total: any byte string yields an outcome, and the
/// records returned are always exactly what an undamaged prefix of the
/// file contained.
pub fn scan_segment(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    if bytes.len() < HEADER_LEN || &bytes[..8] != SEG_MAGIC {
        out.torn_bytes = bytes.len();
        return out;
    }
    let hdr_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if crc32c(&bytes[8..16]) != hdr_crc {
        out.checksum_failures += 1;
        out.torn_bytes = bytes.len();
        return out;
    }
    out.header = Some(SegmentHeader {
        rel: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        arity: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
    });
    let mut pos = HEADER_LEN;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            // no footer: the writer was killed between records
            break;
        }
        if rest.len() >= 8 && &rest[..8] == FTR_MAGIC {
            if rest.len() < FOOTER_LEN {
                out.torn_bytes = rest.len();
                break;
            }
            let crc = u32::from_le_bytes(rest[24..28].try_into().unwrap());
            if crc32c(&rest[8..24]) != crc {
                out.checksum_failures += 1;
                out.torn_bytes = rest.len();
                break;
            }
            out.footer = Some(SegmentFooter {
                count: u64::from_le_bytes(rest[8..16].try_into().unwrap()),
                fingerprint: u64::from_le_bytes(rest[16..24].try_into().unwrap()),
            });
            // anything after an intact footer is foreign junk
            out.torn_bytes = rest.len() - FOOTER_LEN;
            break;
        }
        if rest.len() < 8 {
            out.torn_bytes = rest.len();
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if !(MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&len) || rest.len() < 8 + len as usize {
            out.torn_bytes = rest.len();
            break;
        }
        let payload = &rest[8..8 + len as usize];
        if crc32c(payload) != crc {
            out.checksum_failures += 1;
            out.torn_bytes = rest.len();
            break;
        }
        match decode_payload(payload) {
            Some(rec) => out.records.push(rec),
            None => {
                // CRC passed but the payload grammar didn't: corruption
                // that collided the checksum, or a writer bug — either
                // way the tail is untrustworthy
                out.checksum_failures += 1;
                out.torn_bytes = rest.len();
                break;
            }
        }
        pos += 8 + len as usize;
    }
    out
}

/// Recomputes the order-insensitive fingerprint of decoded records — the
/// value the footer stores — for verification against the live table.
pub fn records_fingerprint(schema: &Schema, rel: RelId, records: &[SegmentRecord]) -> u64 {
    combine_unordered(
        records
            .iter()
            .map(|r| fact_fingerprint(schema, &r.to_fact(rel), r.prob)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::Relation;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 2)]).unwrap()
    }

    fn sample_records() -> Vec<(FactId, Fact, f64)> {
        (0..5)
            .map(|i| {
                (
                    FactId(i),
                    Fact::new(
                        RelId(0),
                        [
                            Value::int(i as i64),
                            if i % 2 == 0 {
                                Value::str(format!("s{i}"))
                            } else {
                                Value::fixed(i as i64 * 10 + 1, 1)
                            },
                        ],
                    ),
                    0.5_f64.powi(i as i32 + 1),
                )
            })
            .collect()
    }

    fn encode_sample() -> (Vec<u8>, Vec<(FactId, Fact, f64)>) {
        let s = schema();
        let owned = sample_records();
        let borrowed: Vec<(FactId, &Fact, f64)> =
            owned.iter().map(|(i, f, p)| (*i, f, *p)).collect();
        (encode_segment(&s, RelId(0), &borrowed), owned)
    }

    #[test]
    fn round_trip_is_exact() {
        let (bytes, owned) = encode_sample();
        let scan = scan_segment(&bytes);
        assert!(scan.clean(), "{scan:?}");
        assert_eq!(scan.header.unwrap().rel, 0);
        assert_eq!(scan.header.unwrap().arity, 2);
        assert_eq!(scan.records.len(), owned.len());
        for (rec, (id, fact, prob)) in scan.records.iter().zip(&owned) {
            assert_eq!(rec.id, id.0);
            assert_eq!(rec.prob.to_bits(), prob.to_bits());
            assert_eq!(&rec.to_fact(RelId(0)), fact);
        }
        let fp = records_fingerprint(&schema(), RelId(0), &scan.records);
        assert_eq!(fp, scan.footer.unwrap().fingerprint);
    }

    #[test]
    fn truncation_at_every_byte_yields_a_valid_prefix() {
        let (bytes, owned) = encode_sample();
        for cut in 0..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            assert!(
                scan.records.len() <= owned.len(),
                "cut {cut} invented records"
            );
            assert!(!scan.clean() || cut == bytes.len());
            for (rec, (id, fact, prob)) in scan.records.iter().zip(&owned) {
                assert_eq!(rec.id, id.0, "cut {cut}");
                assert_eq!(rec.prob.to_bits(), prob.to_bits(), "cut {cut}");
                assert_eq!(&rec.to_fact(RelId(0)), fact, "cut {cut}");
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (bytes, owned) = encode_sample();
        let baseline = scan_segment(&bytes);
        assert!(baseline.clean());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                let scan = scan_segment(&flipped);
                // a flip may land in a record we then drop, but it must
                // never produce a clean full read with altered content
                if scan.clean() && scan.records.len() == owned.len() {
                    for (rec, (id, fact, prob)) in scan.records.iter().zip(&owned) {
                        assert_eq!(rec.id, id.0, "flip {byte}:{bit}");
                        assert_eq!(rec.prob.to_bits(), prob.to_bits(), "flip {byte}:{bit}");
                        assert_eq!(&rec.to_fact(RelId(0)), fact, "flip {byte}:{bit}");
                    }
                    assert_eq!(
                        records_fingerprint(&schema(), RelId(0), &scan.records),
                        baseline.footer.unwrap().fingerprint,
                        "flip {byte}:{bit}"
                    );
                } else {
                    assert!(
                        scan.checksum_failures > 0 || scan.torn_bytes > 0 || !scan.clean(),
                        "flip {byte}:{bit} went unnoticed"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let s = schema();
        let bytes = encode_segment(&s, RelId(0), &[]);
        let scan = scan_segment(&bytes);
        assert!(scan.clean());
        assert!(scan.records.is_empty());
        assert_eq!(scan.footer.unwrap().count, 0);
    }

    #[test]
    fn garbage_input_is_all_torn() {
        let scan = scan_segment(b"not a segment at all, sorry");
        assert!(scan.header.is_none());
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_bytes, 27);
    }
}

//! The store proper: sharded snapshots, load-with-recovery, and fsck.
//!
//! Facts are sharded per relation: shard `k` of a relation holds that
//! relation's facts `[k·capacity, (k+1)·capacity)` in dense id order,
//! each shard its own segment file `rel{r}-s{k}-{epoch}.seg`. Because
//! the catalog is append-only, every shard except a relation's tail
//! shard is immutable once full — so a snapshot after appending `m`
//! facts rewrites only the tail shards (O(capacity + m) bytes), not the
//! whole store.
//!
//! Commit protocol (the crash matrix lives in DESIGN.md §12):
//!
//! 1. Shards whose `(count, fingerprint)` differ from the committed
//!    manifest are written under fresh names (`rel{r}-s{k}-{epoch}.seg`)
//!    and fsynced; unchanged shards are *reused* — the new manifest
//!    simply names their old files. New files are invisible until
//!    committed — a crash here leaves garbage the next snapshot GCs.
//! 2. The manifest is written to `MANIFEST.tmp`, fsynced, and renamed
//!    onto `MANIFEST`; the directory is fsynced. The rename is the
//!    commit point: before it the old snapshot is intact, after it the
//!    new one is.
//! 3. Segment files the just-committed manifest does not reference are
//!    unlinked (best effort; failures are ignored and retried by the
//!    next snapshot's GC).
//!
//! Shard fingerprints come from the catalog's cached per-fact digests
//! ([`FactCatalog::fact_digests`]) combined order-insensitively, which
//! is bit-identical to the segment footer [`encode_segment`] writes — so
//! deciding which shards to skip costs O(#facts) u64 combines, never a
//! re-hash of fact content, and an unchanged snapshot is detected in
//! O(1) from the running catalog fingerprint without touching any shard.
//!
//! Loading never panics on damage. Each committed shard is opened as a
//! read-only [`FileView`](crate::io::FileView) (mmap when the platform
//! grants it, a read fallback otherwise — the report counts which),
//! scanned front-to-back ([`scan_segment`]), the surviving records
//! merged by dense fact id, and the longest contiguous id prefix from
//! zero rebuilt into a catalog. Everything else — dropped facts,
//! checksum failures, missing files, fingerprint mismatches — is
//! surfaced in the [`RecoveryReport`]. Truncating to a prefix is sound
//! (Proposition 6.1); the query layer turns the kept length into a
//! widened ε floor via its partial certificates.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use infpdb_core::fingerprint::UnorderedCombiner;
use infpdb_core::json::Json;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_ti::catalog::FactCatalog;

use crate::io::{io_err, StdIo, StoreIo};
use crate::manifest::{Manifest, RelationEntry, SegmentEntry, FORMAT_VERSION};
use crate::segment::{encode_segment, records_fingerprint, scan_segment, SegmentRecord};
use crate::StoreError;

/// Name of the commit-point file.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Default facts per shard: 2²⁰. At ~40 B/record that is ~40 MiB of
/// segment per shard, and a 10⁷-fact store is ~10 shards — small enough
/// that an incremental snapshot rewrites ≤ 1 tail shard per relation,
/// large enough that the manifest stays tiny.
pub const DEFAULT_SHARD_CAPACITY: u64 = 1 << 20;

/// A durable fact store rooted at a directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
    shard_capacity: u64,
}

/// What a snapshot did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The committed epoch (the *previous* epoch when `unchanged`).
    pub epoch: u64,
    /// Facts persisted.
    pub facts: u64,
    /// Shard files actually written this snapshot.
    pub shards_written: usize,
    /// Committed shards reused unmodified from the previous epoch.
    pub shards_skipped: usize,
    /// Total shard bytes written (manifest excluded).
    pub bytes: u64,
    /// Whether the snapshot was a no-op: nothing changed since the
    /// committed manifest, so no file — not even the manifest — was
    /// touched.
    pub unchanged: bool,
}

/// Honest accounting of a load: what survived, what did not, and why.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Facts the manifest committed to.
    pub facts_expected: u64,
    /// Facts actually restored (the contiguous id prefix).
    pub facts_kept: u64,
    /// Facts lost to damage: `expected − kept`.
    pub facts_dropped: u64,
    /// Record frames, headers, or footers whose checksum failed.
    pub checksum_failures: u64,
    /// Shard files the manifest names that could not be read.
    pub missing_segments: u64,
    /// Shards opened as real memory mappings (zero-copy).
    pub mmap_maps: u64,
    /// Shards that fell back to an ordinary read.
    pub mmap_fallbacks: u64,
    /// Whether the rebuilt table's fingerprint matched the manifest
    /// (only checkable when every fact survived).
    pub fingerprint_verified: bool,
}

impl RecoveryReport {
    /// Whether the load read back exactly what was written. Which I/O
    /// path served the bytes (mmap vs fallback) is irrelevant here.
    pub fn clean(&self) -> bool {
        self.facts_dropped == 0
            && self.checksum_failures == 0
            && self.missing_segments == 0
            && self.fingerprint_verified
    }
}

/// The result of [`Store::load`]: a rebuilt catalog plus the manifest
/// and the recovery accounting.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The restored catalog — the longest valid prefix on disk.
    pub catalog: FactCatalog,
    /// The committed manifest the load worked from.
    pub manifest: Manifest,
    /// What happened on the way.
    pub report: RecoveryReport,
}

/// Per-shard detail of an fsck pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckRelation {
    /// Relation name.
    pub name: String,
    /// Shard index within the relation.
    pub shard: u32,
    /// Shard file name (relative to the store directory).
    pub file: String,
    /// Records the manifest committed to.
    pub records_expected: u64,
    /// Records that scanned back intact.
    pub records_found: u64,
    /// Checksum failures in this shard.
    pub checksum_failures: u64,
    /// Undecodable tail bytes.
    pub torn_bytes: u64,
    /// Whether the file was readable at all.
    pub readable: bool,
    /// Whether the recomputed record fingerprint matched both the
    /// shard footer and the manifest entry.
    pub fingerprint_ok: bool,
}

/// The result of [`Store::verify`] (`infpdb store verify`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The committed epoch.
    pub epoch: u64,
    /// Facts the manifest committed to.
    pub facts_expected: u64,
    /// Per-shard findings.
    pub relations: Vec<FsckRelation>,
}

impl FsckReport {
    /// Whether every shard verified end to end.
    pub fn clean(&self) -> bool {
        self.relations.iter().all(|r| {
            r.readable
                && r.checksum_failures == 0
                && r.torn_bytes == 0
                && r.records_found == r.records_expected
                && r.fingerprint_ok
        })
    }

    /// Total checksum failures across shards.
    pub fn checksum_failures(&self) -> u64 {
        self.relations.iter().map(|r| r.checksum_failures).sum()
    }
}

/// Per-shard line of [`Store::stat`] — taken from the manifest plus one
/// `stat(2)` per file, no shard contents read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    /// Schema-local relation id.
    pub rel: u32,
    /// Relation name from the manifest.
    pub name: String,
    /// Shard index within the relation.
    pub shard: u32,
    /// Shard file name (relative to the store directory).
    pub file: String,
    /// Records the manifest committed to.
    pub count: u64,
    /// File size in bytes; 0 when the file is missing.
    pub bytes: u64,
    /// Whether the file exists at all (contents are *not* verified —
    /// that is [`Store::verify`]'s job).
    pub present: bool,
}

/// The result of [`Store::stat`] (`infpdb store info`): everything the
/// manifest plus per-file `stat(2)` calls can answer, without reading a
/// single shard byte — O(#shards), not O(#facts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStat {
    /// The committed epoch.
    pub epoch: u64,
    /// Facts the manifest committed to.
    pub facts: u64,
    /// Facts per shard.
    pub shard_capacity: u64,
    /// Identity of the generating supply, if recorded.
    pub pdb_fingerprint: Option<u64>,
    /// Per-shard stats, manifest order.
    pub shards: Vec<ShardStat>,
    /// Sum of present shard file sizes.
    pub total_bytes: u64,
}

impl Store {
    /// A store over the real filesystem with the default shard capacity.
    pub fn open_dir(dir: impl Into<PathBuf>) -> Self {
        Self::with_io(dir, Arc::new(StdIo))
    }

    /// A store over an explicit I/O implementation (fault injection).
    pub fn with_io(dir: impl Into<PathBuf>, io: Arc<dyn StoreIo>) -> Self {
        Store {
            dir: dir.into(),
            io,
            shard_capacity: DEFAULT_SHARD_CAPACITY,
        }
    }

    /// Overrides the facts-per-shard capacity for snapshots this store
    /// writes. Reading adapts to whatever the manifest says, so mixed
    /// capacities across a store's history are fine — the next snapshot
    /// at a different capacity simply rewrites every shard once.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn with_shard_capacity(mut self, capacity: u64) -> Self {
        assert!(capacity > 0, "shard capacity must be positive");
        self.shard_capacity = capacity;
        self
    }

    /// The facts-per-shard capacity snapshots will use.
    pub fn shard_capacity(&self) -> u64 {
        self.shard_capacity
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// Reads and parses the committed manifest; `None` when the store
    /// directory holds no snapshot yet.
    pub fn read_manifest(&self) -> Result<Option<Manifest>, StoreError> {
        let path = self.manifest_path();
        if !self.io.exists(&path) {
            return Ok(None);
        }
        let bytes = io_err(self.io.read(&path), "read", &path)?;
        let text = String::from_utf8(bytes)
            .map_err(|_| StoreError::Corrupt("manifest: not UTF-8".into()))?;
        Manifest::parse(&text).map(Some)
    }

    fn next_epoch_after(&self, prev: Option<&Manifest>) -> u64 {
        // prefer the committed epoch; fall back to scanning file names so
        // a corrupt manifest cannot make us reuse (and clobber) an epoch
        if let Some(m) = prev {
            return m.epoch + 1;
        }
        let mut max = 0u64;
        if let Ok(files) = self.io.list(&self.dir) {
            for f in files {
                if let Some(e) = parse_epoch(&f) {
                    max = max.max(e);
                }
            }
        }
        max + 1
    }

    /// Writes a snapshot of `catalog` and commits it, reusing every
    /// committed shard whose contents are unchanged and skipping the
    /// commit entirely when *nothing* changed. On any error the
    /// previously committed snapshot (if any) is untouched.
    ///
    /// `pdb_fingerprint` identifies the generating supply (so an open
    /// against a different database is detected); `descriptor` is an
    /// opaque blob the caller wants restored alongside the facts.
    pub fn snapshot(
        &self,
        catalog: &FactCatalog,
        pdb_fingerprint: Option<u64>,
        descriptor: Option<Json>,
    ) -> Result<SnapshotInfo, StoreError> {
        io_err(self.io.create_dir_all(&self.dir), "create_dir", &self.dir)?;
        // a corrupt manifest is not fatal to writing: treat it as absent
        // (next_epoch_after then scans file names) and rewrite everything
        let prev = self.read_manifest().ok().flatten();
        let table_fingerprint = catalog.fingerprint();

        // no-op fast path: the committed snapshot already is this catalog
        if let Some(m) = &prev {
            if m.facts == catalog.len() as u64
                && m.shard_capacity == self.shard_capacity
                && m.table_fingerprint == table_fingerprint
                && m.pdb_fingerprint == pdb_fingerprint
                && m.descriptor == descriptor
            {
                return Ok(SnapshotInfo {
                    epoch: m.epoch,
                    facts: m.facts,
                    shards_written: 0,
                    shards_skipped: m.segments.len(),
                    bytes: 0,
                    unchanged: true,
                });
            }
        }

        let epoch = self.next_epoch_after(prev.as_ref());
        let schema = catalog.schema();

        // shards from the previous epoch we may reuse, keyed (rel, shard)
        let reusable: HashMap<(u32, u32), &SegmentEntry> = match &prev {
            Some(m) if m.shard_capacity == self.shard_capacity => {
                m.segments.iter().map(|s| ((s.rel, s.shard), s)).collect()
            }
            _ => HashMap::new(),
        };

        // group the dense prefix by relation, preserving id order, and
        // carry each fact's cached digest for shard fingerprints
        type Row<'a> = (infpdb_core::fact::FactId, &'a infpdb_core::fact::Fact, f64);
        let mut by_rel: Vec<(Vec<Row<'_>>, Vec<u64>)> =
            vec![(Vec::new(), Vec::new()); schema.len()];
        let digests = catalog.fact_digests();
        for (id, fact, prob) in catalog.iter() {
            let slot = &mut by_rel[fact.rel().0 as usize];
            slot.0.push((id, fact, prob));
            slot.1.push(digests[id.0 as usize]);
        }

        let cap = self.shard_capacity as usize;
        let mut segments = Vec::new();
        let mut bytes_written = 0u64;
        let mut shards_written = 0usize;
        let mut shards_skipped = 0usize;
        for (rel_idx, (records, rel_digests)) in by_rel.iter().enumerate() {
            let rel = RelId(rel_idx as u32);
            for (k, chunk) in records.chunks(cap).enumerate() {
                let shard = k as u32;
                // shard fingerprint from cached digests — bit-identical
                // to the footer encode_segment would write, but O(chunk)
                // u64 combines instead of re-hashing fact content
                let mut comb = UnorderedCombiner::new();
                for &d in &rel_digests[k * cap..k * cap + chunk.len()] {
                    comb.add(d);
                }
                let fingerprint = comb.finish();
                if let Some(old) = reusable.get(&(rel.0, shard)) {
                    if old.count == chunk.len() as u64
                        && old.fingerprint == fingerprint
                        && self.io.exists(&self.dir.join(&old.file))
                    {
                        shards_skipped += 1;
                        segments.push((*old).clone());
                        continue;
                    }
                }
                let image = encode_segment(schema, rel, chunk);
                // footer layout: magic 8 | count 8 | fingerprint 8 | crc 4
                let fp_off = image.len() - 12;
                debug_assert_eq!(
                    u64::from_le_bytes(image[fp_off..fp_off + 8].try_into().unwrap()),
                    fingerprint,
                    "cached digests diverged from segment footer"
                );
                let file = format!("rel{rel_idx}-s{shard}-{epoch}.seg");
                let path = self.dir.join(&file);
                io_err(self.io.write(&path, &image), "write", &path)?;
                io_err(self.io.fsync(&path), "fsync", &path)?;
                bytes_written += image.len() as u64;
                shards_written += 1;
                segments.push(SegmentEntry {
                    rel: rel.0,
                    shard,
                    file,
                    count: chunk.len() as u64,
                    fingerprint,
                });
            }
        }

        let manifest = Manifest {
            format: FORMAT_VERSION,
            epoch,
            facts: catalog.len() as u64,
            shard_capacity: self.shard_capacity,
            table_fingerprint,
            pdb_fingerprint,
            descriptor,
            relations: schema
                .iter()
                .map(|(_, r)| RelationEntry {
                    name: r.name().to_string(),
                    arity: r.arity(),
                })
                .collect(),
            segments,
        };

        // commit: write-temp → fsync → atomic rename → sync dir
        let tmp = self.dir.join(MANIFEST_TMP);
        let dst = self.manifest_path();
        io_err(
            self.io.write(&tmp, manifest.encode().as_bytes()),
            "write",
            &tmp,
        )?;
        io_err(self.io.fsync(&tmp), "fsync", &tmp)?;
        io_err(self.io.rename(&tmp, &dst), "rename", &dst)?;
        io_err(self.io.sync_dir(&self.dir), "sync_dir", &self.dir)?;

        self.gc(&manifest);

        Ok(SnapshotInfo {
            epoch,
            facts: catalog.len() as u64,
            shards_written,
            shards_skipped,
            bytes: bytes_written,
            unchanged: false,
        })
    }

    /// Unlinks `.seg` files the just-committed manifest does not
    /// reference (best effort — a failure here is retried by the next
    /// snapshot). Reference-set based, not epoch based: reused shards
    /// keep their old-epoch names and must survive.
    fn gc(&self, committed: &Manifest) {
        let referenced: std::collections::HashSet<&str> =
            committed.segments.iter().map(|s| s.file.as_str()).collect();
        let Ok(files) = self.io.list(&self.dir) else {
            return;
        };
        for f in files {
            let Some(name) = f.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".seg") && !referenced.contains(name) {
                let _ = self.io.remove(&f);
            }
        }
    }

    /// Loads the committed snapshot, recovering the longest valid
    /// prefix. Shards are opened as read-only views — a real mmap when
    /// the platform grants one (counted in
    /// [`RecoveryReport::mmap_maps`]), an ordinary read otherwise.
    /// `Ok(None)` when the directory holds no snapshot;
    /// [`StoreError::Corrupt`] only when the manifest itself — the
    /// commit point — is unusable.
    pub fn load(&self) -> Result<Option<Recovered>, StoreError> {
        let Some(manifest) = self.read_manifest()? else {
            return Ok(None);
        };
        let schema = Schema::from_relations(
            manifest
                .relations
                .iter()
                .map(|r| Relation::new(r.name.clone(), r.arity)),
        )
        .map_err(|e| StoreError::Corrupt(format!("manifest schema: {e}")))?;

        let mut report = RecoveryReport {
            facts_expected: manifest.facts,
            ..RecoveryReport::default()
        };

        // merge scanned records by dense id
        let mut slots: Vec<Option<(SegmentRecord, RelId)>> = vec![None; manifest.facts as usize];
        for entry in &manifest.segments {
            let path = self.dir.join(&entry.file);
            let Ok(view) = self.io.view(&path) else {
                report.missing_segments += 1;
                continue;
            };
            if view.is_mapped() {
                report.mmap_maps += 1;
            } else {
                report.mmap_fallbacks += 1;
            }
            let scan = scan_segment(&view);
            report.checksum_failures += scan.checksum_failures;
            match scan.header {
                Some(h) if h.rel == entry.rel => {}
                _ => {
                    // header damage already counted via checksum; a rel
                    // mismatch means the file is not the manifest's — an
                    // inconsistency we refuse to read facts out of
                    if scan.header.is_some() {
                        report.checksum_failures += 1;
                    }
                    continue;
                }
            }
            for rec in scan.records {
                let idx = rec.id as usize;
                if idx < slots.len() && slots[idx].is_none() {
                    slots[idx] = Some((rec, RelId(entry.rel)));
                } else {
                    // an id out of the committed range, or a duplicate:
                    // inconsistent with the manifest, so distrust it
                    report.checksum_failures += 1;
                }
            }
        }

        // rebuild the longest contiguous prefix; stop early if a record
        // that passed its checksum still fails catalog validation
        let mut catalog = FactCatalog::new(schema);
        for slot in &slots {
            let Some((rec, rel)) = slot else { break };
            if catalog.push(rec.to_fact(*rel), rec.prob).is_err() {
                report.checksum_failures += 1;
                break;
            }
        }
        report.facts_kept = catalog.len() as u64;
        report.facts_dropped = manifest.facts - report.facts_kept;

        // O(1): the catalog keeps a running combine of push digests
        report.fingerprint_verified = report.facts_kept == manifest.facts
            && catalog.fingerprint() == manifest.table_fingerprint;

        Ok(Some(Recovered {
            catalog,
            manifest,
            report,
        }))
    }

    /// Manifest-only stats: epoch, fact count, and per-shard file sizes
    /// from `stat(2)` — never reads shard contents, so `store info` on a
    /// 10⁷-fact store is O(#shards). `Ok(None)` when the directory
    /// holds no snapshot.
    pub fn stat(&self) -> Result<Option<StoreStat>, StoreError> {
        let Some(manifest) = self.read_manifest()? else {
            return Ok(None);
        };
        let mut shards = Vec::with_capacity(manifest.segments.len());
        let mut total_bytes = 0u64;
        for entry in &manifest.segments {
            let name = manifest
                .relations
                .get(entry.rel as usize)
                .map(|r| r.name.clone())
                .unwrap_or_else(|| format!("rel{}", entry.rel));
            let (bytes, present) = match self.io.file_len(&self.dir.join(&entry.file)) {
                Ok(n) => (n, true),
                Err(_) => (0, false),
            };
            total_bytes += bytes;
            shards.push(ShardStat {
                rel: entry.rel,
                name,
                shard: entry.shard,
                file: entry.file.clone(),
                count: entry.count,
                bytes,
                present,
            });
        }
        Ok(Some(StoreStat {
            epoch: manifest.epoch,
            facts: manifest.facts,
            shard_capacity: manifest.shard_capacity,
            pdb_fingerprint: manifest.pdb_fingerprint,
            shards,
            total_bytes,
        }))
    }

    /// Fsck: walk every committed shard and report per-shard health
    /// without rebuilding the catalog. `Ok(None)` when the directory
    /// holds no snapshot.
    pub fn verify(&self) -> Result<Option<FsckReport>, StoreError> {
        let Some(manifest) = self.read_manifest()? else {
            return Ok(None);
        };
        let schema = Schema::from_relations(
            manifest
                .relations
                .iter()
                .map(|r| Relation::new(r.name.clone(), r.arity)),
        )
        .map_err(|e| StoreError::Corrupt(format!("manifest schema: {e}")))?;
        let mut relations = Vec::new();
        for entry in &manifest.segments {
            let name = schema
                .get(RelId(entry.rel))
                .map(|r| r.name().to_string())
                .unwrap_or_else(|| format!("rel{}", entry.rel));
            let path = self.dir.join(&entry.file);
            let Ok(view) = self.io.view(&path) else {
                relations.push(FsckRelation {
                    name,
                    shard: entry.shard,
                    file: entry.file.clone(),
                    records_expected: entry.count,
                    records_found: 0,
                    checksum_failures: 0,
                    torn_bytes: 0,
                    readable: false,
                    fingerprint_ok: false,
                });
                continue;
            };
            let scan = scan_segment(&view);
            let recomputed = records_fingerprint(&schema, RelId(entry.rel), &scan.records);
            let fingerprint_ok = scan
                .footer
                .is_some_and(|f| f.fingerprint == recomputed && f.fingerprint == entry.fingerprint);
            relations.push(FsckRelation {
                name,
                shard: entry.shard,
                file: entry.file.clone(),
                records_expected: entry.count,
                records_found: scan.records.len() as u64,
                checksum_failures: scan.checksum_failures,
                torn_bytes: scan.torn_bytes as u64,
                readable: true,
                fingerprint_ok,
            });
        }
        Ok(Some(FsckReport {
            epoch: manifest.epoch,
            facts_expected: manifest.facts,
            relations,
        }))
    }
}

/// Extracts the epoch from a `rel{r}-s{k}-{epoch}.seg` file name (the
/// epoch is the last `-`-separated component, so this also reads the
/// retired `rel{r}-{epoch}.seg` names when scanning for a safe next
/// epoch over a corrupt manifest).
fn parse_epoch(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(".seg")?;
    if !stem.starts_with("rel") {
        return None;
    }
    stem.rsplit_once('-')?.1.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultyIo, IoFault, Trigger, SITE_FSYNC, SITE_RENAME, SITE_WRITE};
    use infpdb_core::fact::Fact;
    use infpdb_core::value::Value;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
    }

    fn sample_catalog(n: usize) -> FactCatalog {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let t = s.rel_id("S").unwrap();
        let mut c = FactCatalog::new(s);
        for i in 0..n {
            let p = 0.5 / (i as f64 + 1.0);
            if i % 3 == 0 {
                c.push(
                    Fact::new(t, [Value::int(i as i64), Value::str(format!("v{i}"))]),
                    p,
                )
                .unwrap();
            } else {
                c.push(Fact::new(r, [Value::int(i as i64)]), p).unwrap();
            }
        }
        c
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("infpdb-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn assert_catalogs_identical(a: &FactCatalog, b: &FactCatalog) {
        assert_eq!(a.len(), b.len());
        for ((ia, fa, pa), (ib, fb, pb)) in a.iter().zip(b.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(fa, fb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    fn seg_files(dir: &Path) -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".seg"))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn snapshot_load_round_trip_is_bit_for_bit() {
        let dir = tempdir("roundtrip");
        let store = Store::open_dir(&dir);
        assert!(store.load().unwrap().is_none());
        let catalog = sample_catalog(20);
        let info = store
            .snapshot(
                &catalog,
                Some(0xFEED),
                Some(Json::obj([("k", Json::Int(1))])),
            )
            .unwrap();
        assert_eq!(info.epoch, 1);
        assert_eq!(info.facts, 20);
        assert_eq!(info.shards_written, 2);
        assert_eq!(info.shards_skipped, 0);
        assert!(!info.unchanged);
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean(), "{:?}", rec.report);
        assert_eq!(
            rec.report.mmap_maps + rec.report.mmap_fallbacks,
            2,
            "every shard must be accounted to one view path"
        );
        assert_eq!(rec.manifest.pdb_fingerprint, Some(0xFEED));
        assert_eq!(
            rec.manifest.descriptor.as_ref().unwrap().get("k").unwrap(),
            &Json::Int(1)
        );
        assert_catalogs_identical(&rec.catalog, &catalog);
        let fsck = store.verify().unwrap().unwrap();
        assert!(fsck.clean(), "{fsck:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resnapshot_bumps_epoch_and_gcs_unreferenced_segments() {
        let dir = tempdir("epochs");
        let store = Store::open_dir(&dir);
        store.snapshot(&sample_catalog(5), None, None).unwrap();
        let info = store.snapshot(&sample_catalog(9), None, None).unwrap();
        assert_eq!(info.epoch, 2);
        // the on-disk file set is exactly the committed reference set
        let manifest = store.read_manifest().unwrap().unwrap();
        let mut referenced: Vec<String> =
            manifest.segments.iter().map(|s| s.file.clone()).collect();
        referenced.sort();
        assert_eq!(seg_files(&dir), referenced);
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean());
        assert_eq!(rec.catalog.len(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchanged_snapshot_is_a_noop() {
        let dir = tempdir("noop");
        let store = Store::open_dir(&dir);
        let catalog = sample_catalog(12);
        let desc = Some(Json::obj([("tail", Json::Float(0.25))]));
        let first = store.snapshot(&catalog, Some(7), desc.clone()).unwrap();
        assert!(!first.unchanged);
        let manifest_bytes = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let again = store.snapshot(&catalog, Some(7), desc.clone()).unwrap();
        assert!(again.unchanged);
        assert_eq!(again.epoch, first.epoch, "no-op must keep the epoch");
        assert_eq!(again.facts, 12);
        assert_eq!(again.shards_written, 0);
        assert_eq!(again.shards_skipped, 2);
        assert_eq!(again.bytes, 0);
        assert_eq!(
            std::fs::read(dir.join(MANIFEST_FILE)).unwrap(),
            manifest_bytes,
            "no-op must not rewrite the manifest"
        );
        // any input change defeats the no-op: different supply identity
        let third = store.snapshot(&catalog, Some(8), desc).unwrap();
        assert!(!third.unchanged);
        assert_eq!(third.epoch, first.epoch + 1);
        // the facts themselves were untouched, so every shard is reused
        assert_eq!(third.shards_written, 0);
        assert_eq!(third.shards_skipped, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_snapshot_rewrites_only_tail_shards() {
        let dir = tempdir("incremental");
        let store = Store::open_dir(&dir).with_shard_capacity(4);
        // 20 facts: R gets 13 (shards 4|4|4|1), S gets 7 (shards 4|3)
        let info = store.snapshot(&sample_catalog(20), None, None).unwrap();
        assert_eq!(info.shards_written, 6);
        assert_eq!(info.shards_skipped, 0);
        // +4 facts: R grows to 16 (tail shard 3: 1→4), S to 8 (tail
        // shard 1: 3→4); the four full shards are byte-identical
        let inc = store.snapshot(&sample_catalog(24), None, None).unwrap();
        assert!(!inc.unchanged);
        assert_eq!(inc.shards_written, 2, "only the two tail shards");
        assert_eq!(inc.shards_skipped, 4);
        assert!(inc.bytes < info.bytes);
        // reused shards keep their epoch-1 names in the new manifest
        let manifest = store.read_manifest().unwrap().unwrap();
        assert_eq!(manifest.epoch, 2);
        let old_named = manifest
            .segments
            .iter()
            .filter(|s| s.file.ends_with("-1.seg"))
            .count();
        assert_eq!(old_named, 4);
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean(), "{:?}", rec.report);
        assert_catalogs_identical(&rec.catalog, &sample_catalog(24));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changed_shard_capacity_rewrites_every_shard() {
        let dir = tempdir("recap");
        let store = Store::open_dir(&dir).with_shard_capacity(4);
        store.snapshot(&sample_catalog(20), None, None).unwrap();
        let rewritten = Store::open_dir(&dir)
            .with_shard_capacity(8)
            .snapshot(&sample_catalog(20), None, None)
            .unwrap();
        assert!(!rewritten.unchanged);
        assert_eq!(rewritten.shards_skipped, 0, "capacity change ⇒ no reuse");
        // R 13 facts → 2 shards, S 7 facts → 1 shard
        assert_eq!(rewritten.shards_written, 3);
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean());
        assert_eq!(rec.manifest.shard_capacity, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_last_shard_keeps_earlier_shards_bit_exact() {
        let dir = tempdir("truncate-tail");
        let store = Store::open_dir(&dir).with_shard_capacity(4);
        let catalog = sample_catalog(20);
        store.snapshot(&catalog, None, None).unwrap();
        // R's last shard (rel0-s3-1.seg) holds R's 13th fact, global id
        // 19 — so every truncation of it keeps global ids 0..=18 intact
        let seg_path = dir.join("rel0-s3-1.seg");
        let full = std::fs::read(&seg_path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&seg_path, &full[..cut]).unwrap();
            let rec = store.load().unwrap().unwrap();
            assert!(
                rec.catalog.len() >= 19,
                "cut {cut} lost facts outside the torn shard"
            );
            assert!(rec.catalog.len() <= catalog.len());
            for (id, fact, prob) in rec.catalog.iter() {
                assert_eq!(fact, catalog.fact(id), "cut {cut}");
                assert_eq!(prob.to_bits(), catalog.prob(id).to_bits(), "cut {cut}");
            }
            assert_eq!(
                rec.report.facts_dropped,
                catalog.len() as u64 - rec.catalog.len() as u64
            );
            // a cut inside the footer can leave every record intact (a
            // clean recovery content-wise); any lost fact must be loud
            if rec.catalog.len() < catalog.len() {
                assert!(!rec.report.clean(), "cut {cut} claimed clean");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_recovers_longest_prefix() {
        let dir = tempdir("truncate");
        let store = Store::open_dir(&dir);
        let catalog = sample_catalog(12);
        store.snapshot(&catalog, None, None).unwrap();
        // truncate the single R shard at every byte offset
        let seg_path = dir.join("rel0-s0-1.seg");
        let full = std::fs::read(&seg_path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&seg_path, &full[..cut]).unwrap();
            let rec = store.load().unwrap().unwrap();
            // never a fact past the truncation point, never a panic
            assert!(rec.catalog.len() <= catalog.len());
            for (id, fact, prob) in rec.catalog.iter() {
                assert_eq!(fact, catalog.fact(id), "cut {cut}");
                assert_eq!(prob.to_bits(), catalog.prob(id).to_bits(), "cut {cut}");
            }
            assert_eq!(
                rec.report.facts_dropped,
                catalog.len() as u64 - rec.catalog.len() as u64
            );
            if rec.catalog.len() < catalog.len() {
                assert!(!rec.report.clean(), "cut {cut} claimed clean");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_segment_is_reported_not_fatal() {
        let dir = tempdir("missing");
        let store = Store::open_dir(&dir);
        store.snapshot(&sample_catalog(6), None, None).unwrap();
        // remove the shard holding fact id 0 (relation S: i % 3 == 0)
        std::fs::remove_file(dir.join("rel1-s0-1.seg")).unwrap();
        let rec = store.load().unwrap().unwrap();
        assert_eq!(rec.report.missing_segments, 1);
        // id 0 lives in the missing shard, so the kept prefix is empty
        assert_eq!(rec.catalog.len(), 0);
        assert_eq!(rec.report.facts_dropped, 6);
        let fsck = store.verify().unwrap().unwrap();
        assert!(!fsck.clean());
        assert!(fsck.relations.iter().any(|r| !r.readable));
        // stat flags the hole without reading any shard
        let stat = store.stat().unwrap().unwrap();
        assert!(stat.shards.iter().any(|s| !s.present));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stat_is_manifest_only_and_matches_disk() {
        let dir = tempdir("stat");
        let store = Store::open_dir(&dir).with_shard_capacity(4);
        assert!(store.stat().unwrap().is_none());
        let info = store.snapshot(&sample_catalog(20), Some(11), None).unwrap();
        let stat = store.stat().unwrap().unwrap();
        assert_eq!(stat.epoch, info.epoch);
        assert_eq!(stat.facts, 20);
        assert_eq!(stat.shard_capacity, 4);
        assert_eq!(stat.pdb_fingerprint, Some(11));
        assert_eq!(stat.shards.len(), 6);
        assert!(stat.shards.iter().all(|s| s.present));
        assert_eq!(stat.total_bytes, info.bytes);
        assert_eq!(
            stat.total_bytes,
            stat.shards.iter().map(|s| s.bytes).sum::<u64>()
        );
        // per-shard counts add up to the committed fact total
        assert_eq!(stat.shards.iter().map(|s| s.count).sum::<u64>(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_a_loud_error() {
        let dir = tempdir("badmanifest");
        let store = Store::open_dir(&dir);
        store.snapshot(&sample_catalog(3), None, None).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), b"{ not json").unwrap();
        assert!(matches!(store.load(), Err(StoreError::Corrupt(_))));
        assert!(matches!(store.verify(), Err(StoreError::Corrupt(_))));
        assert!(matches!(store.stat(), Err(StoreError::Corrupt(_))));
        // but a fresh snapshot over it still works (epoch from file scan)
        let info = store.snapshot(&sample_catalog(3), None, None).unwrap();
        assert_eq!(info.epoch, 2);
        assert!(!info.unchanged, "a corrupt manifest never no-ops");
        assert!(store.load().unwrap().unwrap().report.clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_error_aborts_and_preserves_old_snapshot() {
        let dir = tempdir("faults-err");
        let io = Arc::new(FaultyIo::new(42));
        let store = Store::with_io(&dir, io.clone());
        let old = sample_catalog(4);
        store.snapshot(&old, None, None).unwrap();
        for site in [SITE_WRITE, SITE_FSYNC, SITE_RENAME] {
            io.injector()
                .inject(site, IoFault::Error, Trigger::Times(1));
            let err = store.snapshot(&sample_catalog(15), None, None).unwrap_err();
            assert!(matches!(err, StoreError::Io { .. }), "{site}: {err}");
            assert_eq!(io.injector().fired(site), 1, "{site}");
            let rec = store.load().unwrap().unwrap();
            assert!(rec.report.clean(), "{site}: old snapshot damaged");
            assert_catalogs_identical(&rec.catalog, &old);
            io.injector().clear(site);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_on_segment_recovers_a_prefix() {
        let dir = tempdir("faults-short");
        let io = Arc::new(FaultyIo::new(7));
        let store = Store::with_io(&dir, io.clone());
        let catalog = sample_catalog(30);
        // first write of a snapshot is a shard file
        io.injector()
            .inject(SITE_WRITE, IoFault::ShortWrite, Trigger::Times(1));
        store.snapshot(&catalog, None, None).unwrap();
        assert_eq!(io.injector().fired(SITE_WRITE), 1);
        let rec = store.load().unwrap().unwrap();
        assert!(!rec.report.clean());
        assert!(rec.report.facts_dropped > 0);
        // FaultyIo inherits the default (read-backed) views
        assert_eq!(rec.report.mmap_maps, 0);
        assert_eq!(rec.report.mmap_fallbacks, 2);
        for (id, fact, prob) in rec.catalog.iter() {
            assert_eq!(fact, catalog.fact(id));
            assert_eq!(prob.to_bits(), catalog.prob(id).to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_on_segment_is_caught_by_checksum() {
        let dir = tempdir("faults-flip");
        let io = Arc::new(FaultyIo::new(99));
        let store = Store::with_io(&dir, io.clone());
        let catalog = sample_catalog(30);
        io.injector()
            .inject(SITE_WRITE, IoFault::BitFlip, Trigger::Times(1));
        store.snapshot(&catalog, None, None).unwrap();
        let rec = store.load().unwrap().unwrap();
        // the flip may land in header, a record, or the footer; in every
        // case the damage is detected and the restored prefix is honest
        assert!(!rec.report.clean(), "{:?}", rec.report);
        for (id, fact, prob) in rec.catalog.iter() {
            assert_eq!(fact, catalog.fact(id));
            assert_eq!(prob.to_bits(), catalog.prob(id).to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_catalog_snapshots_and_loads() {
        let dir = tempdir("empty");
        let store = Store::open_dir(&dir);
        let catalog = FactCatalog::new(schema());
        let info = store.snapshot(&catalog, None, None).unwrap();
        assert_eq!(info.shards_written, 0);
        assert!(!info.unchanged);
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean());
        assert_eq!(rec.catalog.len(), 0);
        // and snapshotting the same emptiness again is a no-op
        assert!(store.snapshot(&catalog, None, None).unwrap().unchanged);
        std::fs::remove_dir_all(&dir).ok();
    }
}

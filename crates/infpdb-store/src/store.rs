//! The store proper: snapshot, load-with-recovery, and fsck.
//!
//! Commit protocol (the crash matrix lives in DESIGN.md §12):
//!
//! 1. Segment files for the new epoch are written under fresh names
//!    (`rel{r}-{epoch}.seg`) and fsynced. They are invisible until
//!    committed — a crash here leaves garbage the next snapshot GCs.
//! 2. The manifest is written to `MANIFEST.tmp`, fsynced, and renamed
//!    onto `MANIFEST`; the directory is fsynced. The rename is the
//!    commit point: before it the old snapshot is intact, after it the
//!    new one is.
//! 3. Segment files of older epochs are unlinked (best effort; failures
//!    are ignored and retried by the next snapshot's GC).
//!
//! Loading never panics on damage. Each committed segment is scanned
//! front-to-back ([`scan_segment`]), the
//! surviving records are merged by dense fact id, and the longest
//! contiguous id prefix from zero is rebuilt into a catalog. Everything
//! else — dropped facts, checksum failures, missing files, fingerprint
//! mismatches — is surfaced in the [`RecoveryReport`]. Truncating to a
//! prefix is sound (Proposition 6.1); the query layer turns the kept
//! length into a widened ε floor via its partial certificates.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use infpdb_core::json::Json;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_ti::catalog::FactCatalog;

use crate::io::{io_err, StdIo, StoreIo};
use crate::manifest::{Manifest, RelationEntry, SegmentEntry, FORMAT_VERSION};
use crate::segment::{encode_segment, records_fingerprint, scan_segment, SegmentRecord};
use crate::StoreError;

/// Name of the commit-point file.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// A durable fact store rooted at a directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
}

/// What a successful snapshot wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The committed epoch.
    pub epoch: u64,
    /// Facts persisted.
    pub facts: u64,
    /// Segment files written.
    pub segments: usize,
    /// Total segment bytes written (manifest excluded).
    pub bytes: u64,
}

/// Honest accounting of a load: what survived, what did not, and why.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Facts the manifest committed to.
    pub facts_expected: u64,
    /// Facts actually restored (the contiguous id prefix).
    pub facts_kept: u64,
    /// Facts lost to damage: `expected − kept`.
    pub facts_dropped: u64,
    /// Record frames, headers, or footers whose checksum failed.
    pub checksum_failures: u64,
    /// Segment files the manifest names that could not be read.
    pub missing_segments: u64,
    /// Whether the rebuilt table's fingerprint matched the manifest
    /// (only checkable when every fact survived).
    pub fingerprint_verified: bool,
}

impl RecoveryReport {
    /// Whether the load read back exactly what was written.
    pub fn clean(&self) -> bool {
        self.facts_dropped == 0
            && self.checksum_failures == 0
            && self.missing_segments == 0
            && self.fingerprint_verified
    }
}

/// The result of [`Store::load`]: a rebuilt catalog plus the manifest
/// and the recovery accounting.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The restored catalog — the longest valid prefix on disk.
    pub catalog: FactCatalog,
    /// The committed manifest the load worked from.
    pub manifest: Manifest,
    /// What happened on the way.
    pub report: RecoveryReport,
}

/// Per-relation detail of an fsck pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckRelation {
    /// Relation name.
    pub name: String,
    /// Segment file name (relative to the store directory).
    pub file: String,
    /// Records the manifest committed to.
    pub records_expected: u64,
    /// Records that scanned back intact.
    pub records_found: u64,
    /// Checksum failures in this segment.
    pub checksum_failures: u64,
    /// Undecodable tail bytes.
    pub torn_bytes: u64,
    /// Whether the file was readable at all.
    pub readable: bool,
    /// Whether the recomputed record fingerprint matched both the
    /// segment footer and the manifest entry.
    pub fingerprint_ok: bool,
}

/// The result of [`Store::verify`] (`infpdb store verify`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The committed epoch.
    pub epoch: u64,
    /// Facts the manifest committed to.
    pub facts_expected: u64,
    /// Per-relation segment findings.
    pub relations: Vec<FsckRelation>,
}

impl FsckReport {
    /// Whether every segment verified end to end.
    pub fn clean(&self) -> bool {
        self.relations.iter().all(|r| {
            r.readable
                && r.checksum_failures == 0
                && r.torn_bytes == 0
                && r.records_found == r.records_expected
                && r.fingerprint_ok
        })
    }

    /// Total checksum failures across segments.
    pub fn checksum_failures(&self) -> u64 {
        self.relations.iter().map(|r| r.checksum_failures).sum()
    }
}

impl Store {
    /// A store over the real filesystem.
    pub fn open_dir(dir: impl Into<PathBuf>) -> Self {
        Self::with_io(dir, Arc::new(StdIo))
    }

    /// A store over an explicit I/O implementation (fault injection).
    pub fn with_io(dir: impl Into<PathBuf>, io: Arc<dyn StoreIo>) -> Self {
        Store {
            dir: dir.into(),
            io,
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// Reads and parses the committed manifest; `None` when the store
    /// directory holds no snapshot yet.
    pub fn read_manifest(&self) -> Result<Option<Manifest>, StoreError> {
        let path = self.manifest_path();
        if !self.io.exists(&path) {
            return Ok(None);
        }
        let bytes = io_err(self.io.read(&path), "read", &path)?;
        let text = String::from_utf8(bytes)
            .map_err(|_| StoreError::Corrupt("manifest: not UTF-8".into()))?;
        Manifest::parse(&text).map(Some)
    }

    fn next_epoch(&self) -> u64 {
        // prefer the committed epoch; fall back to scanning file names so
        // a corrupt manifest cannot make us reuse (and clobber) an epoch
        if let Ok(Some(m)) = self.read_manifest() {
            return m.epoch + 1;
        }
        let mut max = 0u64;
        if let Ok(files) = self.io.list(&self.dir) {
            for f in files {
                if let Some(e) = parse_epoch(&f) {
                    max = max.max(e);
                }
            }
        }
        max + 1
    }

    /// Writes a full snapshot of `catalog` and commits it. On any error
    /// the previously committed snapshot (if any) is untouched.
    ///
    /// `pdb_fingerprint` identifies the generating supply (so an open
    /// against a different database is detected); `descriptor` is an
    /// opaque blob the caller wants restored alongside the facts.
    pub fn snapshot(
        &self,
        catalog: &FactCatalog,
        pdb_fingerprint: Option<u64>,
        descriptor: Option<Json>,
    ) -> Result<SnapshotInfo, StoreError> {
        io_err(self.io.create_dir_all(&self.dir), "create_dir", &self.dir)?;
        let epoch = self.next_epoch();
        let schema = catalog.schema();

        // group the dense prefix by relation, preserving id order
        let mut by_rel: Vec<Vec<(infpdb_core::fact::FactId, &infpdb_core::fact::Fact, f64)>> =
            vec![Vec::new(); schema.len()];
        for (id, fact, prob) in catalog.iter() {
            by_rel[fact.rel().0 as usize].push((id, fact, prob));
        }

        let mut segments = Vec::new();
        let mut bytes_written = 0u64;
        for (rel_idx, records) in by_rel.iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let rel = RelId(rel_idx as u32);
            let image = encode_segment(schema, rel, records);
            // footer layout: magic 8 | count 8 | fingerprint 8 | crc 4
            let fp_off = image.len() - 12;
            let fingerprint = u64::from_le_bytes(image[fp_off..fp_off + 8].try_into().unwrap());
            let file = format!("rel{rel_idx}-{epoch}.seg");
            let path = self.dir.join(&file);
            io_err(self.io.write(&path, &image), "write", &path)?;
            io_err(self.io.fsync(&path), "fsync", &path)?;
            bytes_written += image.len() as u64;
            segments.push(SegmentEntry {
                rel: rel_idx as u32,
                file,
                count: records.len() as u64,
                fingerprint,
            });
        }

        let manifest = Manifest {
            format: FORMAT_VERSION,
            epoch,
            facts: catalog.len() as u64,
            table_fingerprint: catalog.table_prefix(catalog.len()).fingerprint(),
            pdb_fingerprint,
            descriptor,
            relations: schema
                .iter()
                .map(|(_, r)| RelationEntry {
                    name: r.name().to_string(),
                    arity: r.arity(),
                })
                .collect(),
            segments,
        };

        // commit: write-temp → fsync → atomic rename → sync dir
        let tmp = self.dir.join(MANIFEST_TMP);
        let dst = self.manifest_path();
        io_err(
            self.io.write(&tmp, manifest.encode().as_bytes()),
            "write",
            &tmp,
        )?;
        io_err(self.io.fsync(&tmp), "fsync", &tmp)?;
        io_err(self.io.rename(&tmp, &dst), "rename", &dst)?;
        io_err(self.io.sync_dir(&self.dir), "sync_dir", &self.dir)?;

        self.gc(epoch);

        Ok(SnapshotInfo {
            epoch,
            facts: catalog.len() as u64,
            segments: manifest.segments.len(),
            bytes: bytes_written,
        })
    }

    /// Unlinks segment files from epochs other than `keep` (best
    /// effort — a failure here is retried by the next snapshot).
    fn gc(&self, keep: u64) {
        let Ok(files) = self.io.list(&self.dir) else {
            return;
        };
        for f in files {
            if let Some(e) = parse_epoch(&f) {
                if e != keep {
                    let _ = self.io.remove(&f);
                }
            }
        }
    }

    /// Loads the committed snapshot, recovering the longest valid
    /// prefix. `Ok(None)` when the directory holds no snapshot;
    /// [`StoreError::Corrupt`] only when the manifest itself — the
    /// commit point — is unusable.
    pub fn load(&self) -> Result<Option<Recovered>, StoreError> {
        let Some(manifest) = self.read_manifest()? else {
            return Ok(None);
        };
        let schema = Schema::from_relations(
            manifest
                .relations
                .iter()
                .map(|r| Relation::new(r.name.clone(), r.arity)),
        )
        .map_err(|e| StoreError::Corrupt(format!("manifest schema: {e}")))?;

        let mut report = RecoveryReport {
            facts_expected: manifest.facts,
            ..RecoveryReport::default()
        };

        // merge scanned records by dense id
        let mut slots: Vec<Option<(SegmentRecord, RelId)>> = vec![None; manifest.facts as usize];
        for entry in &manifest.segments {
            let path = self.dir.join(&entry.file);
            let Ok(bytes) = self.io.read(&path) else {
                report.missing_segments += 1;
                continue;
            };
            let scan = scan_segment(&bytes);
            report.checksum_failures += scan.checksum_failures;
            match scan.header {
                Some(h) if h.rel == entry.rel => {}
                _ => {
                    // header damage already counted via checksum; a rel
                    // mismatch means the file is not the manifest's — an
                    // inconsistency we refuse to read facts out of
                    if scan.header.is_some() {
                        report.checksum_failures += 1;
                    }
                    continue;
                }
            }
            for rec in scan.records {
                let idx = rec.id as usize;
                if idx < slots.len() && slots[idx].is_none() {
                    slots[idx] = Some((rec, RelId(entry.rel)));
                } else {
                    // an id out of the committed range, or a duplicate:
                    // inconsistent with the manifest, so distrust it
                    report.checksum_failures += 1;
                }
            }
        }

        // rebuild the longest contiguous prefix; stop early if a record
        // that passed its checksum still fails catalog validation
        let mut catalog = FactCatalog::new(schema);
        for slot in &slots {
            let Some((rec, rel)) = slot else { break };
            if catalog.push(rec.to_fact(*rel), rec.prob).is_err() {
                report.checksum_failures += 1;
                break;
            }
        }
        report.facts_kept = catalog.len() as u64;
        report.facts_dropped = manifest.facts - report.facts_kept;

        report.fingerprint_verified = report.facts_kept == manifest.facts
            && catalog.table_prefix(catalog.len()).fingerprint() == manifest.table_fingerprint;

        Ok(Some(Recovered {
            catalog,
            manifest,
            report,
        }))
    }

    /// Fsck: walk every committed segment and report per-relation
    /// health without rebuilding the catalog. `Ok(None)` when the
    /// directory holds no snapshot.
    pub fn verify(&self) -> Result<Option<FsckReport>, StoreError> {
        let Some(manifest) = self.read_manifest()? else {
            return Ok(None);
        };
        let schema = Schema::from_relations(
            manifest
                .relations
                .iter()
                .map(|r| Relation::new(r.name.clone(), r.arity)),
        )
        .map_err(|e| StoreError::Corrupt(format!("manifest schema: {e}")))?;
        let mut relations = Vec::new();
        for entry in &manifest.segments {
            let name = schema
                .get(RelId(entry.rel))
                .map(|r| r.name().to_string())
                .unwrap_or_else(|| format!("rel{}", entry.rel));
            let path = self.dir.join(&entry.file);
            let Ok(bytes) = self.io.read(&path) else {
                relations.push(FsckRelation {
                    name,
                    file: entry.file.clone(),
                    records_expected: entry.count,
                    records_found: 0,
                    checksum_failures: 0,
                    torn_bytes: 0,
                    readable: false,
                    fingerprint_ok: false,
                });
                continue;
            };
            let scan = scan_segment(&bytes);
            let recomputed = records_fingerprint(&schema, RelId(entry.rel), &scan.records);
            let fingerprint_ok = scan
                .footer
                .is_some_and(|f| f.fingerprint == recomputed && f.fingerprint == entry.fingerprint);
            relations.push(FsckRelation {
                name,
                file: entry.file.clone(),
                records_expected: entry.count,
                records_found: scan.records.len() as u64,
                checksum_failures: scan.checksum_failures,
                torn_bytes: scan.torn_bytes as u64,
                readable: true,
                fingerprint_ok,
            });
        }
        Ok(Some(FsckReport {
            epoch: manifest.epoch,
            facts_expected: manifest.facts,
            relations,
        }))
    }
}

/// Extracts the epoch from a `rel{r}-{epoch}.seg` file name.
fn parse_epoch(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(".seg")?;
    if !stem.starts_with("rel") {
        return None;
    }
    stem.rsplit_once('-')?.1.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultyIo, IoFault, Trigger, SITE_FSYNC, SITE_RENAME, SITE_WRITE};
    use infpdb_core::fact::Fact;
    use infpdb_core::value::Value;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
    }

    fn sample_catalog(n: usize) -> FactCatalog {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let t = s.rel_id("S").unwrap();
        let mut c = FactCatalog::new(s);
        for i in 0..n {
            let p = 0.5 / (i as f64 + 1.0);
            if i % 3 == 0 {
                c.push(
                    Fact::new(t, [Value::int(i as i64), Value::str(format!("v{i}"))]),
                    p,
                )
                .unwrap();
            } else {
                c.push(Fact::new(r, [Value::int(i as i64)]), p).unwrap();
            }
        }
        c
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("infpdb-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn assert_catalogs_identical(a: &FactCatalog, b: &FactCatalog) {
        assert_eq!(a.len(), b.len());
        for ((ia, fa, pa), (ib, fb, pb)) in a.iter().zip(b.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(fa, fb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        assert_eq!(
            a.table_prefix(a.len()).fingerprint(),
            b.table_prefix(b.len()).fingerprint()
        );
    }

    #[test]
    fn snapshot_load_round_trip_is_bit_for_bit() {
        let dir = tempdir("roundtrip");
        let store = Store::open_dir(&dir);
        assert!(store.load().unwrap().is_none());
        let catalog = sample_catalog(20);
        let info = store
            .snapshot(
                &catalog,
                Some(0xFEED),
                Some(Json::obj([("k", Json::Int(1))])),
            )
            .unwrap();
        assert_eq!(info.epoch, 1);
        assert_eq!(info.facts, 20);
        assert_eq!(info.segments, 2);
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean(), "{:?}", rec.report);
        assert_eq!(rec.manifest.pdb_fingerprint, Some(0xFEED));
        assert_eq!(
            rec.manifest.descriptor.as_ref().unwrap().get("k").unwrap(),
            &Json::Int(1)
        );
        assert_catalogs_identical(&rec.catalog, &catalog);
        let fsck = store.verify().unwrap().unwrap();
        assert!(fsck.clean(), "{fsck:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resnapshot_bumps_epoch_and_gcs_old_segments() {
        let dir = tempdir("epochs");
        let store = Store::open_dir(&dir);
        store.snapshot(&sample_catalog(5), None, None).unwrap();
        let info = store.snapshot(&sample_catalog(9), None, None).unwrap();
        assert_eq!(info.epoch, 2);
        let segs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
            .collect();
        assert!(
            segs.iter().all(|e| parse_epoch(&e.path()) == Some(2)),
            "{segs:?}"
        );
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean());
        assert_eq!(rec.catalog.len(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_recovers_longest_prefix() {
        let dir = tempdir("truncate");
        let store = Store::open_dir(&dir);
        let catalog = sample_catalog(12);
        store.snapshot(&catalog, None, None).unwrap();
        // find the R segment and truncate it at every byte offset
        let seg_path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .starts_with("rel0-")
            })
            .unwrap();
        let full = std::fs::read(&seg_path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&seg_path, &full[..cut]).unwrap();
            let rec = store.load().unwrap().unwrap();
            // never a fact past the truncation point, never a panic
            assert!(rec.catalog.len() <= catalog.len());
            for (id, fact, prob) in rec.catalog.iter() {
                assert_eq!(fact, catalog.fact(id), "cut {cut}");
                assert_eq!(prob.to_bits(), catalog.prob(id).to_bits(), "cut {cut}");
            }
            assert_eq!(
                rec.report.facts_dropped,
                catalog.len() as u64 - rec.catalog.len() as u64
            );
            // a cut inside the footer can leave every record intact (a
            // clean recovery content-wise); any lost fact must be loud
            if rec.catalog.len() < catalog.len() {
                assert!(!rec.report.clean(), "cut {cut} claimed clean");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_segment_is_reported_not_fatal() {
        let dir = tempdir("missing");
        let store = Store::open_dir(&dir);
        store.snapshot(&sample_catalog(6), None, None).unwrap();
        // remove the segment holding fact id 0 (relation S: i % 3 == 0)
        let seg_path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .starts_with("rel1-")
            })
            .unwrap();
        std::fs::remove_file(&seg_path).unwrap();
        let rec = store.load().unwrap().unwrap();
        assert_eq!(rec.report.missing_segments, 1);
        // id 0 lives in the missing segment, so the kept prefix is empty
        assert_eq!(rec.catalog.len(), 0);
        assert_eq!(rec.report.facts_dropped, 6);
        let fsck = store.verify().unwrap().unwrap();
        assert!(!fsck.clean());
        assert!(fsck.relations.iter().any(|r| !r.readable));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_a_loud_error() {
        let dir = tempdir("badmanifest");
        let store = Store::open_dir(&dir);
        store.snapshot(&sample_catalog(3), None, None).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), b"{ not json").unwrap();
        assert!(matches!(store.load(), Err(StoreError::Corrupt(_))));
        assert!(matches!(store.verify(), Err(StoreError::Corrupt(_))));
        // but a fresh snapshot over it still works (epoch from file scan)
        let info = store.snapshot(&sample_catalog(3), None, None).unwrap();
        assert_eq!(info.epoch, 2);
        assert!(store.load().unwrap().unwrap().report.clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_error_aborts_and_preserves_old_snapshot() {
        let dir = tempdir("faults-err");
        let io = Arc::new(FaultyIo::new(42));
        let store = Store::with_io(&dir, io.clone());
        let old = sample_catalog(4);
        store.snapshot(&old, None, None).unwrap();
        for site in [SITE_WRITE, SITE_FSYNC, SITE_RENAME] {
            io.injector()
                .inject(site, IoFault::Error, Trigger::Times(1));
            let err = store.snapshot(&sample_catalog(15), None, None).unwrap_err();
            assert!(matches!(err, StoreError::Io { .. }), "{site}: {err}");
            assert_eq!(io.injector().fired(site), 1, "{site}");
            let rec = store.load().unwrap().unwrap();
            assert!(rec.report.clean(), "{site}: old snapshot damaged");
            assert_catalogs_identical(&rec.catalog, &old);
            io.injector().clear(site);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_on_segment_recovers_a_prefix() {
        let dir = tempdir("faults-short");
        let io = Arc::new(FaultyIo::new(7));
        let store = Store::with_io(&dir, io.clone());
        let catalog = sample_catalog(30);
        // first write of a snapshot is a segment file
        io.injector()
            .inject(SITE_WRITE, IoFault::ShortWrite, Trigger::Times(1));
        store.snapshot(&catalog, None, None).unwrap();
        assert_eq!(io.injector().fired(SITE_WRITE), 1);
        let rec = store.load().unwrap().unwrap();
        assert!(!rec.report.clean());
        assert!(rec.report.facts_dropped > 0);
        for (id, fact, prob) in rec.catalog.iter() {
            assert_eq!(fact, catalog.fact(id));
            assert_eq!(prob.to_bits(), catalog.prob(id).to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_on_segment_is_caught_by_checksum() {
        let dir = tempdir("faults-flip");
        let io = Arc::new(FaultyIo::new(99));
        let store = Store::with_io(&dir, io.clone());
        let catalog = sample_catalog(30);
        io.injector()
            .inject(SITE_WRITE, IoFault::BitFlip, Trigger::Times(1));
        store.snapshot(&catalog, None, None).unwrap();
        let rec = store.load().unwrap().unwrap();
        // the flip may land in header, a record, or the footer; in every
        // case the damage is detected and the restored prefix is honest
        assert!(!rec.report.clean(), "{:?}", rec.report);
        for (id, fact, prob) in rec.catalog.iter() {
            assert_eq!(fact, catalog.fact(id));
            assert_eq!(prob.to_bits(), catalog.prob(id).to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_catalog_snapshots_and_loads() {
        let dir = tempdir("empty");
        let store = Store::open_dir(&dir);
        let catalog = FactCatalog::new(schema());
        let info = store.snapshot(&catalog, None, None).unwrap();
        assert_eq!(info.segments, 0);
        let rec = store.load().unwrap().unwrap();
        assert!(rec.report.clean());
        assert_eq!(rec.catalog.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Property tests for the segment codec (ISSUE 7 satellite):
//! seeded random fact tables round-trip through
//! `encode_segment`/`scan_segment` bit-for-bit, and a segment cut at
//! **every** byte offset recovers a valid prefix — never panics, never
//! invents records, never accepts a damaged frame.

use infpdb_core::fact::{Fact, FactId};
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;
use infpdb_store::segment::{encode_segment, records_fingerprint, scan_segment, HEADER_LEN};
use proptest::prelude::*;

/// One random argument: integer, fixed-point, or string.
fn value() -> impl Strategy<Value = Value> {
    (0u8..3, -1_000_000i64..1_000_000, 0u8..6).prop_map(|(tag, n, e)| match tag {
        0 => Value::int(n),
        1 => Value::fixed(n, e),
        _ => Value::str(format!("s{n}")),
    })
}

/// A random unary-to-ternary fact table: (arity, rows of (args, prob)).
/// Rows are generated at the maximum arity and trimmed in [`build`].
fn table() -> impl Strategy<Value = (usize, Vec<(Vec<Value>, f64)>)> {
    let row = (
        prop::collection::vec(value(), 3..4),
        (0u64..=1_000_000).prop_map(|i| i as f64 / 1_000_000.0),
    );
    (1usize..4, prop::collection::vec(row, 0..12))
}

fn build(arity: usize, rows: &[(Vec<Value>, f64)]) -> (Schema, Vec<(Fact, f64)>) {
    let schema = Schema::from_relations([Relation::new("R", arity)]).unwrap();
    let facts = rows
        .iter()
        .map(|(args, p)| (Fact::new(RelId(0), args[..arity].iter().cloned()), *p))
        .collect();
    (schema, facts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the table, the full image scans back clean and equal:
    /// same ids, bit-identical probabilities, same args, and a footer
    /// fingerprint that matches the recomputed one.
    #[test]
    fn encode_scan_round_trip_is_bit_exact((arity, rows) in table()) {
        let (schema, facts) = build(arity, &rows);
        let records: Vec<(FactId, &Fact, f64)> = facts
            .iter()
            .enumerate()
            .map(|(i, (f, p))| (FactId(i as u32), f, *p))
            .collect();
        let image = encode_segment(&schema, RelId(0), &records);
        let scan = scan_segment(&image);
        prop_assert!(scan.clean(), "not clean: {scan:?}");
        prop_assert_eq!(scan.records.len(), facts.len());
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.id, i as u32);
            prop_assert_eq!(rec.prob.to_bits(), facts[i].1.to_bits());
            prop_assert_eq!(&rec.args, facts[i].0.args());
        }
        let fp = records_fingerprint(&schema, RelId(0), &scan.records);
        prop_assert_eq!(scan.footer.unwrap().fingerprint, fp);
        prop_assert_eq!(scan.footer.unwrap().count, facts.len() as u64);
    }

    /// Torn-write totality: cutting the image at EVERY byte offset
    /// yields a scan that (a) never panics, (b) keeps only a prefix of
    /// the original records, each bit-identical, and (c) reports any
    /// missing suffix as damage (torn bytes, checksum failure, or a
    /// missing footer) rather than pretending the file is clean.
    #[test]
    fn truncation_at_every_byte_recovers_a_bit_exact_prefix((arity, rows) in table()) {
        let (schema, facts) = build(arity, &rows);
        let records: Vec<(FactId, &Fact, f64)> = facts
            .iter()
            .enumerate()
            .map(|(i, (f, p))| (FactId(i as u32), f, *p))
            .collect();
        let image = encode_segment(&schema, RelId(0), &records);
        let full = scan_segment(&image);
        for cut in 0..image.len() {
            let scan = scan_segment(&image[..cut]);
            prop_assert!(
                scan.records.len() <= full.records.len(),
                "cut {cut}: more records than written"
            );
            for (rec, orig) in scan.records.iter().zip(&full.records) {
                prop_assert_eq!(rec, orig);
            }
            if cut < HEADER_LEN {
                prop_assert!(scan.header.is_none(), "cut {cut}: partial header accepted");
            }
            // honesty: a cut image must never read as clean, since the
            // footer cannot be intact at any cut < len
            prop_assert!(!scan.clean(), "cut {cut} of {} read as clean", image.len());
        }
    }
}

//! Countable series of probabilities with certified tail bounds.
//!
//! The central analytic object of the paper is a family `(p_f)` of fact
//! probabilities whose countable sums must converge (condition (8), Section
//! 4.1) for a tuple-independent PDB to exist (Theorem 4.8). We represent the
//! enumerated family as a [`ProbSeries`]: an indexed sequence of terms
//! `term(0), term(1), …` together with a *certified* upper bound on every
//! tail `∑_{j≥i} term(j)`.
//!
//! The tail bound is what turns the paper's existence arguments into running
//! code: convergence checks, the truncation index `n(ε)` of Proposition 6.1,
//! and the infinite-product enclosures of [`crate::products`] all reduce to
//! questions about tails.

use crate::{KahanSum, MathError};

/// A certified statement about the tail mass `∑_{j≥i} term(j)` of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailBound {
    /// The tail sum is at most the given finite value.
    Finite(f64),
    /// The series is certified to diverge (so every tail is infinite).
    Divergent,
    /// The implementation cannot bound this tail.
    Unknown,
}

impl TailBound {
    /// The finite bound, if any.
    pub fn finite(self) -> Option<f64> {
        match self {
            TailBound::Finite(b) => Some(b),
            _ => None,
        }
    }

    /// Converts to a `Result`, treating both `Divergent` and `Unknown` as
    /// errors.
    pub fn require_finite(self, at: usize) -> Result<f64, MathError> {
        match self {
            TailBound::Finite(b) => Ok(b),
            TailBound::Divergent => Err(MathError::DivergentSeries {
                witness_index: at,
                partial_sum: f64::INFINITY,
            }),
            TailBound::Unknown => Err(MathError::UnknownTail),
        }
    }
}

/// A countable (possibly infinite) series of probabilities `term(i) ∈ [0,1]`.
///
/// Implementations must guarantee:
/// * every term is a probability in `[0, 1]`;
/// * `tail_upper(i)` is a true upper bound on `∑_{j≥i} term(j)` whenever it
///   returns [`TailBound::Finite`], and the series really diverges whenever
///   it returns [`TailBound::Divergent`].
pub trait ProbSeries {
    /// The `i`-th term (0-indexed).
    fn term(&self, i: usize) -> f64;

    /// A certified upper bound on the tail `∑_{j≥i} term(j)`.
    fn tail_upper(&self, i: usize) -> TailBound;

    /// `Some(n)` if all terms with index `≥ n` are zero (finite support).
    fn support_len(&self) -> Option<usize> {
        None
    }

    /// Compensated partial sum `∑_{i<n} term(i)`.
    ///
    /// Flattened (see [`crate::flat`]): terms are gathered block-wise into
    /// contiguous scratch and folded with [`KahanSum::add_slice`] — the
    /// same terms in the same order as the fused iterator fold, so the
    /// result is bit-for-bit unchanged.
    fn partial_sum(&self, n: usize) -> f64
    where
        Self: Sized,
    {
        let mut acc = KahanSum::new();
        let mut terms: Vec<f64> = Vec::with_capacity(crate::flat::BLOCK.min(n));
        let mut i = 0usize;
        while i < n {
            let end = (i + crate::flat::BLOCK).min(n);
            terms.clear();
            terms.extend((i..end).map(|j| self.term(j)));
            acc.add_slice(&terms);
            i = end;
        }
        acc.value()
    }

    /// A certified enclosure of the total sum: `[partial_n, partial_n +
    /// tail_n]` for the given prefix length. Errors on divergent/unknown
    /// tails. The returned interval is **not** clamped to `[0,1]` — totals of
    /// fact-probability series are expected sizes and may exceed 1.
    fn total_bounds(&self, prefix: usize) -> Result<(f64, f64), MathError>
    where
        Self: Sized,
    {
        let p = self.partial_sum(prefix);
        let t = self.tail_upper(prefix).require_finite(prefix)?;
        Ok((p, p + t))
    }

    /// Whether the series is certified convergent (a finite bound exists for
    /// the full tail).
    fn converges(&self) -> bool {
        matches!(self.tail_upper(0), TailBound::Finite(_))
    }
}

/// Blanket impl so `&S` and boxed series are series too.
impl<S: ProbSeries + ?Sized> ProbSeries for &S {
    fn term(&self, i: usize) -> f64 {
        (**self).term(i)
    }
    fn tail_upper(&self, i: usize) -> TailBound {
        (**self).tail_upper(i)
    }
    fn support_len(&self) -> Option<usize> {
        (**self).support_len()
    }
}

impl ProbSeries for Box<dyn ProbSeries + Send + Sync> {
    fn term(&self, i: usize) -> f64 {
        (**self).term(i)
    }
    fn tail_upper(&self, i: usize) -> TailBound {
        (**self).tail_upper(i)
    }
    fn support_len(&self) -> Option<usize> {
        (**self).support_len()
    }
}

/// A finite series given explicitly by a vector of probabilities. Suffix
/// sums are precomputed so `tail_upper` is exact.
#[derive(Debug, Clone)]
pub struct FiniteSeries {
    terms: Vec<f64>,
    /// `suffix[i] = ∑_{j≥i} terms[j]`, length `terms.len() + 1`.
    suffix: Vec<f64>,
}

impl FiniteSeries {
    /// Builds a finite series, validating every entry.
    pub fn new(terms: Vec<f64>) -> Result<Self, MathError> {
        for &t in &terms {
            crate::check_probability(t)?;
        }
        let mut suffix = vec![0.0; terms.len() + 1];
        let mut acc = KahanSum::new();
        for i in (0..terms.len()).rev() {
            acc.add(terms[i]);
            suffix[i] = acc.value();
        }
        Ok(Self { terms, suffix })
    }

    /// Number of stored terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The stored terms.
    pub fn terms(&self) -> &[f64] {
        &self.terms
    }
}

impl ProbSeries for FiniteSeries {
    fn term(&self, i: usize) -> f64 {
        self.terms.get(i).copied().unwrap_or(0.0)
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        TailBound::Finite(self.suffix.get(i).copied().unwrap_or(0.0))
    }

    fn support_len(&self) -> Option<usize> {
        Some(self.terms.len())
    }
}

/// The geometric series `term(i) = first · ratio^i` with `0 < ratio < 1`.
///
/// Its tails have the closed form `first · ratio^i / (1 − ratio)`, so the
/// bound is tight. This is the canonical "fast decay" family used in the
/// paper's complexity remark at the end of Section 6.
#[derive(Debug, Clone, Copy)]
pub struct GeometricSeries {
    first: f64,
    ratio: f64,
}

impl GeometricSeries {
    /// Creates `first · ratio^i`. Requires `first ∈ [0,1]` and
    /// `ratio ∈ (0,1)`.
    pub fn new(first: f64, ratio: f64) -> Result<Self, MathError> {
        crate::check_probability(first)?;
        if !(ratio > 0.0 && ratio < 1.0) {
            return Err(MathError::NotAProbability(ratio));
        }
        Ok(Self { first, ratio })
    }

    /// The common ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Exact tail sum `∑_{j≥i}` (closed form).
    pub fn exact_tail(&self, i: usize) -> f64 {
        self.first * self.ratio.powi(i as i32) / (1.0 - self.ratio)
    }
}

impl ProbSeries for GeometricSeries {
    fn term(&self, i: usize) -> f64 {
        self.first * self.ratio.powi(i as i32)
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        // Nudge up by 4 ulps so rounding in powi cannot undershoot the truth.
        TailBound::Finite(self.exact_tail(i) * (1.0 + 4.0 * f64::EPSILON))
    }
}

/// The Basel-type series `term(i) = scale / (i+1)²`.
///
/// With `scale = 6/π²` the total is exactly 1 — the distribution used in the
/// paper's Examples 2.4 and 3.3. Tails are bounded by the integral estimate
/// `∑_{j≥i} 1/(j+1)² ≤ 1/i` (and `π²/6` at `i = 0`). This family converges
/// *slowly*, exercising the regime the paper warns about at the end of
/// Section 6.
#[derive(Debug, Clone, Copy)]
pub struct ZetaSeries {
    scale: f64,
}

impl ZetaSeries {
    /// `term(i) = scale/(i+1)²`; requires `scale ∈ [0, 1]` so every term is a
    /// probability.
    pub fn new(scale: f64) -> Result<Self, MathError> {
        crate::check_probability(scale)?;
        Ok(Self { scale })
    }

    /// The series of Example 3.3: `p_n = 6/(π² n²)`, summing to 1.
    pub fn basel() -> Self {
        Self {
            scale: 6.0 / (std::f64::consts::PI * std::f64::consts::PI),
        }
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ProbSeries for ZetaSeries {
    fn term(&self, i: usize) -> f64 {
        let n = (i + 1) as f64;
        self.scale / (n * n)
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        let b = if i == 0 {
            self.scale * std::f64::consts::PI * std::f64::consts::PI / 6.0
        } else {
            // ∑_{j≥i} 1/(j+1)² ≤ ∫_i^∞ dx/x² = 1/i
            self.scale / i as f64
        };
        TailBound::Finite(b * (1.0 + 4.0 * f64::EPSILON))
    }
}

/// The harmonic series `term(i) = scale/(i+1)`, clamped to probabilities.
///
/// Divergent by construction — the canonical input that Theorem 4.8 rejects:
/// no tuple-independent PDB realizes these fact probabilities.
#[derive(Debug, Clone, Copy)]
pub struct HarmonicSeries {
    scale: f64,
}

impl HarmonicSeries {
    /// `term(i) = scale/(i+1)`; requires `scale ∈ (0, 1]`.
    pub fn new(scale: f64) -> Result<Self, MathError> {
        crate::check_probability(scale)?;
        if scale == 0.0 {
            return Err(MathError::NotAProbability(scale));
        }
        Ok(Self { scale })
    }
}

impl ProbSeries for HarmonicSeries {
    fn term(&self, i: usize) -> f64 {
        self.scale / (i + 1) as f64
    }

    fn tail_upper(&self, _i: usize) -> TailBound {
        TailBound::Divergent
    }
}

/// A series scaled by a constant factor in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct ScaledSeries<S> {
    inner: S,
    factor: f64,
}

impl<S: ProbSeries> ScaledSeries<S> {
    /// Scales every term (and tail bound) of `inner` by `factor ∈ [0,1]`.
    pub fn new(inner: S, factor: f64) -> Result<Self, MathError> {
        crate::check_probability(factor)?;
        Ok(Self { inner, factor })
    }
}

impl<S: ProbSeries> ProbSeries for ScaledSeries<S> {
    fn term(&self, i: usize) -> f64 {
        self.factor * self.inner.term(i)
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        match self.inner.tail_upper(i) {
            TailBound::Finite(b) => TailBound::Finite(self.factor * b),
            TailBound::Divergent if self.factor == 0.0 => TailBound::Finite(0.0),
            other => other,
        }
    }

    fn support_len(&self) -> Option<usize> {
        self.inner.support_len()
    }
}

/// Word-length decay over an alphabet of size `k` (Example 2.4 of the
/// paper): enumerating `Σ*` by length then lexicographically, every word `w`
/// with `|w| = n` gets probability `6 / (π² (n+1)² kⁿ)`, so each length class
/// carries total mass `6/(π²(n+1)²)` and the whole series sums to 1.
#[derive(Debug, Clone, Copy)]
pub struct WordLengthSeries {
    alphabet: u32,
}

impl WordLengthSeries {
    /// Creates the Example 2.4 distribution over `Σ*` with `|Σ| = alphabet`.
    pub fn new(alphabet: u32) -> Result<Self, MathError> {
        if alphabet == 0 {
            return Err(MathError::NotAProbability(0.0));
        }
        Ok(Self { alphabet })
    }

    const BASEL: f64 = 6.0 / (std::f64::consts::PI * std::f64::consts::PI);

    /// Word length `n` and rank-within-length for flat index `i` (words
    /// enumerated by length: 1 word of length 0, k of length 1, k² of length
    /// 2, …).
    pub fn locate(&self, i: usize) -> (u32, u64) {
        let k = self.alphabet as u128;
        let mut rem = i as u128;
        let mut n: u32 = 0;
        let mut class = 1u128; // k^n, number of words of length n
        loop {
            if rem < class {
                return (n, rem as u64);
            }
            rem -= class;
            n += 1;
            class = class.saturating_mul(k);
        }
    }

    fn class_mass(n: u32) -> f64 {
        let m = (n as f64) + 1.0;
        Self::BASEL / (m * m)
    }
}

impl ProbSeries for WordLengthSeries {
    fn term(&self, i: usize) -> f64 {
        let (n, _) = self.locate(i);
        Self::class_mass(n) / (self.alphabet as f64).powi(n as i32)
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        let (n, rank) = self.locate(i);
        let k = (self.alphabet as f64).powi(n as i32);
        // remaining words of current length class...
        let current = Self::class_mass(n) * (k - rank as f64) / k;
        // ...plus all longer classes: ∑_{m>n} 6/(π²(m+1)²) ≤ (6/π²)·1/(n+1).
        let rest = Self::BASEL / ((n as f64) + 1.0);
        TailBound::Finite((current + rest) * (1.0 + 4.0 * f64::EPSILON))
    }
}

/// Concatenation of a finite head with an arbitrary tail series: terms
/// `0..head.len()` come from the head, later terms from the tail. This is
/// how a completion splices the original finite table's fact probabilities
/// in front of the open-world tail (Section 5.1 of the paper).
#[derive(Debug, Clone)]
pub struct ConcatSeries<S> {
    head: FiniteSeries,
    tail: S,
}

impl<S: ProbSeries> ConcatSeries<S> {
    /// Creates `head ++ tail`.
    pub fn new(head: FiniteSeries, tail: S) -> Self {
        Self { head, tail }
    }

    /// Length of the finite head.
    pub fn head_len(&self) -> usize {
        self.head.len()
    }
}

impl<S: ProbSeries> ProbSeries for ConcatSeries<S> {
    fn term(&self, i: usize) -> f64 {
        if i < self.head.len() {
            self.head.term(i)
        } else {
            self.tail.term(i - self.head.len())
        }
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        if i < self.head.len() {
            let head_rest = self
                .head
                .tail_upper(i)
                .finite()
                .expect("finite series tails are finite");
            match self.tail.tail_upper(0) {
                TailBound::Finite(t) => TailBound::Finite(head_rest + t),
                other => other,
            }
        } else {
            self.tail.tail_upper(i - self.head.len())
        }
    }

    fn support_len(&self) -> Option<usize> {
        self.tail.support_len().map(|n| n + self.head.len())
    }
}

/// Materializes a certified-convergent prefix of a series into a
/// [`FiniteSeries`] of its first `n` terms.
pub fn take_prefix<S: ProbSeries>(series: &S, n: usize) -> Result<FiniteSeries, MathError> {
    FiniteSeries::new((0..n).map(|i| series.term(i)).collect())
}

/// Certifies convergence of `series` and returns a certified upper bound on
/// its total mass, or the divergence error of Theorem 4.8.
pub fn certify_convergent<S: ProbSeries>(series: &S) -> Result<f64, MathError> {
    match series.tail_upper(0) {
        TailBound::Finite(b) => Ok(b),
        TailBound::Divergent => Err(MathError::DivergentSeries {
            witness_index: 0,
            partial_sum: f64::INFINITY,
        }),
        TailBound::Unknown => Err(MathError::UnknownTail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_series_suffix_sums_are_exact() {
        let s = FiniteSeries::new(vec![0.5, 0.25, 0.125]).unwrap();
        assert_eq!(s.tail_upper(0).finite().unwrap(), 0.875);
        assert_eq!(s.tail_upper(1).finite().unwrap(), 0.375);
        assert_eq!(s.tail_upper(3).finite().unwrap(), 0.0);
        assert_eq!(s.term(7), 0.0);
        assert_eq!(s.support_len(), Some(3));
        assert!(s.converges());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn finite_series_rejects_bad_probabilities() {
        assert!(FiniteSeries::new(vec![0.5, 1.5]).is_err());
        assert!(FiniteSeries::new(vec![-0.1]).is_err());
    }

    #[test]
    fn geometric_tail_is_tight() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        // ∑ 0.5^(i+1) = 1
        let t0 = g.tail_upper(0).finite().unwrap();
        assert!((t0 - 1.0).abs() < 1e-12);
        // tail at 10 = 0.5^11 / 0.5 = 0.5^10
        let t10 = g.tail_upper(10).finite().unwrap();
        assert!((t10 - 0.5f64.powi(10)).abs() < 1e-15);
        // tail bound really is an upper bound on summed terms
        let s: f64 = (10..100).map(|i| g.term(i)).sum();
        assert!(s <= t10);
    }

    #[test]
    fn geometric_rejects_bad_params() {
        assert!(GeometricSeries::new(0.5, 0.0).is_err());
        assert!(GeometricSeries::new(0.5, 1.0).is_err());
        assert!(GeometricSeries::new(1.5, 0.5).is_err());
    }

    #[test]
    fn zeta_basel_sums_to_one() {
        let z = ZetaSeries::basel();
        let (lo, hi) = z.total_bounds(100_000).unwrap();
        assert!(lo < 1.0 && 1.0 < hi, "1 ∉ [{lo}, {hi}]");
        assert!(hi - lo < 2e-5 + 1e-9);
    }

    #[test]
    fn zeta_tail_bound_dominates_partial_tails() {
        let z = ZetaSeries::basel();
        for i in [1usize, 10, 100] {
            let bound = z.tail_upper(i).finite().unwrap();
            let sampled: f64 = (i..i + 10_000).map(|j| z.term(j)).sum();
            assert!(sampled <= bound, "tail bound violated at {i}");
        }
    }

    #[test]
    fn harmonic_is_divergent() {
        let h = HarmonicSeries::new(0.5).unwrap();
        assert!(!h.converges());
        assert!(matches!(h.tail_upper(5), TailBound::Divergent));
        assert!(certify_convergent(&h).is_err());
        assert!(HarmonicSeries::new(0.0).is_err());
    }

    #[test]
    fn scaled_series_scales_terms_and_tails() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        let s = ScaledSeries::new(g, 0.1).unwrap();
        assert!((s.term(0) - 0.05).abs() < 1e-15);
        let t = s.tail_upper(0).finite().unwrap();
        assert!((t - 0.1).abs() < 1e-12);
    }

    #[test]
    fn scaling_divergent_by_zero_converges() {
        let h = HarmonicSeries::new(1.0).unwrap();
        let s = ScaledSeries::new(h, 0.0).unwrap();
        assert_eq!(s.tail_upper(0), TailBound::Finite(0.0));
    }

    #[test]
    fn word_length_locate_walks_length_classes() {
        let w = WordLengthSeries::new(2).unwrap();
        assert_eq!(w.locate(0), (0, 0)); // ε
        assert_eq!(w.locate(1), (1, 0)); // "0"
        assert_eq!(w.locate(2), (1, 1)); // "1"
        assert_eq!(w.locate(3), (2, 0)); // "00"
        assert_eq!(w.locate(6), (2, 3)); // "11"
        assert_eq!(w.locate(7), (3, 0));
    }

    #[test]
    fn word_length_total_mass_is_one() {
        let w = WordLengthSeries::new(2).unwrap();
        // partial over first 2^15 indices plus tail bound should bracket 1
        let n = 1 << 15;
        let (lo, hi) = w.total_bounds(n).unwrap();
        assert!(lo <= 1.0 && 1.0 <= hi, "1 ∉ [{lo}, {hi}]");
    }

    #[test]
    fn word_length_terms_uniform_within_class() {
        let w = WordLengthSeries::new(3).unwrap();
        // indices 1..=3 are the three length-1 words
        let t = w.term(1);
        assert_eq!(w.term(2), t);
        assert_eq!(w.term(3), t);
        assert!(w.term(4) < t); // length-2 words are lighter
    }

    #[test]
    fn word_length_rejects_empty_alphabet() {
        assert!(WordLengthSeries::new(0).is_err());
    }

    #[test]
    fn take_prefix_materializes() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        let p = take_prefix(&g, 4).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.term(0), 0.5);
        assert!((p.tail_upper(0).finite().unwrap() - 0.9375).abs() < 1e-15);
    }

    #[test]
    fn partial_sum_matches_fused_iterator_fold_bitwise() {
        let g = GeometricSeries::new(0.5, 0.999).unwrap();
        let z = ZetaSeries::basel();
        for n in [0usize, 1, 3, 4095, 4096, 4097, 9000] {
            assert_eq!(
                g.partial_sum(n).to_bits(),
                KahanSum::sum_iter((0..n).map(|i| g.term(i))).to_bits(),
                "geometric n={n}"
            );
            assert_eq!(
                z.partial_sum(n).to_bits(),
                KahanSum::sum_iter((0..n).map(|i| z.term(i))).to_bits(),
                "zeta n={n}"
            );
        }
    }

    #[test]
    fn tail_bound_require_finite() {
        assert_eq!(TailBound::Finite(0.5).require_finite(0).unwrap(), 0.5);
        assert!(TailBound::Divergent.require_finite(3).is_err());
        assert!(TailBound::Unknown.require_finite(0).is_err());
    }

    #[test]
    fn concat_series_splices_head_and_tail() {
        let head = FiniteSeries::new(vec![0.8, 0.4]).unwrap();
        let tail = GeometricSeries::new(0.5, 0.5).unwrap(); // total 1
        let c = ConcatSeries::new(head, tail);
        assert_eq!(c.head_len(), 2);
        assert_eq!(c.term(0), 0.8);
        assert_eq!(c.term(1), 0.4);
        assert_eq!(c.term(2), 0.5); // tail term 0
        assert_eq!(c.term(3), 0.25);
        // tail bound inside the head includes head remainder + full tail
        let t0 = c.tail_upper(0).finite().unwrap();
        assert!((t0 - (1.2 + 1.0)).abs() < 1e-9);
        let t1 = c.tail_upper(1).finite().unwrap();
        assert!((t1 - (0.4 + 1.0)).abs() < 1e-9);
        // past the head it delegates
        let t3 = c.tail_upper(3).finite().unwrap();
        assert!((t3 - 0.5).abs() < 1e-9);
        assert_eq!(c.support_len(), None);
    }

    #[test]
    fn concat_series_with_finite_tail_has_finite_support() {
        let head = FiniteSeries::new(vec![0.5]).unwrap();
        let tail = FiniteSeries::new(vec![0.25, 0.125]).unwrap();
        let c = ConcatSeries::new(head, tail);
        assert_eq!(c.support_len(), Some(3));
        assert_eq!(c.term(2), 0.125);
        assert_eq!(c.term(3), 0.0);
    }

    #[test]
    fn concat_series_with_divergent_tail_stays_divergent() {
        let head = FiniteSeries::new(vec![0.5]).unwrap();
        let tail = HarmonicSeries::new(0.5).unwrap();
        let c = ConcatSeries::new(head, tail);
        assert!(matches!(c.tail_upper(0), TailBound::Divergent));
        assert!(matches!(c.tail_upper(5), TailBound::Divergent));
    }

    #[test]
    fn boxed_and_borrowed_series_delegate() {
        let b: Box<dyn ProbSeries + Send + Sync> =
            Box::new(GeometricSeries::new(0.25, 0.5).unwrap());
        assert_eq!(b.term(0), 0.25);
        assert!(b.tail_upper(0).finite().is_some());
        let r = &b;
        assert_eq!(r.term(1), 0.125);
    }
}

//! Infinite products `∏ (1 − p_i)` with certified enclosures.
//!
//! Section 2.2 of the paper recalls the classical theory of infinite
//! products (Fact 2.2, Lemma 2.3); Section 4.1 uses `∏_{f∈F_ω}(1 − p_f)` to
//! define instance probabilities, and the proof of Proposition 6.1 bounds the
//! tail product from below via claim (∗):
//!
//! > for `p_i ∈ [0, 1/2)` with `∑ p_i < ∞`:
//! > `∏_i (1 − p_i) ≥ exp(−(3/2) ∑_i p_i)`.
//!
//! Together with the elementary upper bound `1 − p ≤ e^{−p}` this brackets
//! every tail product between two exponentials of tail sums, which is how we
//! obtain certified [`ProbInterval`]s for quantities that are analytically
//! infinite products.

use crate::series::{ProbSeries, TailBound};
use crate::{KahanSum, LogProb, MathError, ProbInterval};

/// Exact (up to rounding) prefix product `∏_{i<n} (1 − term(i))` in
/// log-space.
pub fn prefix_product_one_minus<S: ProbSeries>(series: &S, n: usize) -> LogProb {
    prefix_range_product(series, 0, n)
}

/// Certified enclosure of the tail product `∏_{i≥n} (1 − term(i))`.
///
/// Requires the tail mass at `n` to be at most `1/2` so that every remaining
/// term is below `1/2` and claim (∗) applies. `refine` extra terms are
/// multiplied out explicitly before the analytic bound is applied to the
/// rest, tightening both endpoints.
pub fn tail_product_one_minus<S: ProbSeries>(
    series: &S,
    n: usize,
    refine: usize,
) -> Result<ProbInterval, MathError> {
    let tail_n = series.tail_upper(n).require_finite(n)?;
    if tail_n > 0.5 {
        // Claim (∗) needs p_i < 1/2 beyond the cut; a tail mass > 1/2 cannot
        // certify that. Callers should advance n first (see
        // `crate::truncation`).
        return Err(MathError::BadTolerance(tail_n));
    }
    let m = n + refine;
    let explicit = prefix_range_product(series, n, m);
    let tail_m = series.tail_upper(m).require_finite(m)?;
    // Lower bound (claim ∗): ∏_{i≥m} (1−p_i) ≥ exp(−(3/2)·tail_m).
    let lo = (-(1.5 * tail_m)).exp();
    // Upper bound: 1 − p ≤ e^{−p} gives ∏ ≤ exp(−∑_{i≥m} p_i) ≤ exp(0) = 1;
    // without a certified *lower* bound on the tail sum, 1 is the honest cap.
    let hi = 1.0;
    let e = explicit.prob();
    // outward-round to absorb log-space rounding in the explicit factors
    Ok(ProbInterval::new(e * lo, e * hi)?.outward(1e-12))
}

/// Certified enclosure of the full product `∏_{i≥0} (1 − term(i))`,
/// splitting at an automatically chosen cut where the tail mass drops below
/// `1/2`, then refining `refine` further terms.
pub fn product_one_minus<S: ProbSeries>(
    series: &S,
    refine: usize,
) -> Result<ProbInterval, MathError> {
    let cut = crate::truncation::index_with_tail_below(series, 0.5, usize::MAX)?;
    let prefix = prefix_product_one_minus(series, cut);
    let tail = tail_product_one_minus(series, cut, refine)?;
    let p = prefix.prob();
    Ok(ProbInterval::new(p * tail.lo(), p * tail.hi())?.outward(1e-12))
}

/// `∏_{a≤i<b} (1 − term(i))` in log space.
///
/// Flattened (see [`crate::flat`]): terms are gathered block-wise into a
/// contiguous scratch buffer, `ln(1−p)` is mapped over the block with no
/// loop-carried state, and the block is folded through the sequential
/// Neumaier recurrence. Each term sees the identical per-element function
/// in the identical fold order as the original fused loop, so the result
/// is bit-for-bit unchanged; a term `≥ 1` still short-circuits to zero
/// before any later term is pulled from the series.
fn prefix_range_product<S: ProbSeries>(series: &S, a: usize, b: usize) -> LogProb {
    let mut acc = KahanSum::new();
    let block = crate::flat::BLOCK.min(b.saturating_sub(a));
    let mut terms: Vec<f64> = Vec::with_capacity(block);
    let mut logs: Vec<f64> = Vec::with_capacity(block);
    let mut i = a;
    while i < b {
        let end = (i + crate::flat::BLOCK).min(b);
        terms.clear();
        for j in i..end {
            let p = series.term(j);
            if p >= 1.0 {
                return LogProb::ZERO;
            }
            terms.push(p);
        }
        crate::flat::map_ln1p_neg(&terms, &mut logs);
        acc.add_slice(&logs);
        i = end;
    }
    LogProb::from_ln(acc.value().min(0.0)).expect("range product is a probability")
}

/// The two sides of Lemma 2.3 (the "infinite distributive law") evaluated on
/// a *finite* slice of terms: returns
/// `(∏_i (1 + a_i), ∑_{J ⊆ I} ∏_{j∈J} a_j)`.
///
/// The identity is exact for finite index sets; property tests use this to
/// validate the expansion the paper's Lemma 4.3 relies on. Exponential in
/// `terms.len()` — intended for `≤ 20` terms.
pub fn distributive_law_sides(terms: &[f64]) -> (f64, f64) {
    let lhs: f64 = terms.iter().map(|a| 1.0 + a).product();
    let mut rhs = KahanSum::new();
    let n = terms.len();
    assert!(
        n <= 25,
        "distributive_law_sides is exponential; slice too long"
    );
    for mask in 0u32..(1u32 << n) {
        let mut prod = 1.0;
        for (j, &a) in terms.iter().enumerate() {
            if mask & (1 << j) != 0 {
                prod *= a;
            }
        }
        rhs.add(prod);
    }
    (lhs, rhs.value())
}

/// Claim (∗) of Proposition 6.1, checked numerically: returns the pair
/// `(∏_{i<n}(1 − p_i), exp(−(3/2) ∑_{i<n} p_i))` for a prefix; the first
/// component must dominate the second whenever all terms are `< 1/2`.
pub fn claim_star_sides<S: ProbSeries>(series: &S, n: usize) -> (f64, f64) {
    let prod = prefix_product_one_minus(series, n).prob();
    let sum = series.partial_sum(n);
    (prod, (-(1.5 * sum)).exp())
}

/// Convergence classification of `∏ (1 + a_i)` per Fact 2.2: the product
/// converges absolutely iff `∑ a_i` does. For our nonnegative
/// fact-probability series this reduces to the tail bound being finite.
pub fn product_converges<S: ProbSeries>(series: &S) -> bool {
    matches!(series.tail_upper(0), TailBound::Finite(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{FiniteSeries, GeometricSeries, HarmonicSeries, ZetaSeries};

    #[test]
    fn prefix_product_matches_direct_multiplication() {
        let s = FiniteSeries::new(vec![0.1, 0.2, 0.3]).unwrap();
        let p = prefix_product_one_minus(&s, 3).prob();
        assert!((p - 0.9 * 0.8 * 0.7).abs() < 1e-15);
    }

    #[test]
    fn prefix_product_with_certain_fact_is_zero() {
        let s = FiniteSeries::new(vec![0.5, 1.0, 0.5]).unwrap();
        assert!(prefix_product_one_minus(&s, 3).is_zero());
    }

    #[test]
    fn tail_product_encloses_truth_for_geometric() {
        let g = GeometricSeries::new(0.25, 0.5).unwrap();
        // True ∏_{i≥0}(1−p_i) computed to convergence by long prefix.
        let truth = prefix_product_one_minus(&g, 2000).prob();
        let enc = product_one_minus(&g, 0).unwrap();
        assert!(enc.contains(truth), "{truth} ∉ {enc}");
        // refinement tightens
        let enc2 = product_one_minus(&g, 64).unwrap();
        assert!(enc2.width() < enc.width());
        assert!(enc2.contains(truth));
    }

    #[test]
    fn tail_product_encloses_truth_for_zeta() {
        let z = ZetaSeries::new(0.3).unwrap();
        let truth = prefix_product_one_minus(&z, 3_000_000).prob();
        let enc = product_one_minus(&z, 1000).unwrap();
        assert!(enc.contains(truth), "{truth} ∉ {enc}");
    }

    #[test]
    fn tail_product_requires_small_tail() {
        let g = GeometricSeries::new(0.5, 0.9).unwrap(); // total mass 5
        assert!(tail_product_one_minus(&g, 0, 0).is_err());
        // but far enough out it works
        let n = crate::truncation::index_with_tail_below(&g, 0.5, usize::MAX).unwrap();
        assert!(tail_product_one_minus(&g, n, 0).is_ok());
    }

    #[test]
    fn tail_product_rejects_divergent() {
        let h = HarmonicSeries::new(0.4).unwrap();
        assert!(tail_product_one_minus(&h, 10, 0).is_err());
        assert!(product_one_minus(&h, 0).is_err());
        assert!(!product_converges(&h));
    }

    #[test]
    fn distributive_law_holds_exactly_on_finite_slices() {
        let (l, r) = distributive_law_sides(&[0.5, -0.25, 0.125]);
        assert!((l - r).abs() < 1e-12, "lhs {l} != rhs {r}");
        let (l, r) = distributive_law_sides(&[]);
        assert_eq!((l, r), (1.0, 1.0));
    }

    #[test]
    fn claim_star_holds_on_small_terms() {
        let g = GeometricSeries::new(0.4, 0.5).unwrap();
        let (prod, bound) = claim_star_sides(&g, 500);
        assert!(prod >= bound, "claim (∗) violated: {prod} < {bound}");
    }

    #[test]
    fn claim_star_is_reasonably_tight_for_small_p() {
        let g = GeometricSeries::new(0.01, 0.5).unwrap();
        let (prod, bound) = claim_star_sides(&g, 200);
        // For tiny p, ∏(1−p) ≈ e^{−∑p}, so the 3/2 bound is within a factor
        // e^{∑p/2} ≈ 1.01.
        assert!(prod / bound < 1.011);
    }

    #[test]
    fn flattened_prefix_product_matches_fused_loop_bitwise() {
        // the pre-flattening shape: map and fold interleaved per element
        fn fused<S: ProbSeries>(series: &S, n: usize) -> LogProb {
            let mut acc = KahanSum::new();
            for i in 0..n {
                let p = series.term(i);
                if p >= 1.0 {
                    return crate::LogProb::ZERO;
                }
                acc.add((-p).ln_1p());
            }
            LogProb::from_ln(acc.value().min(0.0)).unwrap()
        }
        let g = GeometricSeries::new(0.4, 0.999).unwrap();
        let z = ZetaSeries::basel();
        // block boundaries (4095/4096/4097) are the interesting cases
        for n in [0usize, 1, 7, 4095, 4096, 4097, 10_000] {
            assert_eq!(
                prefix_product_one_minus(&g, n).ln().to_bits(),
                fused(&g, n).ln().to_bits(),
                "geometric n={n}"
            );
            assert_eq!(
                prefix_product_one_minus(&z, n).ln().to_bits(),
                fused(&z, n).ln().to_bits(),
                "zeta n={n}"
            );
        }
        // a certain fact still zeroes the product without pulling later terms
        let s = FiniteSeries::new(vec![0.5, 1.0, 0.5]).unwrap();
        assert!(prefix_product_one_minus(&s, 3).is_zero());
    }

    #[test]
    fn finite_support_product_is_exact_width_zero_tail() {
        let s = FiniteSeries::new(vec![0.3, 0.2]).unwrap();
        let enc = product_one_minus(&s, 8).unwrap();
        let truth = 0.7 * 0.8;
        assert!(enc.contains(truth));
        // width is just the outward rounding margin
        assert!(enc.width() < 3e-12);
    }
}

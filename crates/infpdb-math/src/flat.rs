//! Flat slice kernels for the hot numeric loops.
//!
//! The engines' inner loops (Prop 6.1 truncation products, Shannon leaf
//! products, compensated tail sums) were originally written as iterator
//! folds that interleave a transcendental map (`ln`, `ln_1p`) with the
//! serial Neumaier compensation chain. That shape pins every element to
//! the loop-carried compensation state, so nothing vectorizes and the
//! scalar `ln` call sits on the critical path of the fold.
//!
//! This module splits each such loop into two passes over contiguous
//! `f64` slices:
//!
//! 1. a **map** pass (`ln` / `ln(1−p)` element-wise into a caller-owned
//!    scratch buffer) with no loop-carried dependency — the surrounding
//!    gather/store code autovectorizes and the libm calls pipeline;
//! 2. a **fold** pass ([`kahan_sum`]) that is bit-for-bit the same
//!    sequential Neumaier recurrence as [`crate::KahanSum`].
//!
//! Because the per-element function and the fold order are unchanged,
//! every kernel here produces the *same f64 bit pattern* as the fused
//! loop it replaces — the determinism contract the serve layer pins in
//! CI. The equivalence is property-tested in `tests/flat_kernels.rs`
//! and re-checked against the live engines by the kernel-equivalence
//! smoke in the main CI test job.
//!
//! See `DESIGN.md` §13 for the measured effect and an honest note on
//! what does and does not vectorize here.

use crate::KahanSum;

/// Default block length for chunked gather-map-fold loops.
///
/// 4096 doubles = 32 KiB per scratch buffer: two buffers (terms + logs)
/// fit comfortably in L1/L2 while amortizing the per-block bookkeeping.
pub const BLOCK: usize = 4096;

/// Sequential Neumaier fold over a slice.
///
/// Bit-for-bit identical to pushing each element through
/// [`KahanSum::add`] in order (it is exactly that loop); kept here so
/// the map and fold passes of a flattened kernel read side by side.
#[inline]
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    acc.add_slice(xs);
    acc.value()
}

/// Element-wise `ln` into `out` (cleared and refilled).
///
/// No loop-carried state: each `out[i]` depends only on `ps[i]`.
#[inline]
pub fn map_ln(ps: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(ps.iter().map(|&p| p.ln()));
}

/// Element-wise `ln(1 − p)` via `ln_1p(−p)` into `out` (cleared and
/// refilled). Same per-element expression as the fused truncation and
/// Shannon `Or` loops.
#[inline]
pub fn map_ln1p_neg(ps: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(ps.iter().map(|&p| (-p).ln_1p()));
}

/// `∏ pᵢ = exp(Σ ln pᵢ)` over a probability slice — the Shannon `And`
/// leaf product. `scratch` is a reusable log buffer.
///
/// Bit-identical to folding `p.ln()` through a fresh [`KahanSum`] and
/// exponentiating.
#[inline]
pub fn log_product(ps: &[f64], scratch: &mut Vec<f64>) -> f64 {
    map_ln(ps, scratch);
    kahan_sum(scratch).exp()
}

/// `1 − ∏ (1 − pᵢ)` over a probability slice — the Shannon `Or` leaf
/// product (probability that at least one independent event fires).
///
/// Bit-identical to folding `(-p).ln_1p()` through a fresh
/// [`KahanSum`], exponentiating, and complementing.
#[inline]
pub fn log_product_one_minus(ps: &[f64], scratch: &mut Vec<f64>) -> f64 {
    map_ln1p_neg(ps, scratch);
    1.0 - kahan_sum(scratch).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sum(xs: &[f64]) -> f64 {
        let mut acc = KahanSum::new();
        for &x in xs {
            acc.add(x);
        }
        acc.value()
    }

    #[test]
    fn kahan_sum_matches_elementwise_fold_bitwise() {
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        assert_eq!(kahan_sum(&xs).to_bits(), reference_sum(&xs).to_bits());
        assert_eq!(kahan_sum(&[]), 0.0);
    }

    #[test]
    fn log_product_matches_fused_loop_bitwise() {
        let ps: Vec<f64> = (0..257).map(|i| 0.3 + 0.6 * (i as f64 / 256.0)).collect();
        let mut scratch = Vec::new();
        let flat = log_product(&ps, &mut scratch);
        let mut acc = KahanSum::new();
        for &p in &ps {
            acc.add(p.ln());
        }
        assert_eq!(flat.to_bits(), acc.value().exp().to_bits());
    }

    #[test]
    fn log_product_one_minus_matches_fused_loop_bitwise() {
        let ps: Vec<f64> = (0..129).map(|i| 0.9 * (i as f64 / 128.0)).collect();
        let mut scratch = Vec::new();
        let flat = log_product_one_minus(&ps, &mut scratch);
        let mut acc = KahanSum::new();
        for &p in &ps {
            acc.add((-p).ln_1p());
        }
        assert_eq!(flat.to_bits(), (1.0 - acc.value().exp()).to_bits());
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let mut scratch = Vec::new();
        let a = log_product(&[0.5, 0.5], &mut scratch);
        assert_eq!(scratch.len(), 2);
        let b = log_product(&[0.25], &mut scratch);
        assert_eq!(scratch.len(), 1);
        assert!((a - 0.25).abs() < 1e-15);
        assert!((b - 0.25).abs() < 1e-15);
    }
}

//! Truncation indices for the approximation algorithm of Proposition 6.1.
//!
//! The algorithm "systematically lists facts until the remaining probability
//! mass is small enough": choose `n` such that (a) every remaining term is at
//! most `1/2` and (b) with `α_n := (3/2) ∑_{i>n} p_i`, both `e^{α_n} ≤ 1+ε`
//! and `e^{−α_n} ≥ 1−ε` hold. Since `−ln(1−ε) ≥ ln(1+ε)` for `ε ∈ (0,1)`,
//! condition (b) reduces to `α_n ≤ ln(1+ε)`, i.e. a tail-mass target of
//! `(2/3)·ln(1+ε)`.

use crate::series::{ProbSeries, TailBound};
use crate::MathError;

/// The outcome of a truncation search: a prefix length plus the certificates
/// that make the Proposition 6.1 error analysis go through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truncation {
    /// Number of leading terms to keep (facts `f_1 … f_n` in paper
    /// numbering).
    pub n: usize,
    /// Certified upper bound on the discarded tail mass `∑_{i>n} p_i`.
    pub tail_mass: f64,
    /// `α_n = (3/2) · tail_mass`.
    pub alpha: f64,
}

impl Truncation {
    /// `1 − e^{−α_n}`: certified upper bound on the probability that a
    /// random instance contains any discarded fact, i.e. `P(¬Ω_n)`.
    pub fn escape_probability(&self) -> f64 {
        -(-self.alpha).exp_m1()
    }
}

/// Smallest prefix length (searched geometrically, certified by tail bounds)
/// whose tail mass is below `target`. Errors on divergent series — there is
/// no such index, mirroring Theorem 4.8 — and on non-positive targets.
///
/// The returned index need not be globally minimal (tail bounds are upper
/// bounds, not exact tails) but is minimal *with respect to the series' own
/// certificates*, found by doubling then binary search, so the number of
/// `tail_upper` queries is `O(log n)`.
pub fn index_with_tail_below<S: ProbSeries>(
    series: &S,
    target: f64,
    max_index: usize,
) -> Result<usize, MathError> {
    if target.is_nan() || target <= 0.0 {
        return Err(MathError::BadTolerance(target));
    }
    let ok = |i: usize| -> Result<bool, MathError> {
        match series.tail_upper(i) {
            TailBound::Finite(b) => Ok(b <= target),
            TailBound::Divergent => Err(MathError::DivergentSeries {
                witness_index: i,
                partial_sum: f64::INFINITY,
            }),
            TailBound::Unknown => Err(MathError::UnknownTail),
        }
    };
    if ok(0)? {
        return Ok(0);
    }
    // If the support is finite we are done at its end at the latest.
    let hard_cap = series.support_len().unwrap_or(usize::MAX).min(max_index);
    // Geometric expansion to find an upper bracket.
    let mut hi = 1usize;
    while !ok(hi.min(hard_cap))? {
        if hi >= hard_cap {
            return Err(MathError::BadTolerance(target));
        }
        hi = hi.saturating_mul(2);
    }
    hi = hi.min(hard_cap);
    let mut lo = hi / 2; // known not-ok (or 0, known not-ok)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if ok(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// The truncation of Proposition 6.1 for additive tolerance `ε ∈ (0, 1/2)`:
/// returns the prefix length `n(ε)` together with its certificates.
///
/// Ensures both conditions of the proof: tail mass `≤ min((2/3)ln(1+ε), 1/2)`
/// (the `1/2` cap guarantees every remaining term is `< 1/2`, as claim (∗)
/// requires).
pub fn for_tolerance<S: ProbSeries>(series: &S, eps: f64) -> Result<Truncation, MathError> {
    if !(eps > 0.0 && eps < 0.5) {
        return Err(MathError::BadTolerance(eps));
    }
    let target = ((2.0 / 3.0) * eps.ln_1p()).min(0.5);
    let n = index_with_tail_below(series, target, usize::MAX)?;
    let tail_mass = series
        .tail_upper(n)
        .require_finite(n)
        .expect("index_with_tail_below certified a finite tail");
    Ok(Truncation {
        n,
        tail_mass,
        alpha: 1.5 * tail_mass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{FiniteSeries, GeometricSeries, HarmonicSeries, ZetaSeries};

    #[test]
    fn finds_zero_for_already_small_series() {
        let s = FiniteSeries::new(vec![0.001, 0.001]).unwrap();
        assert_eq!(index_with_tail_below(&s, 0.5, usize::MAX).unwrap(), 0);
    }

    #[test]
    fn finds_minimal_certified_index_geometric() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap(); // exact tails
        let n = index_with_tail_below(&g, 0.1, usize::MAX).unwrap();
        // tail(n) = 0.5^n ≤ 0.1 first at n = 4 (0.0625)
        assert_eq!(n, 4);
        // and n−1 really does not satisfy the target
        assert!(g.exact_tail(3) > 0.1);
    }

    #[test]
    fn finite_series_truncates_at_support_end_at_latest() {
        let s = FiniteSeries::new(vec![0.4; 10]).unwrap();
        let n = index_with_tail_below(&s, 1e-9, usize::MAX).unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn divergent_series_is_rejected() {
        let h = HarmonicSeries::new(0.9).unwrap();
        assert!(matches!(
            index_with_tail_below(&h, 0.1, usize::MAX),
            Err(MathError::DivergentSeries { .. })
        ));
        assert!(for_tolerance(&h, 0.1).is_err());
    }

    #[test]
    fn bad_targets_rejected() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        assert!(index_with_tail_below(&g, 0.0, usize::MAX).is_err());
        assert!(index_with_tail_below(&g, -1.0, usize::MAX).is_err());
        assert!(for_tolerance(&g, 0.0).is_err());
        assert!(for_tolerance(&g, 0.5).is_err());
        assert!(for_tolerance(&g, 0.7).is_err());
    }

    #[test]
    fn max_index_cap_is_respected() {
        let z = ZetaSeries::basel();
        // tail ~ 1/n, needs n ≈ 10^6 for 1e-6; cap at 1000 must fail
        assert!(index_with_tail_below(&z, 1e-6, 1000).is_err());
    }

    #[test]
    fn tolerance_truncation_satisfies_both_proof_conditions() {
        for eps in [0.3, 0.1, 0.01] {
            let g = GeometricSeries::new(0.9, 0.6).unwrap();
            let t = for_tolerance(&g, eps).unwrap();
            assert!(t.tail_mass <= 0.5);
            assert!(t.alpha.exp() <= 1.0 + eps + 1e-12, "e^α ≤ 1+ε fails");
            assert!((-t.alpha).exp() >= 1.0 - eps - 1e-12, "e^−α ≥ 1−ε fails");
            // every kept-out term is < 1/2
            assert!(g.term(t.n) < 0.5);
        }
    }

    #[test]
    fn geometric_needs_logarithmically_many_terms() {
        // n(ε) for geometric decay grows like log(1/ε) — the §6 complexity
        // remark.
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        let n1 = for_tolerance(&g, 0.1).unwrap().n;
        let n2 = for_tolerance(&g, 0.01).unwrap().n;
        let n3 = for_tolerance(&g, 0.001).unwrap().n;
        assert!(n2 - n1 >= 2 && n2 - n1 <= 5);
        assert!(n3 - n2 >= 2 && n3 - n2 <= 5);
    }

    #[test]
    fn zeta_needs_polynomially_many_terms() {
        // tail ~ 1/n ⇒ n(ε) ~ 1/ε: the slow-convergence regime of §6.
        let z = ZetaSeries::basel();
        let n1 = for_tolerance(&z, 0.1).unwrap().n;
        let n2 = for_tolerance(&z, 0.01).unwrap().n;
        assert!(n2 > 5 * n1);
    }

    #[test]
    fn escape_probability_matches_alpha() {
        let t = Truncation {
            n: 3,
            tail_mass: 0.1,
            alpha: 0.15,
        };
        let esc = t.escape_probability();
        assert!((esc - (1.0 - (-0.15f64).exp())).abs() < 1e-15);
    }
}

//! Diagnostics built on the second Borel–Cantelli lemma (Lemma 2.5).
//!
//! The paper's necessary existence criterion (Lemma 4.6) is exactly
//! Borel–Cantelli in contrapositive: if the fact-probability series of a
//! would-be tuple-independent PDB diverged, almost every instance would
//! contain infinitely many facts — impossible, since instances are finite.
//! This module provides the constructive side used in tests and benches:
//! divergence witnesses (explicit partial sums exceeding any threshold) and
//! certified bounds on the expected number of rare events.

use crate::series::{ProbSeries, TailBound};
use crate::KahanSum;

/// Scans partial sums of `series` and returns the first index at which the
/// partial sum exceeds `threshold`, or `None` if it never does within
/// `max_terms` terms.
///
/// For a divergent series any threshold is eventually exceeded; the returned
/// pair `(index, partial_sum)` is a checkable divergence witness in the sense
/// of [`crate::MathError::DivergentSeries`].
pub fn divergence_witness<S: ProbSeries>(
    series: &S,
    threshold: f64,
    max_terms: usize,
) -> Option<(usize, f64)> {
    let mut acc = KahanSum::new();
    for i in 0..max_terms {
        acc.add(series.term(i));
        if acc.value() > threshold {
            return Some((i, acc.value()));
        }
    }
    None
}

/// Certified upper bound on the expected number of events `E_{f_i}`, `i ≥ n`,
/// that occur — i.e. on `∑_{i≥n} p_i`. By Markov's inequality this also
/// bounds `P(at least one event beyond n occurs)`, the quantity the
/// truncation argument of Proposition 6.1 controls.
pub fn expected_occurrences_beyond<S: ProbSeries>(series: &S, n: usize) -> TailBound {
    series.tail_upper(n)
}

/// Borel–Cantelli dichotomy report for a series of event probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BorelCantelli {
    /// `∑ p_i < bound`: almost surely only finitely many events occur
    /// (first Borel–Cantelli lemma); consistent with a tuple-independent PDB
    /// existing (Theorem 4.8, "if" direction).
    FinitelyMany {
        /// Certified upper bound on the total event mass.
        total_bound: f64,
    },
    /// A divergence witness was found: for independent events, infinitely
    /// many occur almost surely (second Borel–Cantelli lemma); no
    /// tuple-independent PDB realizes these probabilities (Lemma 4.6).
    InfinitelyMany {
        /// Index at which the partial sum crossed the witness threshold.
        witness_index: usize,
        /// The crossing partial sum.
        partial_sum: f64,
    },
    /// Neither certificate was obtainable within the scan budget.
    Inconclusive,
}

/// Classifies a series per the Borel–Cantelli dichotomy, preferring the
/// series' own tail certificate and falling back to a bounded scan for a
/// divergence witness (threshold 10⁶ within `max_terms` terms).
pub fn classify<S: ProbSeries>(series: &S, max_terms: usize) -> BorelCantelli {
    match series.tail_upper(0) {
        TailBound::Finite(b) => BorelCantelli::FinitelyMany { total_bound: b },
        TailBound::Divergent | TailBound::Unknown => {
            match divergence_witness(series, 1e6, max_terms) {
                Some((i, s)) => BorelCantelli::InfinitelyMany {
                    witness_index: i,
                    partial_sum: s,
                },
                None => BorelCantelli::Inconclusive,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{FiniteSeries, GeometricSeries, HarmonicSeries};

    #[test]
    fn witness_found_for_harmonic() {
        let h = HarmonicSeries::new(1.0).unwrap();
        let (i, s) = divergence_witness(&h, 5.0, 1_000_000).unwrap();
        assert!(s > 5.0);
        // harmonic partial sums reach 5 around e^5 ≈ 148 terms
        assert!(i > 50 && i < 1000);
    }

    #[test]
    fn no_witness_for_convergent() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap(); // total 1
        assert!(divergence_witness(&g, 1.5, 100_000).is_none());
    }

    #[test]
    fn witness_respects_scan_budget() {
        let h = HarmonicSeries::new(1.0).unwrap();
        assert!(divergence_witness(&h, 5.0, 10).is_none());
    }

    #[test]
    fn classify_convergent() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        match classify(&g, 1000) {
            BorelCantelli::FinitelyMany { total_bound } => assert!(total_bound >= 1.0),
            other => panic!("expected FinitelyMany, got {other:?}"),
        }
    }

    #[test]
    fn classify_divergent_finds_witness() {
        let h = HarmonicSeries::new(1.0).unwrap();
        // Partial sums reach 10^6 only after e^1e6 terms — far beyond any
        // budget; but with threshold baked at 1e6 the scan is inconclusive,
        // which is itself the honest answer for a slow diverger.
        match classify(&h, 10_000) {
            BorelCantelli::Inconclusive => {}
            other => panic!("expected Inconclusive for slow divergence, got {other:?}"),
        }
    }

    #[test]
    fn classify_fast_divergent() {
        // Constant series diverges fast enough to witness.
        #[derive(Debug)]
        struct Ones;
        impl ProbSeries for Ones {
            fn term(&self, _i: usize) -> f64 {
                1.0
            }
            fn tail_upper(&self, _i: usize) -> TailBound {
                TailBound::Divergent
            }
        }
        match classify(&Ones, 2_000_000) {
            BorelCantelli::InfinitelyMany { partial_sum, .. } => assert!(partial_sum > 1e6),
            other => panic!("expected InfinitelyMany, got {other:?}"),
        }
    }

    #[test]
    fn expected_occurrences_delegates_to_tail() {
        let s = FiniteSeries::new(vec![0.5, 0.25]).unwrap();
        assert_eq!(expected_occurrences_beyond(&s, 1), TailBound::Finite(0.25));
    }
}

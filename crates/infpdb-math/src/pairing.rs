//! Pairing functions and the `Σ* ↔ ℕ` bijection of Proposition 6.2.
//!
//! The proof of the paper's inapproximability result identifies `{0,1}*`
//! with the positive integers ("the string `x` represents the integer with
//! binary representation `1x`") and uses a pairing function
//! `⟨·,·⟩ : ℕ² → ℕ` to interleave inputs and step bounds of a Turing
//! machine. Both maps are implemented here as total bijections with inverses
//! and are used by `infpdb-tm`.

/// Cantor pairing of *positive* integers: a bijection `ℕ≥1 × ℕ≥1 → ℕ≥1`.
///
/// `pair(m, n) = (m+n−1)(m+n−2)/2 + m`, enumerating anti-diagonals.
pub fn pair(m: u64, n: u64) -> u64 {
    assert!(m >= 1 && n >= 1, "pairing is defined on positive integers");
    let s = m + n;
    (s - 1) * (s - 2) / 2 + m
}

/// Inverse of [`pair`]: recovers `(m, n)` from `k ≥ 1`.
pub fn unpair(k: u64) -> (u64, u64) {
    assert!(k >= 1, "pairing codes start at 1");
    // Find the anti-diagonal s = m+n: largest s with (s−1)(s−2)/2 < k ≤
    // (s−1)(s−2)/2 + (s−1).
    // (s−1)(s−2)/2 ≈ s²/2, so start near √(2k) and adjust.
    let mut s = ((2.0 * k as f64).sqrt() as u64).max(2);
    while (s - 1) * (s - 2) / 2 >= k {
        s -= 1;
    }
    while (s) * (s - 1) / 2 < k {
        s += 1;
    }
    let m = k - (s - 1) * (s - 2) / 2;
    let n = s - m;
    (m, n)
}

/// The bijection `{0,1}* → ℕ≥1` of Proposition 6.2: the string `x` maps to
/// the integer with binary representation `1x` (so `ε ↦ 1`, `0 ↦ 2`,
/// `1 ↦ 3`, `00 ↦ 4`, …). Strings longer than 62 bits are rejected.
pub fn string_to_nat(bits: &str) -> Result<u64, String> {
    if bits.len() > 62 {
        return Err(format!("string of length {} exceeds u64 range", bits.len()));
    }
    let mut v: u64 = 1;
    for c in bits.chars() {
        v <<= 1;
        match c {
            '0' => {}
            '1' => v |= 1,
            other => return Err(format!("non-binary character {other:?}")),
        }
    }
    Ok(v)
}

/// Inverse of [`string_to_nat`].
pub fn nat_to_string(n: u64) -> String {
    assert!(n >= 1, "codes start at 1");
    let bits = 63 - n.leading_zeros(); // number of bits after the leading 1
    let mut s = String::with_capacity(bits as usize);
    for i in (0..bits).rev() {
        s.push(if n & (1 << i) != 0 { '1' } else { '0' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_enumerates_antidiagonals() {
        // s=2: (1,1)→1 ; s=3: (1,2)→2, (2,1)→3 ; s=4: (1,3)→4, (2,2)→5, (3,1)→6
        assert_eq!(pair(1, 1), 1);
        assert_eq!(pair(1, 2), 2);
        assert_eq!(pair(2, 1), 3);
        assert_eq!(pair(1, 3), 4);
        assert_eq!(pair(2, 2), 5);
        assert_eq!(pair(3, 1), 6);
    }

    #[test]
    fn pair_unpair_round_trip() {
        for m in 1..=40u64 {
            for n in 1..=40u64 {
                assert_eq!(unpair(pair(m, n)), (m, n));
            }
        }
    }

    #[test]
    fn unpair_pair_round_trip_is_surjective() {
        for k in 1..=2000u64 {
            let (m, n) = unpair(k);
            assert!(m >= 1 && n >= 1);
            assert_eq!(pair(m, n), k);
        }
    }

    #[test]
    fn unpair_handles_large_codes() {
        let k = pair(1_000_000, 2_000_000);
        assert_eq!(unpair(k), (1_000_000, 2_000_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn pair_rejects_zero() {
        pair(0, 1);
    }

    #[test]
    fn string_nat_examples() {
        assert_eq!(string_to_nat("").unwrap(), 1);
        assert_eq!(string_to_nat("0").unwrap(), 2);
        assert_eq!(string_to_nat("1").unwrap(), 3);
        assert_eq!(string_to_nat("00").unwrap(), 4);
        assert_eq!(string_to_nat("11").unwrap(), 7);
    }

    #[test]
    fn string_nat_round_trip() {
        for n in 1..=512u64 {
            assert_eq!(string_to_nat(&nat_to_string(n)).unwrap(), n);
        }
        for s in ["", "0", "1", "0110", "111111", "0000001"] {
            assert_eq!(nat_to_string(string_to_nat(s).unwrap()), s);
        }
    }

    #[test]
    fn string_to_nat_rejects_bad_input() {
        assert!(string_to_nat("01a").is_err());
        let long = "0".repeat(63);
        assert!(string_to_nat(&long).is_err());
    }
}

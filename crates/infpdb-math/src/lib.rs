#![warn(missing_docs)]
//! Numerics substrate for `infpdb`.
//!
//! This crate implements the analytic machinery of Section 2.2 of Grohe &
//! Lindner, *Probabilistic Databases with an Infinite Open-World Assumption*
//! (PODS 2019): convergent series of fact probabilities with *certified* tail
//! bounds, infinite products evaluated in log-space, and the auxiliary
//! inequalities used by the approximation algorithm of Proposition 6.1.
//!
//! Everything downstream (tuple-independent constructions, completions,
//! approximate query evaluation) consumes probabilities through the types
//! defined here:
//!
//! * [`KahanSum`] — compensated summation, so that partial sums of many small
//!   fact probabilities do not lose mass to rounding.
//! * [`LogProb`] — probabilities in log-space, the representation used for
//!   instance probabilities `∏_{f∈D} p_f · ∏_{f∉D} (1−p_f)`, which underflow
//!   catastrophically in linear space.
//! * [`ProbInterval`] — certified enclosures `[lo, hi]` for probabilities
//!   whose exact value involves an infinite product.
//! * [`ProbSeries`] / [`TailBound`] — a countable series of probabilities
//!   together with a certified bound on its tail mass; the paper's
//!   convergence condition (8) becomes "the tail bound is finite".
//! * [`products`] — bounds on `∏_{i>n}(1−p_i)` via the paper's claim (∗).
//! * [`flat`] — the same log-space products and compensated folds as flat
//!   slice kernels (map pass + sequential fold), bit-identical to the fused
//!   loops but shaped so the map half autovectorizes.
//! * [`pairing`] — the Cantor pairing function and the `Σ* ↔ ℕ` bijection
//!   used in the proof of Proposition 6.2.

pub mod borel_cantelli;
pub mod flat;
pub mod interval;
pub mod kahan;
pub mod logprob;
pub mod pairing;
pub mod products;
pub mod series;
pub mod truncation;

pub use interval::ProbInterval;
pub use kahan::KahanSum;
pub use logprob::LogProb;
pub use series::{ProbSeries, TailBound};

/// Errors produced by the numerics layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A value expected to be a probability fell outside `[0, 1]`.
    NotAProbability(f64),
    /// A series of fact probabilities diverges; by Theorem 4.8 no
    /// tuple-independent PDB realizing it exists.
    DivergentSeries {
        /// Index of a partial sum witnessing divergence (if certified by a
        /// [`TailBound::Divergent`] answer this is the query index).
        witness_index: usize,
        /// Value of the partial sum at the witness index.
        partial_sum: f64,
    },
    /// An operation required a certified tail bound the series could not
    /// provide.
    UnknownTail,
    /// A requested tolerance was not in the open interval `(0, 1/2)` required
    /// by Proposition 6.1.
    BadTolerance(f64),
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::NotAProbability(p) => {
                write!(f, "value {p} is not a probability in [0, 1]")
            }
            MathError::DivergentSeries {
                witness_index,
                partial_sum,
            } => write!(
                f,
                "series of fact probabilities diverges (partial sum {partial_sum} at index \
                 {witness_index}); no tuple-independent PDB realizes it (Theorem 4.8)"
            ),
            MathError::UnknownTail => {
                write!(f, "series does not provide a certified tail bound")
            }
            MathError::BadTolerance(e) => {
                write!(f, "tolerance {e} outside the required range (0, 1/2)")
            }
        }
    }
}

impl std::error::Error for MathError {}

/// Validates that `p` is a probability, returning it unchanged.
pub fn check_probability(p: f64) -> Result<f64, MathError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(MathError::NotAProbability(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_probability_accepts_unit_interval() {
        assert_eq!(check_probability(0.0), Ok(0.0));
        assert_eq!(check_probability(1.0), Ok(1.0));
        assert_eq!(check_probability(0.5), Ok(0.5));
    }

    #[test]
    fn check_probability_rejects_outside() {
        assert!(check_probability(-0.1).is_err());
        assert!(check_probability(1.1).is_err());
        assert!(check_probability(f64::NAN).is_err());
        assert!(check_probability(f64::INFINITY).is_err());
    }

    #[test]
    fn errors_display() {
        let e = MathError::DivergentSeries {
            witness_index: 7,
            partial_sum: 3.0,
        };
        assert!(e.to_string().contains("Theorem 4.8"));
        assert!(MathError::NotAProbability(2.0).to_string().contains("2"));
        assert!(MathError::UnknownTail.to_string().contains("tail"));
        assert!(MathError::BadTolerance(0.9).to_string().contains("0.9"));
    }
}

//! Compensated (Kahan–Babuška–Neumaier) summation.
//!
//! Partial sums of fact-probability series routinely add 10⁵+ terms whose
//! magnitudes span many orders (e.g. a geometric series with ratio ½). Naive
//! `f64` accumulation loses the small tail terms exactly where the paper's
//! convergence arguments need them; Neumaier's variant keeps a running
//! compensation term and is accurate to within a few ulps for our workloads.

/// A running compensated sum.
///
/// ```
/// use infpdb_math::KahanSum;
/// let mut s = KahanSum::new();
/// for _ in 0..10 {
///     s.add(0.1);
/// }
/// assert!((s.value() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty sum (value `0.0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sum starting from `init`.
    pub fn with_value(init: f64) -> Self {
        Self {
            sum: init,
            compensation: 0.0,
        }
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The current compensated value of the sum.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Adds every element of a slice, in order.
    ///
    /// Exactly the [`add`](Self::add) recurrence unrolled over contiguous
    /// memory — bit-for-bit the same result as the element-wise loop.
    /// This is the fold half of the flattened kernels in [`crate::flat`]:
    /// the compensation chain is inherently serial, so the speedup of a
    /// flattened kernel comes from the *map* pass it was split from, not
    /// from this fold.
    #[inline]
    pub fn add_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Sums an iterator of terms with compensation.
    pub fn sum_iter<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s.value()
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl std::ops::AddAssign<f64> for KahanSum {
    fn add_assign(&mut self, x: f64) {
        self.add(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
    }

    #[test]
    fn with_value_starts_there() {
        assert_eq!(KahanSum::with_value(2.5).value(), 2.5);
    }

    #[test]
    fn recovers_mass_naive_sum_loses() {
        // 1.0 followed by 1e8 copies of 1e-16: naive summation yields exactly
        // 1.0 because each tiny term is absorbed; compensation keeps them.
        let mut naive = 0.0f64;
        let mut k = KahanSum::new();
        naive += 1.0;
        k.add(1.0);
        for _ in 0..100_000_000u64 {
            naive += 1e-16;
            k.add(1e-16);
        }
        assert_eq!(naive, 1.0);
        let expected = 1.0 + 1e-8;
        assert!((k.value() - expected).abs() < 1e-12, "got {}", k.value());
    }

    #[test]
    fn neumaier_handles_large_then_small() {
        // The classic case plain Kahan gets wrong: [1, 1e100, 1, -1e100].
        let mut s = KahanSum::new();
        for x in [1.0, 1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn sum_iter_matches_manual() {
        let xs: Vec<f64> = (1..=1000).map(|i| 1.0 / i as f64).collect();
        let a = KahanSum::sum_iter(xs.iter().copied());
        let s: KahanSum = xs.iter().copied().collect();
        assert_eq!(a, s.value());
    }

    #[test]
    fn add_slice_matches_elementwise_adds() {
        let xs: Vec<f64> = (1..=257).map(|i| 1.0 / i as f64).collect();
        let mut a = KahanSum::with_value(0.5);
        let mut b = KahanSum::with_value(0.5);
        a.add_slice(&xs);
        for &x in &xs {
            b.add(x);
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
        a.add_slice(&[]);
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn add_assign_operator() {
        let mut s = KahanSum::new();
        s += 0.25;
        s += 0.75;
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn geometric_series_sum_is_accurate() {
        // Σ_{i≥0} (1/2)^{i+1} truncated at 200 terms ≈ 1.
        let v = KahanSum::sum_iter((0..200).map(|i| 0.5f64.powi(i + 1)));
        assert!((v - 1.0).abs() < 1e-15);
    }
}

//! Probabilities in log-space.
//!
//! The instance probability of the tuple-independent construction
//! (Section 4.1 of the paper) is
//! `P({D}) = ∏_{f∈D} p_f · ∏_{f∈F_ω−D} (1−p_f)`,
//! a product over the entire countable support. In linear space this
//! underflows as soon as the support has a few thousand facts; `LogProb`
//! stores `ln p` and performs multiplication as addition and addition by
//! log-sum-exp.

use crate::MathError;

/// A probability stored as its natural logarithm.
///
/// `LogProb::ZERO` represents probability 0 (`ln 0 = −∞`) and
/// `LogProb::ONE` probability 1 (`ln 1 = 0`). The type is closed under the
/// operations provided here: all of them map probabilities to probabilities.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LogProb(f64);

impl LogProb {
    /// Probability 0.
    pub const ZERO: LogProb = LogProb(f64::NEG_INFINITY);
    /// Probability 1.
    pub const ONE: LogProb = LogProb(0.0);

    /// Creates a `LogProb` from a linear-space probability.
    ///
    /// Returns an error if `p ∉ [0, 1]`.
    pub fn from_prob(p: f64) -> Result<Self, MathError> {
        crate::check_probability(p)?;
        Ok(LogProb(p.ln()))
    }

    /// Creates a `LogProb` directly from a log-space value `lp ≤ 0`.
    ///
    /// Returns an error for positive values (probability > 1) or NaN.
    pub fn from_ln(lp: f64) -> Result<Self, MathError> {
        if lp.is_nan() || lp > 0.0 {
            Err(MathError::NotAProbability(lp.exp()))
        } else {
            Ok(LogProb(lp))
        }
    }

    /// The natural logarithm of the probability.
    #[inline]
    pub fn ln(self) -> f64 {
        self.0
    }

    /// The probability in linear space (may underflow to `0.0` for very
    /// negative logs — that is the point of keeping the log form).
    #[inline]
    pub fn prob(self) -> f64 {
        self.0.exp()
    }

    /// `true` if this is exactly probability 0.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == f64::NEG_INFINITY
    }

    /// Multiplication of probabilities: addition of logs.
    #[allow(clippy::should_implement_trait)] // domain vocabulary; `Mul` is also provided
    #[inline]
    pub fn mul(self, other: LogProb) -> LogProb {
        // −∞ + anything (including the would-be NaN case −∞ + ∞ cannot occur
        // since both operands are ≤ 0) stays −∞.
        LogProb(self.0 + other.0)
    }

    /// Addition of probabilities via log-sum-exp. Saturates at 1 to absorb
    /// rounding (sums of disjoint-event probabilities can exceed 1 by an
    /// ulp).
    #[allow(clippy::should_implement_trait)] // no `Add` impl: saturation differs from exact addition
    pub fn add(self, other: LogProb) -> LogProb {
        let (a, b) = if self.0 >= other.0 {
            (self.0, other.0)
        } else {
            (other.0, self.0)
        };
        if a == f64::NEG_INFINITY {
            return LogProb::ZERO;
        }
        let r = a + (b - a).exp().ln_1p();
        LogProb(r.min(0.0))
    }

    /// The complement `1 − p`, computed stably for both `p ≈ 0` and `p ≈ 1`.
    pub fn complement(self) -> LogProb {
        if self.is_zero() {
            return LogProb::ONE;
        }
        if self.0 == 0.0 {
            return LogProb::ZERO;
        }
        // ln(1 − e^x) for x < 0 (the "log1mexp" function): split at
        // x = −ln 2, using ln(−expm1(x)) near 0 and ln1p(−exp(x)) for very
        // negative x, each stable in its regime.
        const LN_HALF: f64 = -std::f64::consts::LN_2;
        if self.0 > LN_HALF {
            LogProb((-self.0.exp_m1()).ln())
        } else {
            LogProb((-self.0.exp()).ln_1p())
        }
    }

    /// Multiplies the probabilities of an iterator of `LogProb`s.
    pub fn product<I: IntoIterator<Item = LogProb>>(iter: I) -> LogProb {
        let mut acc = LogProb::ONE;
        for lp in iter {
            acc = acc.mul(lp);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }
}

impl std::ops::Mul for LogProb {
    type Output = LogProb;
    fn mul(self, rhs: LogProb) -> LogProb {
        LogProb::mul(self, rhs)
    }
}

impl std::fmt::Display for LogProb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (ln = {})", self.prob(), self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(p: f64) -> LogProb {
        LogProb::from_prob(p).unwrap()
    }

    #[test]
    fn round_trip() {
        for p in [0.0, 1e-300, 0.25, 0.5, 0.999, 1.0] {
            assert!((lp(p).prob() - p).abs() <= 1e-15 * p.max(1.0));
        }
    }

    #[test]
    fn rejects_non_probabilities() {
        assert!(LogProb::from_prob(-0.5).is_err());
        assert!(LogProb::from_prob(1.5).is_err());
        assert!(LogProb::from_ln(0.1).is_err());
        assert!(LogProb::from_ln(f64::NAN).is_err());
    }

    #[test]
    fn from_ln_accepts_valid() {
        assert_eq!(LogProb::from_ln(0.0).unwrap(), LogProb::ONE);
        assert_eq!(LogProb::from_ln(f64::NEG_INFINITY).unwrap(), LogProb::ZERO);
    }

    #[test]
    fn multiplication_is_log_addition() {
        let p = lp(0.25) * lp(0.5);
        assert!((p.prob() - 0.125).abs() < 1e-15);
    }

    #[test]
    fn multiplication_with_zero() {
        assert!(lp(0.7).mul(LogProb::ZERO).is_zero());
        assert!(LogProb::ZERO.mul(LogProb::ZERO).is_zero());
    }

    #[test]
    fn addition_log_sum_exp() {
        let p = lp(0.25).add(lp(0.5));
        assert!((p.prob() - 0.75).abs() < 1e-15);
        assert_eq!(LogProb::ZERO.add(LogProb::ZERO), LogProb::ZERO);
        assert_eq!(lp(0.3).add(LogProb::ZERO).prob(), 0.3);
    }

    #[test]
    fn addition_saturates_at_one() {
        let almost = lp(0.7).add(lp(0.30000000001));
        assert!(almost.prob() <= 1.0);
    }

    #[test]
    fn complement_is_stable() {
        assert_eq!(LogProb::ZERO.complement(), LogProb::ONE);
        assert_eq!(LogProb::ONE.complement(), LogProb::ZERO);
        let tiny = lp(1e-18);
        // 1 − 1e-18 is 1.0 in f64, but the log form keeps the distinction.
        assert!(tiny.complement().ln() < 0.0);
        assert!((tiny.complement().ln() + 1e-18).abs() < 1e-30);
        let big = lp(1.0 - 1e-12);
        // absolute accuracy is limited by representing 1−1e-12 in f64 (~1 ulp
        // of 1.0 ≈ 1e-16), not by the complement computation itself
        assert!((big.complement().prob() - 1e-12).abs() < 1e-15);
    }

    #[test]
    fn product_over_many_small_factors_does_not_underflow_in_log_space() {
        // 10_000 factors of 0.5: linear space would be 0; log space keeps it.
        let p = LogProb::product((0..10_000).map(|_| lp(0.5)));
        let expected = 10_000.0 * 0.5f64.ln();
        assert!((p.ln() - expected).abs() < 1e-8 * expected.abs());
        assert_eq!(p.prob(), 0.0); // honest underflow only on request
    }

    #[test]
    fn product_short_circuits_on_zero() {
        let p = LogProb::product([lp(0.5), LogProb::ZERO, lp(0.9)]);
        assert!(p.is_zero());
    }

    #[test]
    fn ordering_matches_probability_ordering() {
        assert!(lp(0.1) < lp(0.2));
        assert!(LogProb::ZERO < lp(1e-300));
        assert!(lp(0.999) < LogProb::ONE);
    }

    #[test]
    fn display_contains_both_forms() {
        let s = lp(0.5).to_string();
        assert!(s.contains("0.5") && s.contains("ln"));
    }
}

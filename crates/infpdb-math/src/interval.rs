//! Certified probability enclosures.
//!
//! Probabilities in an infinite tuple-independent PDB typically involve the
//! value of an infinite product that we can only bound (Section 4.1 and the
//! proof of Proposition 6.1). Rather than reporting a point estimate with an
//! unstated error, the library returns a [`ProbInterval`] `[lo, hi]` certified
//! to contain the true value.

use crate::MathError;

/// A closed subinterval of `[0, 1]` guaranteed to contain a probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbInterval {
    lo: f64,
    hi: f64,
}

impl ProbInterval {
    /// The degenerate interval `[p, p]`.
    pub fn exact(p: f64) -> Result<Self, MathError> {
        crate::check_probability(p)?;
        Ok(Self { lo: p, hi: p })
    }

    /// The interval `[lo, hi]`; both endpoints are clamped into `[0, 1]`
    /// after validation that `lo ≤ hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, MathError> {
        if !lo.is_finite() {
            return Err(MathError::NotAProbability(lo));
        }
        if !hi.is_finite() {
            return Err(MathError::NotAProbability(hi));
        }
        if lo > hi {
            return Err(MathError::NotAProbability(lo));
        }
        Ok(Self {
            lo: lo.clamp(0.0, 1.0),
            hi: hi.clamp(0.0, 1.0),
        })
    }

    /// The full interval `[0, 1]` (no information).
    pub fn vacuous() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width `hi − lo`; the certified uncertainty.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint, the natural point estimate.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        self.lo + (self.hi - self.lo) / 2.0
    }

    /// Whether `p` lies in the interval.
    #[inline]
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn encloses(&self, other: &ProbInterval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Interval product: valid because both operands are subsets of `[0,1]`,
    /// where multiplication is monotone in each argument.
    pub fn mul(&self, other: &ProbInterval) -> ProbInterval {
        ProbInterval {
            lo: self.lo * other.lo,
            hi: self.hi * other.hi,
        }
    }

    /// Interval complement `1 − [lo, hi] = [1 − hi, 1 − lo]`.
    pub fn complement(&self) -> ProbInterval {
        ProbInterval {
            lo: 1.0 - self.hi,
            hi: 1.0 - self.lo,
        }
    }

    /// Sum of probabilities of disjoint events, saturating at 1.
    pub fn add_disjoint(&self, other: &ProbInterval) -> ProbInterval {
        ProbInterval {
            lo: (self.lo + other.lo).min(1.0),
            hi: (self.hi + other.hi).min(1.0),
        }
    }

    /// Intersection of two enclosures of the *same* quantity; tightens the
    /// bound. Returns an error if they are disjoint (a certification bug).
    pub fn intersect(&self, other: &ProbInterval) -> Result<ProbInterval, MathError> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            return Err(MathError::NotAProbability(lo));
        }
        Ok(ProbInterval { lo, hi })
    }

    /// Conditional probability enclosure `[self] / [cond]` for events with
    /// `self ⊆ cond` (so the true ratio lies in `[0,1]`).
    pub fn divide_conditional(&self, cond: &ProbInterval) -> ProbInterval {
        if cond.hi == 0.0 {
            return ProbInterval::vacuous();
        }
        let lo = if cond.hi == 0.0 {
            0.0
        } else {
            self.lo / cond.hi
        };
        let hi = if cond.lo == 0.0 {
            1.0
        } else {
            (self.hi / cond.lo).min(1.0)
        };
        ProbInterval {
            lo: lo.clamp(0.0, 1.0),
            hi,
        }
    }

    /// Widens the interval by `eps` on both sides (clamped to `[0,1]`); used
    /// to convert a point estimate with additive guarantee ε (Prop 6.1) into
    /// an enclosure.
    pub fn widen(&self, eps: f64) -> ProbInterval {
        ProbInterval {
            lo: (self.lo - eps).max(0.0),
            hi: (self.hi + eps).min(1.0),
        }
    }

    /// Outward-rounds the endpoints by a relative factor, absorbing the
    /// accumulated f64 rounding of the (log-space) products that produced
    /// them, so the enclosure stays sound.
    pub fn outward(&self, rel: f64) -> ProbInterval {
        ProbInterval {
            lo: (self.lo * (1.0 - rel)).max(0.0),
            hi: (self.hi * (1.0 + rel)).min(1.0),
        }
    }
}

impl std::fmt::Display for ProbInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> ProbInterval {
        ProbInterval::new(lo, hi).unwrap()
    }

    #[test]
    fn exact_and_accessors() {
        let p = ProbInterval::exact(0.3).unwrap();
        assert_eq!(p.lo(), 0.3);
        assert_eq!(p.hi(), 0.3);
        assert_eq!(p.width(), 0.0);
        assert_eq!(p.midpoint(), 0.3);
    }

    #[test]
    fn new_validates() {
        assert!(ProbInterval::new(0.5, 0.4).is_err());
        assert!(ProbInterval::new(f64::NAN, 0.5).is_err());
        assert!(ProbInterval::new(0.1, f64::INFINITY).is_err());
        // clamping
        let p = iv(-0.2, 1.4);
        assert_eq!((p.lo(), p.hi()), (0.0, 1.0));
    }

    #[test]
    fn contains_and_encloses() {
        let p = iv(0.2, 0.6);
        assert!(p.contains(0.2) && p.contains(0.6) && p.contains(0.4));
        assert!(!p.contains(0.1) && !p.contains(0.7));
        assert!(p.encloses(&iv(0.3, 0.5)));
        assert!(!p.encloses(&iv(0.1, 0.5)));
    }

    #[test]
    fn mul_is_monotone_enclosure() {
        let a = iv(0.2, 0.4);
        let b = iv(0.5, 0.5);
        let c = a.mul(&b);
        assert_eq!((c.lo(), c.hi()), (0.1, 0.2));
        // true value of any x∈a times any y∈b is inside
        assert!(c.contains(0.3 * 0.5));
    }

    #[test]
    fn complement_flips() {
        let c = iv(0.2, 0.6).complement();
        assert!((c.lo() - 0.4).abs() < 1e-15);
        assert!((c.hi() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn add_disjoint_saturates() {
        let c = iv(0.7, 0.8).add_disjoint(&iv(0.4, 0.5));
        assert_eq!(c.hi(), 1.0);
        assert_eq!(c.lo(), 1.0);
    }

    #[test]
    fn intersect_tightens_or_errors() {
        let t = iv(0.1, 0.5).intersect(&iv(0.3, 0.9)).unwrap();
        assert_eq!((t.lo(), t.hi()), (0.3, 0.5));
        assert!(iv(0.0, 0.1).intersect(&iv(0.2, 0.3)).is_err());
    }

    #[test]
    fn divide_conditional_bounds_ratio() {
        // P(A∩B) ∈ [0.1, 0.2], P(B) ∈ [0.4, 0.5] ⇒ ratio ∈ [0.2, 0.5]
        let r = iv(0.1, 0.2).divide_conditional(&iv(0.4, 0.5));
        assert!((r.lo() - 0.2).abs() < 1e-15);
        assert!((r.hi() - 0.5).abs() < 1e-15);
        // degenerate: conditioning on possibly-zero event gives vacuous hi
        let r = iv(0.0, 0.2).divide_conditional(&iv(0.0, 0.5));
        assert_eq!(r.hi(), 1.0);
    }

    #[test]
    fn widen_clamps() {
        let w = iv(0.05, 0.97).widen(0.1);
        assert_eq!(w.lo(), 0.0);
        assert_eq!(w.hi(), 1.0);
        let w2 = iv(0.4, 0.5).widen(0.05);
        assert!((w2.lo() - 0.35).abs() < 1e-15 && (w2.hi() - 0.55).abs() < 1e-15);
    }

    #[test]
    fn vacuous_is_everything() {
        let v = ProbInterval::vacuous();
        assert!(v.contains(0.0) && v.contains(1.0));
        assert_eq!(v.width(), 1.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(iv(0.25, 0.75).to_string(), "[0.25, 0.75]");
    }
}

//! Property-based tests for the numerics substrate.

use infpdb_math::pairing;
use infpdb_math::products::{claim_star_sides, distributive_law_sides};
use infpdb_math::series::{ConcatSeries, FiniteSeries, GeometricSeries, ProbSeries};
use infpdb_math::truncation;
use infpdb_math::{KahanSum, LogProb};
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|i| i as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn concat_tail_bounds_dominate_sampled_tails(
        head in prop::collection::vec(prob(), 0..10),
        first in (1u32..1000).prop_map(|i| i as f64 / 1000.0),
        ratio in (10u32..90).prop_map(|i| i as f64 / 100.0),
    ) {
        let c = ConcatSeries::new(
            FiniteSeries::new(head.clone()).unwrap(),
            GeometricSeries::new(first, ratio).unwrap(),
        );
        for at in [0usize, 1, head.len(), head.len() + 3] {
            let bound = c.tail_upper(at).finite().unwrap();
            let sampled: f64 = (at..at + 400).map(|i| c.term(i)).sum();
            prop_assert!(sampled <= bound * (1.0 + 1e-9) + 1e-12,
                "at {}: sampled {} > bound {}", at, sampled, bound);
        }
    }

    #[test]
    fn truncation_index_is_minimal_for_exact_tails(
        terms in prop::collection::vec(prob(), 1..25),
        target_m in (1u32..1000).prop_map(|i| i as f64 / 1000.0),
    ) {
        let s = FiniteSeries::new(terms).unwrap();
        if let Ok(n) = truncation::index_with_tail_below(&s, target_m, usize::MAX) {
            let tail_at = |i: usize| s.tail_upper(i).finite().unwrap();
            prop_assert!(tail_at(n) <= target_m);
            if n > 0 {
                prop_assert!(tail_at(n - 1) > target_m,
                    "n = {} not minimal: tail({}) = {} <= {}", n, n - 1, tail_at(n - 1), target_m);
            }
        }
    }

    #[test]
    fn distributive_law_on_random_slices(
        terms in prop::collection::vec((-1000i32..=1000).prop_map(|i| i as f64 / 1000.0), 0..10),
    ) {
        let (lhs, rhs) = distributive_law_sides(&terms);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()),
            "{:?}: {} vs {}", terms, lhs, rhs);
    }

    #[test]
    fn claim_star_on_random_small_term_series(
        first in (1u32..499).prop_map(|i| i as f64 / 1000.0),
        ratio in (10u32..95).prop_map(|i| i as f64 / 100.0),
        n in 1usize..500,
    ) {
        // all terms < 1/2 by construction
        let g = GeometricSeries::new(first, ratio).unwrap();
        let (prod, bound) = claim_star_sides(&g, n);
        prop_assert!(prod >= bound - 1e-12);
    }

    #[test]
    fn logprob_product_matches_kahan_log_sum(ps in prop::collection::vec(prob(), 1..50)) {
        let lp = LogProb::product(ps.iter().map(|&p| LogProb::from_prob(p).unwrap()));
        if ps.contains(&0.0) {
            prop_assert!(lp.is_zero());
        } else {
            let k = KahanSum::sum_iter(ps.iter().map(|&p| p.ln()));
            prop_assert!((lp.ln() - k).abs() < 1e-9 * (1.0 + k.abs()));
        }
    }

    #[test]
    fn pairing_round_trips(m in 1u64..100_000, n in 1u64..100_000) {
        prop_assert_eq!(pairing::unpair(pairing::pair(m, n)), (m, n));
    }

    #[test]
    fn string_coding_round_trips(n in 1u64..1_000_000) {
        let s = pairing::nat_to_string(n);
        prop_assert_eq!(pairing::string_to_nat(&s).unwrap(), n);
        // shortlex: longer codes have longer-or-equal strings
        let s2 = pairing::nat_to_string(n + 1);
        prop_assert!(s2.len() >= s.len());
    }

    #[test]
    fn tolerance_truncation_certificates(
        first in (1u32..999).prop_map(|i| i as f64 / 1000.0),
        ratio in (10u32..95).prop_map(|i| i as f64 / 100.0),
        eps_m in (1u32..499).prop_map(|i| i as f64 / 1000.0),
    ) {
        let g = GeometricSeries::new(first, ratio).unwrap();
        let t = truncation::for_tolerance(&g, eps_m).unwrap();
        prop_assert!(t.alpha.exp() <= 1.0 + eps_m + 1e-9);
        prop_assert!((-t.alpha).exp() >= 1.0 - eps_m - 1e-9);
        prop_assert!(t.tail_mass <= 0.5 + 1e-12);
        prop_assert!(t.escape_probability() <= eps_m + 1e-9);
    }
}

//! Flat-kernel equivalence smoke: 256 seeded random cases pinning the
//! slice kernels of `infpdb_math::flat` bit-for-bit against the fused
//! reference loops they replaced. Run by CI's kernel-equivalence step.

use infpdb_math::{flat, KahanSum};

/// Minimal SplitMix64 so this crate needs no RNG dependency.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `(0, 1)` — avoids the p = 0/1 edge so `ln` stays finite.
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }
}

fn fused_log_product(ps: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &p in ps {
        acc.add(p.ln());
    }
    acc.value().exp()
}

fn fused_log_product_one_minus(ps: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &p in ps {
        acc.add((-p).ln_1p());
    }
    1.0 - acc.value().exp()
}

#[test]
fn flat_kernels_match_fused_references_on_256_seeded_cases() {
    let mut scratch = Vec::new();
    for case in 0u64..256 {
        let mut rng = SplitMix(case.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        // lengths hit the empty, tiny, and multi-block regimes
        let n = match case % 8 {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 17,
            4 => 255,
            5 => flat::BLOCK - 1,
            6 => flat::BLOCK,
            _ => flat::BLOCK + 3,
        };
        let ps: Vec<f64> = (0..n).map(|_| rng.unit()).collect();

        let and = flat::log_product(&ps, &mut scratch);
        assert_eq!(
            and.to_bits(),
            fused_log_product(&ps).to_bits(),
            "case {case}: log_product, n={n}"
        );

        let or = flat::log_product_one_minus(&ps, &mut scratch);
        assert_eq!(
            or.to_bits(),
            fused_log_product_one_minus(&ps).to_bits(),
            "case {case}: log_product_one_minus, n={n}"
        );

        // signed summands for the bare fold
        let xs: Vec<f64> = ps.iter().map(|&p| (p - 0.5) * 1e3).collect();
        let mut elementwise = KahanSum::new();
        for &x in &xs {
            elementwise.add(x);
        }
        assert_eq!(
            flat::kahan_sum(&xs).to_bits(),
            elementwise.value().to_bits(),
            "case {case}: kahan_sum, n={n}"
        );
    }
}

//! Deterministic, seeded fault injection for chaos testing.
//!
//! A [`FaultInjector`] is compiled into the service (via
//! [`QueryService::with_faults`](crate::service::QueryService::with_faults))
//! and consulted at *named sites* on the request path — `"admission"`,
//! `"engine"`, `"cache_insert"` — where it can inject a panic, a spurious
//! [`ServeError::Transient`], or artificial
//! latency. Everything is deterministic given the seed: probabilistic
//! triggers draw from a per-site `SplitMix64` stream, and budgeted
//! triggers ([`Trigger::Times`]) fire an exact number of times, so a
//! chaos test can assert that the service's failure metrics match the
//! injected counts *exactly*.
//!
//! The injector is `std`-only and designed to be free when idle: an
//! unarmed injector's [`fire`](FaultInjector::fire) is a single relaxed
//! atomic load.

use crate::ServeError;
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What to inject when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site (caught by the worker's panic containment).
    Panic,
    /// Return [`ServeError::Transient`] from the site (retryable).
    Error,
    /// Sleep for the given duration, then proceed normally.
    Latency(Duration),
}

/// When a configured fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on the first `k` calls to the site, then never again.
    /// The deterministic workhorse: after enough traffic, exactly `k`
    /// faults have been injected.
    Times(u64),
    /// Fire on every call.
    Always,
    /// Fire on every `n`-th call (the 1st, `n+1`-th, …); `n = 1` is
    /// [`Trigger::Always`].
    EveryNth(u64),
    /// Fire with probability `p` per call, drawn from the site's seeded
    /// stream — deterministic for a fixed seed and call sequence.
    Probability(f64),
}

struct Site {
    kind: FaultKind,
    trigger: Trigger,
    rng: SplitMix64,
    calls: u64,
    fired: u64,
}

impl Site {
    fn should_fire(&mut self) -> bool {
        let call = self.calls;
        self.calls += 1;
        match self.trigger {
            Trigger::Times(k) => self.fired < k,
            Trigger::Always => true,
            Trigger::EveryNth(n) => n > 0 && call.is_multiple_of(n),
            Trigger::Probability(p) => (self.rng.next_u64() as f64 / u64::MAX as f64) < p,
        }
    }
}

/// A registry of injectable faults, keyed by site name.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    armed: AtomicBool,
    sites: Mutex<HashMap<String, Site>>,
}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Site")
            .field("kind", &self.kind)
            .field("trigger", &self.trigger)
            .field("calls", &self.calls)
            .field("fired", &self.fired)
            .finish()
    }
}

impl FaultInjector {
    /// An injector with no faults configured; `seed` feeds the per-site
    /// probability streams.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            armed: AtomicBool::new(false),
            sites: Mutex::new(HashMap::new()),
        }
    }

    /// Configures (or replaces) the fault at `site`. The site's RNG is
    /// seeded from the injector seed and a hash of the site name, so
    /// adding sites never perturbs the streams of existing ones.
    pub fn inject(&self, site: &str, kind: FaultKind, trigger: Trigger) {
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.insert(
            site.to_string(),
            Site {
                kind,
                trigger,
                rng: SplitMix64::new(self.seed ^ fnv1a(site.as_bytes())),
                calls: 0,
                fired: 0,
            },
        );
        self.armed.store(true, Ordering::Release);
    }

    /// Removes the fault at `site` (its fired count is forgotten).
    pub fn clear(&self, site: &str) {
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.remove(site);
        if sites.is_empty() {
            self.armed.store(false, Ordering::Release);
        }
    }

    /// How many faults have fired at `site` so far.
    pub fn fired(&self, site: &str) -> u64 {
        let sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.get(site).map(|s| s.fired).unwrap_or(0)
    }

    /// How many times `site` has been reached (fired or not).
    pub fn calls(&self, site: &str) -> u64 {
        let sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.get(site).map(|s| s.calls).unwrap_or(0)
    }

    /// The checkpoint placed at each named site. Returns `Ok(())` when
    /// nothing fires (or after an injected latency elapses); returns the
    /// injected error for [`FaultKind::Error`]; **panics** for
    /// [`FaultKind::Panic`] — by design, to exercise the worker's panic
    /// containment.
    pub fn fire(&self, site: &str) -> Result<(), ServeError> {
        if !self.armed.load(Ordering::Acquire) {
            return Ok(());
        }
        let kind = {
            let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
            match sites.get_mut(site) {
                None => return Ok(()),
                Some(s) => {
                    if !s.should_fire() {
                        return Ok(());
                    }
                    s.fired += 1;
                    s.kind
                }
            }
        };
        match kind {
            FaultKind::Panic => panic!("injected fault: panic at {site}"),
            FaultKind::Error => Err(ServeError::Transient { site: site.into() }),
            FaultKind::Latency(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_is_a_no_op() {
        let f = FaultInjector::new(1);
        assert!(f.fire("engine").is_ok());
        assert_eq!(f.fired("engine"), 0);
        assert_eq!(f.calls("engine"), 0);
    }

    #[test]
    fn times_budget_fires_exactly_k() {
        let f = FaultInjector::new(1);
        f.inject("engine", FaultKind::Error, Trigger::Times(3));
        let mut errors = 0;
        for _ in 0..10 {
            if f.fire("engine").is_err() {
                errors += 1;
            }
        }
        assert_eq!(errors, 3);
        assert_eq!(f.fired("engine"), 3);
        assert_eq!(f.calls("engine"), 10);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let f = FaultInjector::new(1);
        f.inject("admission", FaultKind::Error, Trigger::EveryNth(3));
        let pattern: Vec<bool> = (0..7).map(|_| f.fire("admission").is_err()).collect();
        assert_eq!(pattern, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let f = FaultInjector::new(seed);
            f.inject("engine", FaultKind::Error, Trigger::Probability(0.5));
            (0..32).map(|_| f.fire("engine").is_err()).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        let fired = run(42).iter().filter(|&&b| b).count();
        assert!(fired > 4 && fired < 28, "p=0.5 should fire roughly half");
    }

    #[test]
    fn panic_kind_panics_and_is_countable() {
        let f = std::sync::Arc::new(FaultInjector::new(7));
        f.inject("engine", FaultKind::Panic, Trigger::Times(1));
        let f2 = std::sync::Arc::clone(&f);
        let err = std::panic::catch_unwind(move || {
            let _ = f2.fire("engine");
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
        assert_eq!(f.fired("engine"), 1);
        assert!(f.fire("engine").is_ok()); // budget spent
    }

    #[test]
    fn latency_kind_delays_then_proceeds() {
        let f = FaultInjector::new(1);
        f.inject(
            "cache_insert",
            FaultKind::Latency(Duration::from_millis(5)),
            Trigger::Times(1),
        );
        let t0 = std::time::Instant::now();
        assert!(f.fire("cache_insert").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(f.fired("cache_insert"), 1);
    }

    #[test]
    fn clear_disarms_when_last_site_removed() {
        let f = FaultInjector::new(1);
        f.inject("a", FaultKind::Error, Trigger::Always);
        f.inject("b", FaultKind::Error, Trigger::Always);
        f.clear("a");
        assert!(f.fire("a").is_ok());
        assert!(f.fire("b").is_err());
        f.clear("b");
        assert!(f.fire("b").is_ok());
    }
}

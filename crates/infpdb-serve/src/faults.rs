//! Deterministic, seeded fault injection for chaos testing.
//!
//! A [`FaultInjector`] is compiled into the service (via
//! [`QueryService::with_faults`](crate::service::QueryService::with_faults))
//! and consulted at *named sites* on the request path — `"admission"`,
//! `"engine"`, `"cache_insert"` — where it can inject a panic, a spurious
//! [`ServeError::Transient`], or artificial
//! latency. Everything is deterministic given the seed: probabilistic
//! triggers draw from a per-site `SplitMix64` stream, and budgeted
//! triggers ([`Trigger::Times`]) fire an exact number of times, so a
//! chaos test can assert that the service's failure metrics match the
//! injected counts *exactly*.
//!
//! The seeded site machinery itself lives in
//! [`infpdb_core::faultsim`] — shared with the durable store's
//! fault-injecting I/O layer — and this module binds it to the serving
//! layer's fault kinds. The injector is `std`-only and free when idle:
//! an unarmed injector's [`fire`](FaultInjector::fire) is a single
//! relaxed atomic load.

use crate::ServeError;
use infpdb_core::faultsim::SiteInjector;
use std::time::Duration;

pub use infpdb_core::faultsim::Trigger;

/// What to inject when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site (caught by the worker's panic containment).
    Panic,
    /// Return [`ServeError::Transient`] from the site (retryable).
    Error,
    /// Sleep for the given duration, then proceed normally.
    Latency(Duration),
}

/// A registry of injectable faults, keyed by site name.
#[derive(Debug)]
pub struct FaultInjector {
    sites: SiteInjector<FaultKind>,
}

impl FaultInjector {
    /// An injector with no faults configured; `seed` feeds the per-site
    /// probability streams.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            sites: SiteInjector::new(seed),
        }
    }

    /// Configures (or replaces) the fault at `site`. The site's RNG is
    /// seeded from the injector seed and a hash of the site name, so
    /// adding sites never perturbs the streams of existing ones.
    pub fn inject(&self, site: &str, kind: FaultKind, trigger: Trigger) {
        self.sites.inject(site, kind, trigger);
    }

    /// Removes the fault at `site` (its fired count is forgotten).
    pub fn clear(&self, site: &str) {
        self.sites.clear(site);
    }

    /// How many faults have fired at `site` so far.
    pub fn fired(&self, site: &str) -> u64 {
        self.sites.fired(site)
    }

    /// How many times `site` has been reached (fired or not).
    pub fn calls(&self, site: &str) -> u64 {
        self.sites.calls(site)
    }

    /// The checkpoint placed at each named site. Returns `Ok(())` when
    /// nothing fires (or after an injected latency elapses); returns the
    /// injected error for [`FaultKind::Error`]; **panics** for
    /// [`FaultKind::Panic`] — by design, to exercise the worker's panic
    /// containment.
    pub fn fire(&self, site: &str) -> Result<(), ServeError> {
        match self.sites.check(site) {
            None => Ok(()),
            Some(FaultKind::Panic) => panic!("injected fault: panic at {site}"),
            Some(FaultKind::Error) => Err(ServeError::Transient { site: site.into() }),
            Some(FaultKind::Latency(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_is_a_no_op() {
        let f = FaultInjector::new(1);
        assert!(f.fire("engine").is_ok());
        assert_eq!(f.fired("engine"), 0);
        assert_eq!(f.calls("engine"), 0);
    }

    #[test]
    fn times_budget_fires_exactly_k() {
        let f = FaultInjector::new(1);
        f.inject("engine", FaultKind::Error, Trigger::Times(3));
        let mut errors = 0;
        for _ in 0..10 {
            if f.fire("engine").is_err() {
                errors += 1;
            }
        }
        assert_eq!(errors, 3);
        assert_eq!(f.fired("engine"), 3);
        assert_eq!(f.calls("engine"), 10);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let f = FaultInjector::new(1);
        f.inject("admission", FaultKind::Error, Trigger::EveryNth(3));
        let pattern: Vec<bool> = (0..7).map(|_| f.fire("admission").is_err()).collect();
        assert_eq!(pattern, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let f = FaultInjector::new(seed);
            f.inject("engine", FaultKind::Error, Trigger::Probability(0.5));
            (0..32).map(|_| f.fire("engine").is_err()).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        let fired = run(42).iter().filter(|&&b| b).count();
        assert!(fired > 4 && fired < 28, "p=0.5 should fire roughly half");
    }

    #[test]
    fn panic_kind_panics_and_is_countable() {
        let f = std::sync::Arc::new(FaultInjector::new(7));
        f.inject("engine", FaultKind::Panic, Trigger::Times(1));
        let f2 = std::sync::Arc::clone(&f);
        let err = std::panic::catch_unwind(move || {
            let _ = f2.fire("engine");
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
        assert_eq!(f.fired("engine"), 1);
        assert!(f.fire("engine").is_ok()); // budget spent
    }

    #[test]
    fn latency_kind_delays_then_proceeds() {
        let f = FaultInjector::new(1);
        f.inject(
            "cache_insert",
            FaultKind::Latency(Duration::from_millis(5)),
            Trigger::Times(1),
        );
        let t0 = std::time::Instant::now();
        assert!(f.fire("cache_insert").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(f.fired("cache_insert"), 1);
    }

    #[test]
    fn clear_disarms_when_last_site_removed() {
        let f = FaultInjector::new(1);
        f.inject("a", FaultKind::Error, Trigger::Always);
        f.inject("b", FaultKind::Error, Trigger::Always);
        f.clear("a");
        assert!(f.fire("a").is_ok());
        assert!(f.fire("b").is_err());
        f.clear("b");
        assert!(f.fire("b").is_ok());
    }
}

//! Poison-recovery lock helpers.
//!
//! A poisoned `Mutex` means a panic unwound while the lock was held. For
//! the serving layer's data (job queues, LRU shards) every critical
//! section either completes its invariant-restoring writes before any
//! code that can panic, or tolerates a half-applied update (a cache entry
//! is advisory; a queue is a bag of independent jobs). Propagating the
//! poison would convert one contained panic into a wedged pool — exactly
//! the cascade the failure model forbids — so we strip the flag and keep
//! serving.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering from poison instead of panicking.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering from poison instead of panicking.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_after_a_panic_poisoned_the_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join()
        .unwrap_err();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
    }
}

//! Atomic metrics registry: counters, gauges, and latency histograms.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — metrics
//! tolerate torn reads across counters) so recording never contends with
//! the evaluation hot path. [`Metrics::dump`] renders a plain-text
//! snapshot in a `name value` format; the metric names are part of the
//! crate's public interface and documented in DESIGN.md §Serving layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (`< 1µs` … `≥ 2²⁰µs ≈ 1s`).
pub const HISTOGRAM_BUCKETS: usize = 21;

/// Strategy labels for the `serve_plan_choice_total` family, indexed by
/// [`Strategy::tag`](infpdb_finite::plan::Strategy::tag).
const STRATEGY_LABELS: [&str; 4] = ["lifted", "shannon", "mc", "kl"];

/// A latency histogram with power-of-two microsecond buckets.
///
/// Bucket `i < HISTOGRAM_BUCKETS - 1` counts observations with
/// `duration < 2^i µs`; the last bucket is a catch-all overflow.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    fn dump_into(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        writeln!(out, "{name}_count {}", self.count()).ok();
        writeln!(
            out,
            "{name}_sum_micros {}",
            self.sum_micros.load(Ordering::Relaxed)
        )
        .ok();
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if i + 1 == HISTOGRAM_BUCKETS {
                writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}").ok();
            } else {
                writeln!(out, "{name}_bucket{{le=\"{}us\"}} {cumulative}", 1u64 << i).ok();
            }
        }
    }

    /// Renders the histogram in Prometheus text exposition format.
    ///
    /// Unlike [`dump_into`](Self::dump_into)'s human-oriented `le="4us"`
    /// labels, scrape output needs numeric `le` values; bucket `i`
    /// (observations `< 2^i µs`) is exposed as `le="2^i"` microseconds,
    /// cumulative as the format requires, terminated by `le="+Inf"`.
    fn prometheus_into(&self, name: &str, help: &str, out: &mut String) {
        use std::fmt::Write as _;
        writeln!(out, "# HELP {name} {help}").ok();
        writeln!(out, "# TYPE {name} histogram").ok();
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if i + 1 == HISTOGRAM_BUCKETS {
                writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}").ok();
            } else {
                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", 1u64 << i).ok();
            }
        }
        writeln!(
            out,
            "{name}_sum {}",
            self.sum_micros.load(Ordering::Relaxed)
        )
        .ok();
        writeln!(out, "{name}_count {}", self.count()).ok();
    }
}

/// The serving layer's metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests answered (cached, fresh, or degraded).
    pub completed: AtomicU64,
    /// Requests answered straight from the result cache.
    pub cache_hits: AtomicU64,
    /// Requests that had to evaluate.
    pub cache_misses: AtomicU64,
    /// Evaluations that reused a cached compiled-query plan.
    pub plan_cache_hits: AtomicU64,
    /// Evaluations that had to compile their query.
    pub plan_cache_misses: AtomicU64,
    /// Compiled plans displaced from the plan cache by LRU eviction.
    pub plan_cache_evictions: AtomicU64,
    /// Requests answered at a widened ε to fit their budget.
    pub degraded: AtomicU64,
    /// Requests refused by admission control.
    pub rejected: AtomicU64,
    /// Requests that failed with an evaluation error.
    pub errors: AtomicU64,
    /// Worker jobs that panicked (caught; the worker survives).
    pub panics: AtomicU64,
    /// Requests shed by the bounded queue's overflow policy.
    pub shed: AtomicU64,
    /// Requests stopped by explicit ticket cancellation.
    pub cancelled: AtomicU64,
    /// Requests stopped by an expired deadline (mid-loop or while
    /// waiting).
    pub deadline_exceeded: AtomicU64,
    /// Evaluation attempts retried after a transient failure.
    pub retries: AtomicU64,
    /// Requests failed fast by an open circuit breaker.
    pub breaker_fastfail: AtomicU64,
    /// Shannon-engine memo hits accumulated across evaluations (id-keyed
    /// probes of the DAG engine's probability cache).
    pub shannon_memo_hits: AtomicU64,
    /// Shannon expansions accumulated across evaluations.
    pub shannon_expansions: AtomicU64,
    /// Lineage-arena nodes interned, accumulated across evaluations.
    pub arena_nodes: AtomicU64,
    /// Lineage-arena interning-table hits (structural duplicates answered
    /// without allocating), accumulated across evaluations.
    pub arena_intern_hits: AtomicU64,
    /// Independent lineage components evaluated on forked worker threads,
    /// accumulated across parallel evaluations.
    pub parallel_tasks: AtomicU64,
    /// Parallel-eligible evaluations that stayed sequential because every
    /// subproblem fell below the fork threshold (or fewer than two were
    /// heavy enough to split).
    pub parallel_fallback_seq: AtomicU64,
    /// Query components routed to each strategy by the cost-based
    /// planner, indexed by
    /// [`Strategy::tag`](infpdb_finite::plan::Strategy::tag)
    /// (lifted, shannon, mc, kl). Only `Engine::Auto` evaluations count.
    pub plan_choice: [AtomicU64; 4],
    /// ε-refinements whose fresh plan derivation picked a different
    /// strategy vector than the previous plan for the same query — the
    /// cost crossover actually moved.
    pub replans: AtomicU64,
    /// Durable-store snapshots committed (manifest renamed into place).
    /// No-op snapshots (nothing changed since the last commit) count
    /// under [`store_snapshot_noops`](Self::store_snapshot_noops)
    /// instead.
    pub store_snapshot_writes: AtomicU64,
    /// Periodic snapshots skipped because the catalog was unchanged
    /// since the previous commit: no file was touched.
    pub store_snapshot_noops: AtomicU64,
    /// Segment bytes written by committed snapshots, accumulated. An
    /// incremental snapshot that reuses full shards adds only its
    /// rewritten tail shards here.
    pub store_snapshot_bytes_written: AtomicU64,
    /// Shard files (re)written by committed snapshots, accumulated.
    pub store_snapshot_shards_written: AtomicU64,
    /// Shard files reused byte-for-byte from the previous snapshot
    /// (unchanged count and fingerprint), accumulated.
    pub store_snapshot_shards_skipped: AtomicU64,
    /// Shard files opened as zero-copy memory maps during store opens.
    pub store_mmap_maps: AtomicU64,
    /// Shard files read into owned buffers because mapping was
    /// unavailable (non-unix, empty file, or an injected-fault I/O
    /// layer), during store opens.
    pub store_mmap_fallbacks: AtomicU64,
    /// Store opens that had to recover (anything short of a clean,
    /// fingerprint-verified load: torn tails, checksum failures, missing
    /// segments, or a degraded fallback to an empty catalog).
    pub store_recoveries: AtomicU64,
    /// Records rejected by a CRC32C or structural check during store
    /// opens, accumulated across recoveries.
    pub store_checksum_failures: AtomicU64,
    /// Facts dropped past the last recoverable prefix during store
    /// opens, accumulated across recoveries.
    pub store_recovered_facts_dropped: AtomicU64,
    /// Jobs currently queued, waiting for a worker.
    pub queue_depth: AtomicU64,
    /// Component subtasks taken from another worker's deque by the
    /// work-stealing scheduler.
    pub steals: AtomicU64,
    /// Subtasks currently parked in the stealing scheduler's shared
    /// injector (pushed by non-worker threads), waiting for any worker.
    pub injector_depth: AtomicU64,
    /// Subtasks executed per pool worker, initialized by a
    /// work-stealing pool at spawn time (absent under the fixed
    /// scheduler, so fixed-pool dumps carry no per-worker lines).
    pub worker_tasks: std::sync::OnceLock<Vec<AtomicU64>>,
    /// Time from submission to the start of evaluation.
    pub wait: LatencyHistogram,
    /// Evaluation time (admission + engine), excluding queue wait.
    pub run: LatencyHistogram,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-text snapshot, one `name value` pair per line.
    pub fn dump(&self) -> String {
        self.dump_opts(false)
    }

    /// Like [`dump`](Self::dump), with optional per-engine arena
    /// statistics (interned node and interning-hit totals) appended —
    /// off by default because the lines are only meaningful when the
    /// intensional engine runs.
    pub fn dump_opts(&self, arena_stats: bool) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        writeln!(out, "serve_requests_submitted_total {}", c(&self.submitted)).ok();
        writeln!(out, "serve_requests_completed_total {}", c(&self.completed)).ok();
        writeln!(out, "serve_cache_hits_total {}", c(&self.cache_hits)).ok();
        writeln!(out, "serve_cache_misses_total {}", c(&self.cache_misses)).ok();
        writeln!(
            out,
            "serve_plan_cache_hits_total {}",
            c(&self.plan_cache_hits)
        )
        .ok();
        writeln!(
            out,
            "serve_plan_cache_misses_total {}",
            c(&self.plan_cache_misses)
        )
        .ok();
        writeln!(
            out,
            "serve_plan_cache_evictions_total {}",
            c(&self.plan_cache_evictions)
        )
        .ok();
        writeln!(out, "serve_degraded_answers_total {}", c(&self.degraded)).ok();
        writeln!(out, "serve_rejected_total {}", c(&self.rejected)).ok();
        writeln!(out, "serve_errors_total {}", c(&self.errors)).ok();
        writeln!(out, "serve_worker_panics_total {}", c(&self.panics)).ok();
        writeln!(out, "serve_shed_total {}", c(&self.shed)).ok();
        writeln!(out, "serve_cancelled_total {}", c(&self.cancelled)).ok();
        writeln!(
            out,
            "serve_deadline_exceeded_total {}",
            c(&self.deadline_exceeded)
        )
        .ok();
        writeln!(out, "serve_retries_total {}", c(&self.retries)).ok();
        writeln!(
            out,
            "serve_breaker_fastfail_total {}",
            c(&self.breaker_fastfail)
        )
        .ok();
        writeln!(
            out,
            "serve_shannon_memo_hits_total {}",
            c(&self.shannon_memo_hits)
        )
        .ok();
        writeln!(
            out,
            "serve_parallel_tasks_total {}",
            c(&self.parallel_tasks)
        )
        .ok();
        writeln!(
            out,
            "serve_parallel_fallback_seq_total {}",
            c(&self.parallel_fallback_seq)
        )
        .ok();
        for (i, name) in STRATEGY_LABELS.iter().enumerate() {
            writeln!(
                out,
                "serve_plan_choice_total{{strategy=\"{name}\"}} {}",
                c(&self.plan_choice[i])
            )
            .ok();
        }
        writeln!(out, "serve_replans_total {}", c(&self.replans)).ok();
        writeln!(
            out,
            "store_snapshot_writes_total {}",
            c(&self.store_snapshot_writes)
        )
        .ok();
        writeln!(
            out,
            "store_snapshot_noops_total {}",
            c(&self.store_snapshot_noops)
        )
        .ok();
        writeln!(
            out,
            "store_snapshot_bytes_written_total {}",
            c(&self.store_snapshot_bytes_written)
        )
        .ok();
        writeln!(
            out,
            "store_snapshot_shards_written_total {}",
            c(&self.store_snapshot_shards_written)
        )
        .ok();
        writeln!(
            out,
            "store_snapshot_shards_skipped_total {}",
            c(&self.store_snapshot_shards_skipped)
        )
        .ok();
        writeln!(out, "store_mmap_maps_total {}", c(&self.store_mmap_maps)).ok();
        writeln!(
            out,
            "store_mmap_fallbacks_total {}",
            c(&self.store_mmap_fallbacks)
        )
        .ok();
        writeln!(out, "store_recoveries_total {}", c(&self.store_recoveries)).ok();
        writeln!(
            out,
            "store_checksum_failures_total {}",
            c(&self.store_checksum_failures)
        )
        .ok();
        writeln!(
            out,
            "store_recovered_facts_dropped_total {}",
            c(&self.store_recovered_facts_dropped)
        )
        .ok();
        writeln!(out, "serve_queue_depth {}", c(&self.queue_depth)).ok();
        writeln!(out, "serve_steals_total {}", c(&self.steals)).ok();
        writeln!(out, "serve_injector_depth {}", c(&self.injector_depth)).ok();
        if let Some(per_worker) = self.worker_tasks.get() {
            for (i, tasks) in per_worker.iter().enumerate() {
                writeln!(
                    out,
                    "serve_worker_tasks_total{{worker=\"{i}\"}} {}",
                    c(tasks)
                )
                .ok();
            }
        }
        self.wait.dump_into("serve_wait_micros", &mut out);
        self.run.dump_into("serve_run_micros", &mut out);
        if arena_stats {
            writeln!(
                out,
                "serve_shannon_expansions_total {}",
                c(&self.shannon_expansions)
            )
            .ok();
            writeln!(out, "serve_arena_nodes_total {}", c(&self.arena_nodes)).ok();
            writeln!(
                out,
                "serve_arena_intern_hits_total {}",
                c(&self.arena_intern_hits)
            )
            .ok();
        }
        out
    }

    /// Prometheus text exposition format snapshot (`# HELP`/`# TYPE`
    /// comments, numeric histogram `le` labels), suitable for a
    /// `GET /metrics` scrape endpoint.
    ///
    /// Exposes exactly the registry that [`dump_opts`](Self::dump_opts)
    /// prints: the same metric names, with `serve_queue_depth` typed as a
    /// gauge, every `*_total` as a counter, and the wait/run histograms
    /// as native Prometheus histograms (the plain dump's
    /// `*_sum_micros` line becomes the standard `*_sum`).
    pub fn prometheus(&self, arena_stats: bool) -> String {
        use std::fmt::Write as _;
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            writeln!(out, "# HELP {name} {help}").ok();
            writeln!(out, "# TYPE {name} counter").ok();
            writeln!(out, "{name} {v}").ok();
        };
        counter(
            "serve_requests_submitted_total",
            "Requests accepted into the queue.",
            c(&self.submitted),
        );
        counter(
            "serve_requests_completed_total",
            "Requests answered (cached, fresh, or degraded).",
            c(&self.completed),
        );
        counter(
            "serve_cache_hits_total",
            "Requests answered straight from the result cache.",
            c(&self.cache_hits),
        );
        counter(
            "serve_cache_misses_total",
            "Requests that had to evaluate.",
            c(&self.cache_misses),
        );
        counter(
            "serve_plan_cache_hits_total",
            "Evaluations that reused a cached compiled-query plan.",
            c(&self.plan_cache_hits),
        );
        counter(
            "serve_plan_cache_misses_total",
            "Evaluations that had to compile their query.",
            c(&self.plan_cache_misses),
        );
        counter(
            "serve_plan_cache_evictions_total",
            "Compiled plans displaced from the plan cache by LRU eviction.",
            c(&self.plan_cache_evictions),
        );
        counter(
            "serve_degraded_answers_total",
            "Requests answered at a widened epsilon to fit their budget.",
            c(&self.degraded),
        );
        counter(
            "serve_rejected_total",
            "Requests refused by admission control.",
            c(&self.rejected),
        );
        counter(
            "serve_errors_total",
            "Requests that failed with an evaluation error.",
            c(&self.errors),
        );
        counter(
            "serve_worker_panics_total",
            "Worker jobs that panicked (caught; the worker survives).",
            c(&self.panics),
        );
        counter(
            "serve_shed_total",
            "Requests shed by the bounded queue's overflow policy.",
            c(&self.shed),
        );
        counter(
            "serve_cancelled_total",
            "Requests stopped by explicit ticket cancellation.",
            c(&self.cancelled),
        );
        counter(
            "serve_deadline_exceeded_total",
            "Requests stopped by an expired deadline.",
            c(&self.deadline_exceeded),
        );
        counter(
            "serve_retries_total",
            "Evaluation attempts retried after a transient failure.",
            c(&self.retries),
        );
        counter(
            "serve_breaker_fastfail_total",
            "Requests failed fast by an open circuit breaker.",
            c(&self.breaker_fastfail),
        );
        counter(
            "serve_shannon_memo_hits_total",
            "Shannon-engine memo hits accumulated across evaluations.",
            c(&self.shannon_memo_hits),
        );
        counter(
            "serve_parallel_tasks_total",
            "Independent lineage components evaluated on forked worker threads.",
            c(&self.parallel_tasks),
        );
        counter(
            "serve_parallel_fallback_seq_total",
            "Parallel-eligible evaluations that stayed sequential.",
            c(&self.parallel_fallback_seq),
        );
        counter(
            "serve_replans_total",
            "Epsilon-refinements whose fresh plan picked a different strategy vector.",
            c(&self.replans),
        );
        if arena_stats {
            counter(
                "serve_shannon_expansions_total",
                "Shannon expansions accumulated across evaluations.",
                c(&self.shannon_expansions),
            );
            counter(
                "serve_arena_nodes_total",
                "Lineage-arena nodes interned across evaluations.",
                c(&self.arena_nodes),
            );
            counter(
                "serve_arena_intern_hits_total",
                "Lineage-arena interning-table hits across evaluations.",
                c(&self.arena_intern_hits),
            );
        }
        counter(
            "store_snapshot_writes_total",
            "Durable-store snapshots committed (manifest renamed into place).",
            c(&self.store_snapshot_writes),
        );
        counter(
            "store_snapshot_noops_total",
            "Periodic snapshots skipped because nothing changed; no file touched.",
            c(&self.store_snapshot_noops),
        );
        counter(
            "store_snapshot_bytes_written_total",
            "Segment bytes written by committed snapshots.",
            c(&self.store_snapshot_bytes_written),
        );
        counter(
            "store_snapshot_shards_written_total",
            "Shard files (re)written by committed snapshots.",
            c(&self.store_snapshot_shards_written),
        );
        counter(
            "store_snapshot_shards_skipped_total",
            "Shard files reused byte-for-byte from the previous snapshot.",
            c(&self.store_snapshot_shards_skipped),
        );
        counter(
            "store_mmap_maps_total",
            "Shard files opened as zero-copy memory maps during store opens.",
            c(&self.store_mmap_maps),
        );
        counter(
            "store_mmap_fallbacks_total",
            "Shard files read into owned buffers because mapping was unavailable.",
            c(&self.store_mmap_fallbacks),
        );
        counter(
            "store_recoveries_total",
            "Store opens that had to recover rather than load cleanly.",
            c(&self.store_recoveries),
        );
        counter(
            "store_checksum_failures_total",
            "Records rejected by a CRC32C or structural check during store opens.",
            c(&self.store_checksum_failures),
        );
        counter(
            "store_recovered_facts_dropped_total",
            "Facts dropped past the last recoverable prefix during store opens.",
            c(&self.store_recovered_facts_dropped),
        );
        counter(
            "serve_steals_total",
            "Component subtasks taken from another worker's deque by the work-stealing scheduler.",
            c(&self.steals),
        );
        writeln!(
            out,
            "# HELP serve_plan_choice_total Query components routed to each strategy by the cost-based planner."
        )
        .ok();
        writeln!(out, "# TYPE serve_plan_choice_total counter").ok();
        for (i, name) in STRATEGY_LABELS.iter().enumerate() {
            writeln!(
                out,
                "serve_plan_choice_total{{strategy=\"{name}\"}} {}",
                c(&self.plan_choice[i])
            )
            .ok();
        }
        writeln!(
            out,
            "# HELP serve_queue_depth Jobs currently queued, waiting for a worker."
        )
        .ok();
        writeln!(out, "# TYPE serve_queue_depth gauge").ok();
        writeln!(out, "serve_queue_depth {}", c(&self.queue_depth)).ok();
        writeln!(
            out,
            "# HELP serve_injector_depth Subtasks parked in the work-stealing injector."
        )
        .ok();
        writeln!(out, "# TYPE serve_injector_depth gauge").ok();
        writeln!(out, "serve_injector_depth {}", c(&self.injector_depth)).ok();
        if let Some(per_worker) = self.worker_tasks.get() {
            writeln!(
                out,
                "# HELP serve_worker_tasks_total Subtasks executed per pool worker."
            )
            .ok();
            writeln!(out, "# TYPE serve_worker_tasks_total counter").ok();
            for (i, tasks) in per_worker.iter().enumerate() {
                writeln!(
                    out,
                    "serve_worker_tasks_total{{worker=\"{i}\"}} {}",
                    c(tasks)
                )
                .ok();
            }
        }
        self.wait.prometheus_into(
            "serve_wait_micros",
            "Time from submission to the start of evaluation, in microseconds.",
            &mut out,
        );
        self.run.prometheus_into(
            "serve_run_micros",
            "Evaluation time (admission + engine) excluding queue wait, in microseconds.",
            &mut out,
        );
        out
    }

    /// Folds one evaluation's [`EvalTrace`](infpdb_finite::engine::EvalTrace)
    /// into the registry.
    pub fn record_trace(&self, trace: &infpdb_finite::engine::EvalTrace) {
        if let Some(s) = trace.shannon {
            self.shannon_memo_hits
                .fetch_add(s.cache_hits as u64, Ordering::Relaxed);
            self.shannon_expansions
                .fetch_add(s.expansions as u64, Ordering::Relaxed);
        }
        if let Some(a) = trace.arena {
            self.arena_nodes
                .fetch_add(a.nodes as u64, Ordering::Relaxed);
            self.arena_intern_hits
                .fetch_add(a.intern_hits as u64, Ordering::Relaxed);
        }
        if let Some(p) = trace.parallel {
            self.parallel_tasks
                .fetch_add(p.tasks as u64, Ordering::Relaxed);
            self.parallel_fallback_seq
                .fetch_add(u64::from(p.fallback_seq), Ordering::Relaxed);
        }
    }

    /// Folds one freshly chosen plan into the registry: per-strategy
    /// component counts, plus a re-plan when the derivation's strategy
    /// vector differs from the previous one at this query.
    pub fn record_plan(&self, summary: &infpdb_finite::plan::PlanSummary, replanned: bool) {
        for (i, n) in [
            summary.lifted,
            summary.shannon,
            summary.monte_carlo,
            summary.karp_luby,
        ]
        .into_iter()
        .enumerate()
        {
            self.plan_choice[i].fetch_add(u64::from(n), Ordering::Relaxed);
        }
        if replanned {
            self.replans.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1_000_000)); // 1s, near overflow bucket
        assert_eq!(h.count(), 3);
        assert!(h.mean_micros() >= 333_000);
        let mut out = String::new();
        h.dump_into("h", &mut out);
        assert!(out.contains("h_count 3"));
        // the cumulative +Inf bucket sees every observation
        assert!(out.contains("h_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn dump_contains_all_documented_names() {
        let m = Metrics::new();
        m.submitted.fetch_add(2, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        let dump = m.dump();
        for name in [
            "serve_requests_submitted_total 2",
            "serve_requests_completed_total 0",
            "serve_cache_hits_total 1",
            "serve_cache_misses_total 0",
            "serve_plan_cache_hits_total 0",
            "serve_plan_cache_misses_total 0",
            "serve_plan_cache_evictions_total 0",
            "serve_degraded_answers_total 0",
            "serve_rejected_total 0",
            "serve_errors_total 0",
            "serve_worker_panics_total 0",
            "serve_shed_total 0",
            "serve_cancelled_total 0",
            "serve_deadline_exceeded_total 0",
            "serve_retries_total 0",
            "serve_breaker_fastfail_total 0",
            "serve_shannon_memo_hits_total 0",
            "serve_parallel_tasks_total 0",
            "serve_parallel_fallback_seq_total 0",
            "serve_plan_choice_total{strategy=\"lifted\"} 0",
            "serve_plan_choice_total{strategy=\"shannon\"} 0",
            "serve_plan_choice_total{strategy=\"mc\"} 0",
            "serve_plan_choice_total{strategy=\"kl\"} 0",
            "serve_replans_total 0",
            "store_snapshot_writes_total 0",
            "store_snapshot_noops_total 0",
            "store_snapshot_bytes_written_total 0",
            "store_snapshot_shards_written_total 0",
            "store_snapshot_shards_skipped_total 0",
            "store_mmap_maps_total 0",
            "store_mmap_fallbacks_total 0",
            "store_recoveries_total 0",
            "store_checksum_failures_total 0",
            "store_recovered_facts_dropped_total 0",
            "serve_queue_depth 0",
            "serve_steals_total 0",
            "serve_injector_depth 0",
            "serve_wait_micros_count 0",
            "serve_run_micros_count 0",
        ] {
            assert!(dump.contains(name), "missing {name:?} in:\n{dump}");
        }
        // per-worker counters only exist once a stealing pool sized them
        assert!(!dump.contains("serve_worker_tasks_total"));
        m.worker_tasks.get_or_init(|| {
            (0..2)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<AtomicU64>>()
        });
        m.worker_tasks.get().unwrap()[1].fetch_add(5, Ordering::Relaxed);
        let labelled = m.dump();
        assert!(labelled.contains("serve_worker_tasks_total{worker=\"0\"} 0"));
        assert!(labelled.contains("serve_worker_tasks_total{worker=\"1\"} 5"));
        // arena statistics only appear when asked for
        assert!(!dump.contains("serve_arena_nodes_total"));
        let full = m.dump_opts(true);
        for name in [
            "serve_shannon_expansions_total 0",
            "serve_arena_nodes_total 0",
            "serve_arena_intern_hits_total 0",
        ] {
            assert!(full.contains(name), "missing {name:?} in:\n{full}");
        }
    }

    /// Every sample name in the plain dump must be scrapeable: each maps
    /// to a Prometheus family with a `# TYPE` line of the right kind.
    #[test]
    fn prometheus_covers_every_registry_name() {
        let m = Metrics::new();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.wait.record(Duration::from_micros(5));
        m.steals.fetch_add(2, Ordering::Relaxed);
        m.worker_tasks.get_or_init(|| {
            (0..3)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<AtomicU64>>()
        });
        let prom = m.prometheus(true);
        for line in m.dump_opts(true).lines() {
            let name = line.split_whitespace().next().unwrap();
            // map the plain dump's sample names onto Prometheus families
            let family = if let Some(base) = name.strip_suffix("_sum_micros") {
                base.to_string()
            } else if let Some(base) = name.strip_suffix("_count") {
                base.to_string()
            } else if let Some(i) = name.find("_bucket{") {
                name[..i].to_string()
            } else if let Some(i) = name.find('{') {
                // labelled samples (e.g. serve_worker_tasks_total{worker="0"})
                name[..i].to_string()
            } else {
                name.to_string()
            };
            let kind = if family == "serve_queue_depth" || family == "serve_injector_depth" {
                "gauge"
            } else if family.ends_with("_micros") {
                "histogram"
            } else {
                "counter"
            };
            let type_line = format!("# TYPE {family} {kind}");
            assert!(
                prom.contains(&type_line),
                "missing {type_line:?} in:\n{prom}"
            );
        }
        // numeric le labels, cumulative, +Inf-terminated
        assert!(prom.contains("serve_wait_micros_bucket{le=\"1\"}"));
        assert!(prom.contains("serve_wait_micros_bucket{le=\"524288\"}"));
        assert!(prom.contains("serve_wait_micros_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("serve_wait_micros_sum 5"));
        assert!(prom.contains("serve_wait_micros_count 1"));
        assert!(prom.contains("serve_requests_submitted_total 3"));
        assert!(prom.contains("serve_steals_total 2"));
        assert!(prom.contains("# TYPE serve_injector_depth gauge"));
        // the labelled per-worker family is TYPE-declared once, then
        // one sample per worker
        assert_eq!(prom.matches("# TYPE serve_worker_tasks_total").count(), 1);
        assert!(prom.contains("serve_worker_tasks_total{worker=\"2\"} 0"));
        // the old human-oriented unit suffix must not leak into scrapes
        assert!(!prom.contains("us\"}"));
        assert!(!prom.contains("_sum_micros"));
    }

    /// Structural validity: lines are either comments or `name{labels} value`
    /// samples, every sample's family is TYPE-declared first, histogram
    /// buckets are monotone.
    #[test]
    fn prometheus_text_format_is_well_formed() {
        let m = Metrics::new();
        m.completed.fetch_add(7, Ordering::Relaxed);
        m.run.record(Duration::from_micros(123));
        m.run.record(Duration::from_millis(50));
        let prom = m.prometheus(false);
        let mut typed = std::collections::HashSet::new();
        let mut last_bucket: Option<(String, u64)> = None;
        for line in prom.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                typed.insert(it.next().unwrap().to_string());
                assert!(matches!(it.next(), Some("counter" | "gauge" | "histogram")));
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample has value");
            value.parse::<f64>().expect("sample value is numeric");
            let family = name_part
                .split('{')
                .next()
                .unwrap()
                .trim_end_matches("_sum")
                .trim_end_matches("_count")
                .trim_end_matches("_bucket");
            assert!(
                typed.contains(family),
                "sample {name_part} before its TYPE line"
            );
            if name_part.contains("_bucket{") {
                let fam = family.to_string();
                let v: u64 = value.parse().unwrap();
                if let Some((prev_fam, prev_v)) = &last_bucket {
                    if *prev_fam == fam {
                        assert!(v >= *prev_v, "non-monotone buckets in {fam}");
                    }
                }
                last_bucket = Some((fam, v));
            }
        }
        assert!(typed.contains("serve_run_micros"));
    }

    #[test]
    fn record_trace_accumulates_engine_counters() {
        use infpdb_finite::arena::ArenaStats;
        use infpdb_finite::engine::EvalTrace;
        use infpdb_finite::shannon::{ParReport, Stats};
        let m = Metrics::new();
        let trace = EvalTrace {
            shannon: Some(Stats {
                expansions: 4,
                cache_hits: 7,
                decompositions: 2,
            }),
            arena: Some(ArenaStats {
                nodes: 31,
                intern_hits: 12,
            }),
            parallel: Some(ParReport {
                tasks: 3,
                fallback_seq: false,
            }),
            plan: None,
        };
        m.record_trace(&trace);
        m.record_trace(&trace);
        m.record_trace(&EvalTrace {
            parallel: Some(ParReport {
                tasks: 0,
                fallback_seq: true,
            }),
            ..EvalTrace::default()
        });
        let full = m.dump_opts(true);
        assert!(full.contains("serve_shannon_memo_hits_total 14"));
        assert!(full.contains("serve_shannon_expansions_total 8"));
        assert!(full.contains("serve_arena_nodes_total 62"));
        assert!(full.contains("serve_arena_intern_hits_total 24"));
        assert!(full.contains("serve_parallel_tasks_total 6"));
        assert!(full.contains("serve_parallel_fallback_seq_total 1"));
        // a lifted-path trace (no intensional work) adds nothing
        m.record_trace(&EvalTrace::default());
        assert!(m.dump_opts(true).contains("serve_arena_nodes_total 62"));
    }

    #[test]
    fn record_plan_accumulates_strategy_choices_and_replans() {
        use infpdb_finite::plan::PlanSummary;
        let m = Metrics::new();
        m.record_plan(
            &PlanSummary {
                lifted: 2,
                shannon: 1,
                monte_carlo: 0,
                karp_luby: 0,
                cost_bits: 0,
            },
            false,
        );
        m.record_plan(
            &PlanSummary {
                lifted: 0,
                shannon: 1,
                monte_carlo: 1,
                karp_luby: 2,
                cost_bits: 0,
            },
            true,
        );
        let dump = m.dump();
        assert!(dump.contains("serve_plan_choice_total{strategy=\"lifted\"} 2"));
        assert!(dump.contains("serve_plan_choice_total{strategy=\"shannon\"} 2"));
        assert!(dump.contains("serve_plan_choice_total{strategy=\"mc\"} 1"));
        assert!(dump.contains("serve_plan_choice_total{strategy=\"kl\"} 2"));
        assert!(dump.contains("serve_replans_total 1"));
        // the labelled family is scrapeable: declared once, all samples
        let prom = m.prometheus(false);
        assert_eq!(prom.matches("# TYPE serve_plan_choice_total").count(), 1);
        assert!(prom.contains("serve_plan_choice_total{strategy=\"kl\"} 2"));
        assert!(prom.contains("serve_replans_total 1"));
    }
}

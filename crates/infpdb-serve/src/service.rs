//! The query service: pool → admission → cache → engine.
//!
//! [`QueryService`] owns a [`ThreadPool`], a [`ShardedLruCache`] of
//! finished answers, and a [`Metrics`] registry, and evaluates
//! [`QueryRequest`]s against one countable t.i. PDB. Every request flows
//! through the same stages on a worker thread:
//!
//! 1. **Admission** ([`crate::admission`]) — plan `n(ε)` and apply the
//!    request's budget, possibly widening ε or rejecting;
//! 2. **Cache** — look up the (PDB, normalized query, *effective* ε,
//!    engine) fingerprint. Keying by the effective ε means a degraded
//!    answer is cached under the tolerance it actually satisfies and can
//!    never be returned for a stricter request;
//! 3. **Breaker** ([`crate::breaker`]) — on a miss, consult the
//!    per-engine circuit breaker; open means fail fast (cache hits keep
//!    serving while open);
//! 4. **Plan cache** — probe the compiled-query cache, keyed by the
//!    (PDB, normalized query) fingerprints and shared across tolerances;
//!    a miss compiles the query ([`CompiledQuery`]) and inserts it;
//! 5. **Engine** — run the Proposition 6.1 evaluation against the
//!    service's shared [`PreparedPdb`] ([`execute_prepared_par`](infpdb_query::prepared::execute_prepared_par)): repeat
//!    requests slice the already-materialized fact catalog instead of
//!    re-grounding, with a [`CancelToken`] threaded into any remaining
//!    truncation work; record throughput, insert the answer.
//!
//! The whole pipeline runs under panic containment and a bounded-backoff
//! retry loop for transient failures; see the crate-level *Failure
//! model*. Results come back through a [`Ticket`]: deadline-aware, never
//! blocking past the request's deadline plus [`TICKET_GRACE`], and
//! resolving to [`ServeError::Shutdown`] if the service shuts down
//! before the request runs.

use crate::admission::{self, CostBudget, DegradePolicy, ThroughputEstimate};
use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::cache::ShardedLruCache;
use crate::faults::FaultInjector;
use crate::fingerprint::{countable_pdb_fingerprint, query_fingerprint, CacheKey};
use crate::metrics::Metrics;
use crate::pool::{OverflowPolicy, PoolConfig, SchedulerKind, StealingExecutor, ThreadPool};
use crate::ServeError;
use infpdb_core::fingerprint::Fingerprinter;
use infpdb_finite::engine::{Engine, EvalTrace};
use infpdb_logic::ast::Formula;
use infpdb_logic::compile::CompiledQuery;
use infpdb_query::approx::{Approximation, PartialOnCancel};
use infpdb_query::budget::BudgetReport;
use infpdb_query::cancel::{CancelKind, CancelToken};
use infpdb_query::planner::{PlanKnobs, PlanProfile, Planner, ProfileOutcome};
use infpdb_query::prepared::{
    cancelled_error, execute_prepared_exec, execute_prepared_planned, PreparedPdb,
};
use infpdb_query::{QueryError, StoreStatus};
use infpdb_store::{SnapshotInfo, Store, StoreError};
use infpdb_ti::construction::CountableTiPdb;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Grace period added on top of a request's deadline before its
/// [`Ticket`] gives up waiting: covers scheduling jitter plus the
/// non-interruptible finite-engine stage. Also the bound the pool tests
/// use for "this must already have happened".
pub const TICKET_GRACE: Duration = Duration::from_secs(5);

/// Bounded-exponential-backoff retry for transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry). Only
    /// [transient](ServeError::is_transient) failures are retried.
    pub max_attempts: u32,
    /// Backoff before retry `k` (0-based) is `base · 2^k`, capped.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// The sleep before 0-based retry `attempt`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// Configuration for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool (at least 1).
    pub threads: usize,
    /// Total result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Total plan-cache capacity in compiled queries. The plan cache is
    /// distinct from the result cache: keyed only by the (PDB, normalized
    /// query) fingerprints, so every tolerance and repeat request of an
    /// α-equivalent query shares one compiled artifact.
    pub plan_cache_capacity: usize,
    /// Finite engine used for every evaluation.
    pub engine: Engine,
    /// What to do with requests whose plan exceeds their budget.
    pub policy: DegradePolicy,
    /// Prior throughput estimate (facts/second) used to convert
    /// deadlines to `n` caps before any evaluation has been observed.
    pub prior_facts_per_sec: f64,
    /// Submission-queue capacity; `None` means
    /// [`crate::pool::DEFAULT_QUEUE_CAP_PER_THREAD`]` × threads`.
    pub queue_cap: Option<usize>,
    /// What happens when the submission queue is full.
    pub overflow: OverflowPolicy,
    /// Retry policy for transient evaluation failures.
    pub retry: RetryPolicy,
    /// Per-engine circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Include per-engine arena statistics (interned nodes, interning
    /// hits, expansion totals) in [`QueryService::metrics_dump`].
    pub arena_stats: bool,
    /// Intra-query thread budget for a single lineage evaluation (at
    /// least 1). Independent of [`threads`](Self::threads), which sizes
    /// the pool of concurrent *requests*: parallelism splits one
    /// request's independent lineage components (and sampler chunks)
    /// across scoped threads. Estimates stay bit-for-bit identical at
    /// every value.
    pub parallelism: usize,
    /// How intra-request component subtasks are scheduled.
    /// [`SchedulerKind::Fixed`] forks scoped threads per request;
    /// [`SchedulerKind::Stealing`] runs them on the existing pool
    /// workers via per-worker deques and a shared injector. Answers are
    /// bit-for-bit identical either way.
    pub scheduler: SchedulerKind,
    /// Directory of the durable fact store. When set, the service
    /// recovers the persisted catalog prefix on startup (verified
    /// fact-by-fact against the live supply; see
    /// [`PreparedPdb::open`]) and [`QueryService::snapshot`] persists
    /// into it. `None` disables durability entirely.
    pub store_dir: Option<PathBuf>,
    /// Facts per shard file in the durable store; `None` uses
    /// [`infpdb_store::DEFAULT_SHARD_CAPACITY`]. Smaller shards make
    /// incremental snapshots cheaper (only tail shards rewrite) at the
    /// cost of more files; chaos tests shrink this to exercise
    /// multi-shard layouts with small catalogs. Ignored without
    /// [`store_dir`](Self::store_dir).
    pub store_shard_capacity: Option<u64>,
    /// Cost-model tuning for the `Engine::Auto` planner. Part of the
    /// result-cache key: answers planned under different knobs never
    /// alias, and a plan is a deterministic function of (PDB, query, ε,
    /// knobs) — never of runtime load.
    pub plan_knobs: PlanKnobs,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 4,
            cache_capacity: 1024,
            cache_shards: 8,
            plan_cache_capacity: 256,
            engine: Engine::Auto,
            policy: DegradePolicy::WidenEps,
            prior_facts_per_sec: 100_000.0,
            queue_cap: None,
            overflow: OverflowPolicy::Block,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            arena_stats: false,
            parallelism: 1,
            scheduler: SchedulerKind::Fixed,
            store_dir: None,
            store_shard_capacity: None,
            plan_knobs: PlanKnobs::default(),
        }
    }
}

/// One query to evaluate.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Boolean FO query over the service's schema.
    pub query: Formula,
    /// Requested additive tolerance, `0 < ε < 1/2`.
    pub eps: f64,
    /// Cost constraints (unlimited by default). A deadline budget is
    /// enforced twice: at admission (converted to an `n` cap) and at
    /// runtime (the truncation loop stops at the first checkpoint past
    /// the deadline).
    pub budget: CostBudget,
}

impl QueryRequest {
    /// An unconstrained request.
    pub fn new(query: Formula, eps: f64) -> Self {
        QueryRequest {
            query,
            eps,
            budget: CostBudget::unlimited(),
        }
    }

    /// Attaches a budget.
    pub fn with_budget(mut self, budget: CostBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// A finished evaluation with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResponse {
    /// The certified approximation (at the *effective* ε).
    pub approx: Approximation,
    /// The plan the evaluation ran under.
    pub report: BudgetReport,
    /// The tolerance the client asked for.
    pub requested_eps: f64,
    /// Whether ε was widened to fit the request's budget.
    pub degraded: bool,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Engine-side evaluation trace (Shannon memo/expansion counts,
    /// arena statistics, intra-query parallelism report). For cached
    /// answers this is the trace of the evaluation that populated the
    /// cache entry, not a fresh engine run.
    pub trace: EvalTrace,
}

impl QueryResponse {
    /// The guaranteed enclosure of the true probability.
    pub fn interval(&self) -> infpdb_math::ProbInterval {
        self.approx.interval()
    }

    /// The planner strategy the evaluation ran under (`"lifted"`,
    /// `"shannon"`, `"mc"`, `"kl"`, or `"mixed"` for multi-component
    /// plans that disagree), when the cost-based planner drove it
    /// (`Engine::Auto`); `None` under an explicit engine. For cached
    /// answers this is the strategy of the evaluation that populated
    /// the entry.
    pub fn strategy(&self) -> Option<&'static str> {
        self.trace.plan.map(|p| p.label())
    }
}

/// A handle to one in-flight request.
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, ServeError>>,
    cancel: CancelToken,
}

impl Ticket {
    /// Requests cooperative cancellation: the evaluation stops at its
    /// next checkpoint and the ticket resolves to
    /// [`ServeError::Cancelled`] (possibly carrying a partial answer).
    /// Idempotent; a no-op once the evaluation has finished.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The request's runtime deadline, if its budget had one.
    pub fn deadline(&self) -> Option<Instant> {
        self.cancel.deadline()
    }

    /// Blocks until the request finishes. Deadline-aware: a ticket with
    /// a deadline never waits past it by more than [`TICKET_GRACE`] —
    /// even if the job was lost — resolving to
    /// [`ServeError::DeadlineExceeded`] instead of blocking forever. If
    /// the service shut down before the request ran, returns
    /// [`ServeError::Shutdown`].
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        match self.cancel.deadline() {
            None => self.rx.recv().unwrap_or(Err(ServeError::Shutdown)),
            Some(at) => {
                let timeout = at.saturating_duration_since(Instant::now()) + TICKET_GRACE;
                match self.rx.recv_timeout(timeout) {
                    Ok(r) => r,
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
                    Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded {
                        facts_processed: 0,
                        partial: None,
                    }),
                }
            }
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<QueryResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Shutdown)),
        }
    }
}

/// One circuit breaker per [`Engine`] variant, so a persistently failing
/// engine fails fast without penalizing the others.
struct EngineBreakers {
    breakers: [CircuitBreaker; 4],
}

impl EngineBreakers {
    fn new(config: BreakerConfig) -> Self {
        EngineBreakers {
            breakers: std::array::from_fn(|_| CircuitBreaker::new(config)),
        }
    }

    fn for_engine(&self, engine: Engine) -> &CircuitBreaker {
        let idx = match engine {
            Engine::Auto => 0,
            Engine::Lifted => 1,
            Engine::Lineage => 2,
            Engine::Brute => 3,
        };
        &self.breakers[idx]
    }
}

/// A plan-cache entry: the compiled query plus its lazily built planner.
/// Compilation happens on first sight of a normalized query; the (more
/// expensive) cost-model profile is only built when an `Engine::Auto`
/// evaluation needs it, and is then shared — together with its per-ε
/// plan memo — by every later request and tolerance of any α-equivalent
/// alias.
struct PlanEntry {
    compiled: CompiledQuery,
    planner: OnceLock<Arc<Planner>>,
}

struct Inner {
    prepared: PreparedPdb,
    pdb_fingerprint: u64,
    engine: Engine,
    parallelism: usize,
    knobs: PlanKnobs,
    policy: DegradePolicy,
    draining: AtomicBool,
    cache: ShardedLruCache<(Approximation, BudgetReport, EvalTrace)>,
    plans: ShardedLruCache<Arc<PlanEntry>>,
    metrics: Arc<Metrics>,
    throughput: ThroughputEstimate,
    breakers: EngineBreakers,
    retry: RetryPolicy,
    faults: Option<Arc<FaultInjector>>,
    arena_stats: bool,
    store: Option<Store>,
    store_status: Option<StoreStatus>,
}

impl Inner {
    /// A fault-injection checkpoint; a no-op without an injector.
    fn fault(&self, site: &str) -> Result<(), ServeError> {
        match &self.faults {
            Some(f) => f.fire(site),
            None => Ok(()),
        }
    }
}

/// A concurrent query-evaluation service over one countable t.i. PDB.
pub struct QueryService {
    inner: Arc<Inner>,
    pool: ThreadPool,
}

impl QueryService {
    /// Builds the service: spawns the pool, fingerprints the PDB once.
    pub fn new(pdb: CountableTiPdb, config: ServiceConfig) -> Self {
        Self::build(pdb, config, None)
    }

    /// [`QueryService::new`] with a fault injector compiled into the
    /// request path (chaos testing). The injector fires at the sites
    /// `"admission"`, `"engine"`, and `"cache_insert"`.
    pub fn with_faults(
        pdb: CountableTiPdb,
        config: ServiceConfig,
        faults: Arc<FaultInjector>,
    ) -> Self {
        Self::build(pdb, config, Some(faults))
    }

    fn build(
        pdb: CountableTiPdb,
        config: ServiceConfig,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        let metrics = Arc::new(Metrics::new());
        let pdb_fingerprint = countable_pdb_fingerprint(&pdb);
        let (prepared, store, store_status) = match &config.store_dir {
            None => (PreparedPdb::new(pdb), None, None),
            Some(dir) => {
                let mut store = Store::open_dir(dir);
                if let Some(cap) = config.store_shard_capacity {
                    store = store.with_shard_capacity(cap);
                }
                let (prepared, report) = PreparedPdb::open(pdb, &store, Some(pdb_fingerprint));
                if matches!(
                    report.status,
                    StoreStatus::Recovered { .. } | StoreStatus::Degraded { .. }
                ) {
                    metrics.store_recoveries.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(rec) = &report.recovery {
                    metrics
                        .store_checksum_failures
                        .fetch_add(rec.checksum_failures, Ordering::Relaxed);
                    metrics
                        .store_recovered_facts_dropped
                        .fetch_add(rec.facts_dropped, Ordering::Relaxed);
                    metrics
                        .store_mmap_maps
                        .fetch_add(rec.mmap_maps, Ordering::Relaxed);
                    metrics
                        .store_mmap_fallbacks
                        .fetch_add(rec.mmap_fallbacks, Ordering::Relaxed);
                }
                (prepared, Some(store), Some(report.status))
            }
        };
        let inner = Arc::new(Inner {
            pdb_fingerprint,
            prepared,
            engine: config.engine,
            parallelism: config.parallelism.max(1),
            knobs: config.plan_knobs,
            policy: config.policy,
            draining: AtomicBool::new(false),
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            plans: ShardedLruCache::new(config.plan_cache_capacity, config.cache_shards),
            metrics: Arc::clone(&metrics),
            throughput: ThroughputEstimate::new(config.prior_facts_per_sec),
            breakers: EngineBreakers::new(config.breaker),
            retry: config.retry,
            faults,
            arena_stats: config.arena_stats,
            store,
            store_status,
        });
        let pool = ThreadPool::with_config(
            PoolConfig {
                threads: config.threads,
                queue_cap: config.queue_cap,
                overflow: config.overflow,
                scheduler: config.scheduler,
            },
            metrics,
        );
        QueryService { inner, pool }
    }

    /// Enqueues one request. If the bounded queue sheds it, the ticket
    /// resolves to [`ServeError::Overloaded`]; if the service is
    /// [draining](Self::begin_drain), it resolves immediately to
    /// [`ServeError::Shutdown`] without touching the queue.
    pub fn submit(&self, request: QueryRequest) -> Ticket {
        if self.inner.draining.load(Ordering::Acquire) {
            return Self::drained_ticket();
        }
        self.inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let (job, on_shed, ticket) = self.make_job(request);
        self.pool.submit_with_shed(job, Some(on_shed));
        ticket
    }

    /// Enqueues a whole batch; tickets come back in input order. Each
    /// job is subject to the overflow policy independently. While
    /// [draining](Self::begin_drain), every ticket resolves immediately
    /// to [`ServeError::Shutdown`].
    pub fn submit_batch(&self, requests: Vec<QueryRequest>) -> Vec<Ticket> {
        if self.inner.draining.load(Ordering::Acquire) {
            return requests.iter().map(|_| Self::drained_ticket()).collect();
        }
        self.inner
            .metrics
            .submitted
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let mut jobs = Vec::with_capacity(requests.len());
        let mut tickets = Vec::with_capacity(requests.len());
        for request in requests {
            let (job, on_shed, ticket) = self.make_job(request);
            jobs.push((job, Some(on_shed)));
            tickets.push(ticket);
        }
        self.pool.submit_batch_with_shed(jobs);
        tickets
    }

    /// Submits and waits — the synchronous convenience path.
    pub fn evaluate(&self, request: QueryRequest) -> Result<QueryResponse, ServeError> {
        self.submit(request).wait()
    }

    /// A pre-resolved ticket for requests refused during a drain.
    fn drained_ticket() -> Ticket {
        let (tx, rx) = mpsc::channel();
        tx.send(Err(ServeError::Shutdown)).ok();
        Ticket {
            rx,
            cancel: CancelToken::new(),
        }
    }

    #[allow(clippy::type_complexity)]
    fn make_job(
        &self,
        request: QueryRequest,
    ) -> (
        Box<dyn FnOnce() + Send + 'static>,
        Box<dyn FnOnce() + Send + 'static>,
        Ticket,
    ) {
        let inner = Arc::clone(&self.inner);
        let submitted = Instant::now();
        let cancel = match request.budget.deadline {
            Some(d) => CancelToken::with_deadline_at(submitted + d),
            None => CancelToken::new(),
        };
        let token = cancel.clone();
        let (tx, rx) = mpsc::channel();
        let shed_tx = tx.clone();
        let queue_cap = self.pool.queue_cap();
        let steal = self.pool.steal_handle();
        let job = Box::new(move || {
            inner.metrics.wait.record(submitted.elapsed());
            // under the stealing scheduler, component subtasks run on the
            // pool's own workers (carrying this ticket's cancel token)
            // instead of freshly forked scoped threads
            let executor = steal.map(|h| StealingExecutor::new(h, token.clone()));
            let result = run_resilient(&inner, &request, &token, executor.as_ref());
            match &result {
                Ok(_) => inner.metrics.completed.fetch_add(1, Ordering::Relaxed),
                Err(ServeError::Rejected { .. }) => {
                    inner.metrics.rejected.fetch_add(1, Ordering::Relaxed)
                }
                Err(ServeError::Cancelled { .. }) => {
                    inner.metrics.cancelled.fetch_add(1, Ordering::Relaxed)
                }
                Err(ServeError::DeadlineExceeded { .. }) => inner
                    .metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed),
                Err(_) => inner.metrics.errors.fetch_add(1, Ordering::Relaxed),
            };
            // a dropped ticket is fine — fire-and-forget submission
            tx.send(result).ok();
        });
        let on_shed = Box::new(move || {
            shed_tx.send(Err(ServeError::Overloaded { queue_cap })).ok();
        });
        (job, on_shed, Ticket { rx, cancel })
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Plain-text metrics snapshot, honoring the
    /// [`arena_stats`](ServiceConfig::arena_stats) configuration.
    pub fn metrics_dump(&self) -> String {
        self.inner.metrics.dump_opts(self.inner.arena_stats)
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Compiled queries currently in the plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.inner.plans.len()
    }

    /// Facts materialized into the shared prepared catalog so far.
    pub fn materialized_len(&self) -> usize {
        self.inner.prepared.materialized_len()
    }

    /// The PDB this service evaluates against — network front ends and
    /// REPLs parse incoming query text against its schema.
    pub fn pdb(&self) -> &CountableTiPdb {
        self.inner.prepared.pdb()
    }

    /// Eagerly grounds the `n(eps_max)` prefix of the PDB so that the
    /// first request at any `ε ≥ eps_max` pays no grounding cost; see
    /// [`PreparedPdb::warm`]. Returns the materialized length.
    pub fn warm(&self, eps_max: f64) -> Result<usize, ServeError> {
        self.inner.prepared.warm(eps_max).map_err(ServeError::Query)
    }

    /// The verdict of startup recovery against the configured store;
    /// `None` when the service runs without one
    /// ([`ServiceConfig::store_dir`] unset).
    pub fn store_status(&self) -> Option<StoreStatus> {
        self.inner.store_status.clone()
    }

    /// Writes the current grounded prefix to the configured store via
    /// the crash-safe snapshot protocol (epoch-named shards, then an
    /// atomic manifest rename). Returns `Ok(None)` when no store is
    /// configured. A snapshot that finds nothing changed since the last
    /// commit touches no file and bumps `store_snapshot_noops_total`;
    /// a committed one bumps `store_snapshot_writes_total` plus the
    /// bytes/shards-written/shards-skipped accumulators.
    pub fn snapshot(&self) -> Result<Option<SnapshotInfo>, StoreError> {
        let Some(store) = &self.inner.store else {
            return Ok(None);
        };
        let info = self
            .inner
            .prepared
            .persist(store, Some(self.inner.pdb_fingerprint), None)?;
        let m = &self.inner.metrics;
        if info.unchanged {
            m.store_snapshot_noops.fetch_add(1, Ordering::Relaxed);
        } else {
            m.store_snapshot_writes.fetch_add(1, Ordering::Relaxed);
            m.store_snapshot_bytes_written
                .fetch_add(info.bytes, Ordering::Relaxed);
            m.store_snapshot_shards_written
                .fetch_add(info.shards_written as u64, Ordering::Relaxed);
            m.store_snapshot_shards_skipped
                .fetch_add(info.shards_skipped as u64, Ordering::Relaxed);
        }
        Ok(Some(info))
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Submission-queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.pool.queue_cap()
    }

    /// Immediate shutdown: queued requests are dropped (their tickets
    /// resolve to [`ServeError::Shutdown`]); in-flight evaluations finish.
    pub fn shutdown_now(&mut self) {
        self.pool.shutdown_now();
    }

    /// Graceful shutdown: drains the queue, then joins the workers.
    pub fn join(self) {
        self.pool.join();
    }

    /// Enters drain mode: new submissions resolve immediately to
    /// [`ServeError::Shutdown`], while already-accepted requests —
    /// queued or running — finish normally, including surfacing their
    /// partial certificates on cancellation or deadline expiry. This is
    /// the first half of a graceful shutdown; follow with
    /// [`drain`](Self::drain) (or [`join`](Self::join)) once no more
    /// tickets will be created. Idempotent.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Whether [`begin_drain`](Self::begin_drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Graceful drain-and-stop: stops admissions, lets every queued and
    /// in-flight request finish, then joins the workers. This is what
    /// `infpdb serve` runs on SIGTERM.
    pub fn drain(self) {
        self.begin_drain();
        self.pool.join();
    }
}

/// Panic containment + retry around [`handle`]: catches panics into
/// [`ServeError::EnginePanic`], retries transient failures with bounded
/// exponential backoff, and keeps the per-engine breaker informed.
fn run_resilient(
    inner: &Inner,
    request: &QueryRequest,
    cancel: &CancelToken,
    exec: Option<&StealingExecutor>,
) -> Result<QueryResponse, ServeError> {
    let max_attempts = inner.retry.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        let result = match catch_unwind(AssertUnwindSafe(|| handle(inner, request, cancel, exec))) {
            Ok(r) => r,
            Err(payload) => {
                inner.metrics.panics.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::EnginePanic {
                    payload: panic_payload(payload),
                })
            }
        };
        match &result {
            Ok(resp) => {
                // cache hits say nothing about the engine's health
                if !resp.cached {
                    inner.breakers.for_engine(inner.engine).record_success();
                }
                return result;
            }
            Err(e) if e.is_transient() => {
                inner.breakers.for_engine(inner.engine).record_failure();
                attempt += 1;
                if attempt >= max_attempts {
                    return result;
                }
                inner.metrics.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = inner.retry.backoff(attempt - 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            // deterministic failures teach the breaker nothing about the
            // engine (a rejected budget or a bad ε would fail anywhere)
            Err(_) => return result,
        }
    }
}

/// Maps engine-side failures onto the service's error vocabulary,
/// preserving partial certificates on cancellation and deadline expiry.
fn serve_error(e: QueryError) -> ServeError {
    match e {
        QueryError::Cancelled(info) => match info.kind {
            CancelKind::Explicit => ServeError::Cancelled {
                facts_processed: info.facts_processed,
                partial: info.partial,
            },
            CancelKind::Deadline => ServeError::DeadlineExceeded {
                facts_processed: info.facts_processed,
                partial: info.partial,
            },
        },
        other => ServeError::Query(other),
    }
}

fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn handle(
    inner: &Inner,
    request: &QueryRequest,
    cancel: &CancelToken,
    exec: Option<&StealingExecutor>,
) -> Result<QueryResponse, ServeError> {
    inner.fault("admission")?;
    let pdb = inner.prepared.pdb();
    let cap = request.budget.effective_max_n(inner.throughput.get());
    let admitted = admission::admit(pdb, request.eps, cap, inner.policy)?;
    if admitted.degraded {
        inner.metrics.degraded.fetch_add(1, Ordering::Relaxed);
    }
    // the normalized-query fingerprint is computed once and reused by
    // both the result-cache key and the ε-independent plan-cache key
    let qfp = query_fingerprint(pdb.schema(), &request.query);
    // keyed by the EFFECTIVE ε: a degraded answer is cached under the
    // tolerance it actually certifies
    let key = CacheKey {
        pdb: inner.pdb_fingerprint,
        query: qfp,
        eps_bits: admitted.eps.to_bits(),
        engine: inner.engine.tag(),
        knobs: inner.knobs.fingerprint(),
    }
    .digest();
    if let Some((approx, report, trace)) = inner.cache.get(key) {
        inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(QueryResponse {
            approx,
            report,
            requested_eps: request.eps,
            degraded: admitted.degraded,
            cached: true,
            trace,
        });
    }
    inner.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    // breaker gate at the cache-miss point: open ⇒ fail fast, but cache
    // hits above keep serving
    match inner.breakers.for_engine(inner.engine).admit() {
        Admission::Proceed => {}
        Admission::FastFail(consecutive_failures) => {
            inner
                .metrics
                .breaker_fastfail
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::CircuitOpen {
                consecutive_failures,
            });
        }
    }
    inner.fault("engine")?;
    // plan cache: keyed by the (PDB, normalized query) fingerprints and
    // shared across tolerances. A hit skips compilation; the evaluation
    // below always runs the REQUEST's own formula, so α-equivalent
    // aliases that share a plan still answer bit-for-bit identically to
    // their sequential evaluations.
    let plan_key = {
        let mut fp = Fingerprinter::new();
        fp.write_u64(inner.pdb_fingerprint).write_u64(qfp);
        fp.finish()
    };
    let entry = match inner.plans.get(plan_key) {
        Some(entry) => {
            inner
                .metrics
                .plan_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            entry
        }
        None => {
            inner
                .metrics
                .plan_cache_misses
                .fetch_add(1, Ordering::Relaxed);
            let entry = Arc::new(PlanEntry {
                compiled: CompiledQuery::compile(pdb.schema(), &request.query),
                planner: OnceLock::new(),
            });
            inner.plans.insert(plan_key, Arc::clone(&entry));
            inner
                .metrics
                .plan_cache_evictions
                .store(inner.plans.evictions(), Ordering::Relaxed);
            entry
        }
    };
    let start = Instant::now();
    let (approx, trace) = if inner.engine == Engine::Auto {
        // cost-based path: build (or reuse) the entry's planner, then run
        // the per-ε chosen plan. The planner profiles once per compiled
        // query at the canonical knobs.profile_eps prefix; its per-ε memo
        // makes repeat tolerances plan-lookup cheap and re-plan detection
        // meaningful.
        let planner = match entry.planner.get() {
            Some(p) => Arc::clone(p),
            None => {
                let outcome = PlanProfile::build_prepared(
                    &inner.prepared,
                    &entry.compiled,
                    &inner.knobs,
                    cancel,
                )
                .map_err(serve_error)?;
                match outcome {
                    ProfileOutcome::Ready(profile) => {
                        // under a race the first initializer wins, so the
                        // shared per-ε memo (and its re-plan history)
                        // survives; the loser's profile is identical by
                        // construction and is simply dropped
                        let fresh = Arc::new(Planner::new(profile));
                        Arc::clone(entry.planner.get_or_init(|| fresh))
                    }
                    ProfileOutcome::Cancelled {
                        kind,
                        facts_processed,
                        partial_table,
                    } => {
                        return Err(serve_error(cancelled_error(
                            &inner.prepared,
                            &request.query,
                            Engine::Auto,
                            inner.parallelism,
                            PartialOnCancel::Evaluate,
                            kind,
                            facts_processed,
                            &partial_table,
                        )));
                    }
                }
            }
        };
        let (approx, trace, plan, event) = execute_prepared_planned(
            &inner.prepared,
            &entry.compiled,
            &planner,
            &inner.knobs,
            admitted.eps,
            inner.parallelism,
            cancel,
            PartialOnCancel::Evaluate,
            exec.map(|e| e as &dyn infpdb_finite::shannon::TaskExecutor),
        )
        .map_err(serve_error)?;
        inner.metrics.record_plan(&plan.summary(), event.replanned);
        (approx, trace)
    } else {
        execute_prepared_exec(
            &inner.prepared,
            &request.query,
            admitted.eps,
            inner.engine,
            inner.parallelism,
            cancel,
            PartialOnCancel::Evaluate,
            exec.map(|e| e as &dyn infpdb_finite::shannon::TaskExecutor),
        )
        .map_err(serve_error)?
    };
    let elapsed = start.elapsed();
    inner.metrics.run.record(elapsed);
    inner.metrics.record_trace(&trace);
    inner.throughput.observe(approx.n, elapsed);
    inner.fault("cache_insert")?;
    // partial results never reach this point (they surface as errors
    // above), so the cache only ever holds fully certified answers
    inner.cache.insert(key, (approx, admitted.report, trace));
    Ok(QueryResponse {
        approx,
        report: admitted.report,
        requested_eps: request.eps,
        degraded: admitted.degraded,
        cached: false,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, Trigger};
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::{GeometricSeries, ZetaSeries};
    use infpdb_query::approx::approx_prob_boolean;
    use infpdb_ti::enumerator::FactSupply;
    use std::time::Duration;

    fn pdb() -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema,
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    fn zeta_pdb() -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema,
            RelId(0),
            ZetaSeries::basel(),
        ))
        .unwrap()
    }

    fn service(threads: usize) -> QueryService {
        QueryService::new(
            pdb(),
            ServiceConfig {
                threads,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn agrees_with_sequential_evaluation_bit_for_bit() {
        let svc = service(2);
        let p = pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let expected = approx_prob_boolean(&p, &q, 0.01, Engine::Auto).unwrap();
        let got = svc.evaluate(QueryRequest::new(q, 0.01)).unwrap();
        assert_eq!(got.approx.estimate.to_bits(), expected.estimate.to_bits());
        assert_eq!(got.approx.n, expected.n);
        assert!(!got.cached);
        assert!(!got.degraded);
        assert_eq!(got.requested_eps, 0.01);
    }

    #[test]
    fn second_identical_request_is_a_cache_hit() {
        let svc = service(1);
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let first = svc.evaluate(QueryRequest::new(q.clone(), 0.05)).unwrap();
        // α-equivalent spelling through a double negation still hits
        let q2 = parse("!(!R(1))", p.schema()).unwrap();
        let second = svc.evaluate(QueryRequest::new(q2, 0.05)).unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.approx, second.approx);
        assert_eq!(svc.metrics().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(svc.metrics().cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(svc.cache_len(), 1);
    }

    #[test]
    fn lineage_evaluations_export_shannon_and_arena_metrics() {
        let svc = QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                engine: Engine::Lineage,
                arena_stats: true,
                ..ServiceConfig::default()
            },
        );
        let p = pdb();
        // a pair query: symmetric lineage with real interning and memo use
        let q = parse("exists x, y. R(x) /\\ R(y) /\\ x != y", p.schema()).unwrap();
        svc.evaluate(QueryRequest::new(q, 0.05)).unwrap();
        assert!(svc.metrics().arena_nodes.load(Ordering::Relaxed) > 2);
        assert!(svc.metrics().arena_intern_hits.load(Ordering::Relaxed) > 0);
        let dump = svc.metrics_dump();
        assert!(dump.contains("serve_shannon_memo_hits_total"));
        assert!(dump.contains("serve_arena_nodes_total"));
        // a cache hit does not re-run the engine: counters unchanged
        let before = svc.metrics().arena_nodes.load(Ordering::Relaxed);
        let q2 = parse("exists x, y. R(x) /\\ R(y) /\\ x != y", p.schema()).unwrap();
        let resp = svc.evaluate(QueryRequest::new(q2, 0.05)).unwrap();
        assert!(resp.cached);
        assert_eq!(svc.metrics().arena_nodes.load(Ordering::Relaxed), before);
        // default config keeps the dump arena-free
        let plain = service(1);
        assert!(!plain.metrics_dump().contains("serve_arena_nodes_total"));
    }

    /// Two relations with slowly decaying, interleaved probabilities:
    /// a conjunction of per-relation pair queries splits into two
    /// var-disjoint lineage components big enough to fork.
    fn blocks_pdb() -> CountableTiPdb {
        use infpdb_core::fact::Fact;
        use infpdb_core::value::Value;
        let schema =
            Schema::from_relations([Relation::new("A", 1), Relation::new("B", 1)]).unwrap();
        let a = schema.rel_id("A").unwrap();
        let b = schema.rel_id("B").unwrap();
        let mut facts = Vec::new();
        let mut p = 0.45f64;
        for i in 0..16i64 {
            facts.push((Fact::new(a, [Value::int(i)]), p));
            facts.push((Fact::new(b, [Value::int(i)]), p));
            p *= 0.75;
        }
        CountableTiPdb::new(FactSupply::from_vec(schema, facts).unwrap()).unwrap()
    }

    #[test]
    fn parallel_evaluation_is_bit_for_bit_sequential_and_counted() {
        let p = blocks_pdb();
        let qs = "(exists x, y. A(x) /\\ A(y) /\\ x != y) \
                  /\\ (exists x, y. B(x) /\\ B(y) /\\ x != y)";
        let q = parse(qs, p.schema()).unwrap();
        let seq = QueryService::new(
            p.clone(),
            ServiceConfig {
                threads: 1,
                engine: Engine::Lineage,
                ..ServiceConfig::default()
            },
        );
        let par = QueryService::new(
            p.clone(),
            ServiceConfig {
                threads: 1,
                engine: Engine::Lineage,
                parallelism: 4,
                ..ServiceConfig::default()
            },
        );
        let a = seq.evaluate(QueryRequest::new(q.clone(), 0.01)).unwrap();
        let b = par.evaluate(QueryRequest::new(q.clone(), 0.01)).unwrap();
        assert_eq!(a.approx.estimate.to_bits(), b.approx.estimate.to_bits());
        assert_eq!(a.approx, b.approx);
        // the parallel service actually forked: two independent components
        assert_eq!(par.metrics().parallel_tasks.load(Ordering::Relaxed), 2);
        assert_eq!(
            par.metrics().parallel_fallback_seq.load(Ordering::Relaxed),
            0
        );
        // the sequential service never reports parallel work
        assert_eq!(seq.metrics().parallel_tasks.load(Ordering::Relaxed), 0);
        let dump = par.metrics_dump();
        assert!(dump.contains("serve_parallel_tasks_total 2"));
        assert!(dump.contains("serve_parallel_fallback_seq_total 0"));
        // a connected query (single component) falls back to sequential
        let pair = parse("exists x, y. A(x) /\\ A(y) /\\ x != y", p.schema()).unwrap();
        par.evaluate(QueryRequest::new(pair, 0.01)).unwrap();
        assert_eq!(
            par.metrics().parallel_fallback_seq.load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn stealing_scheduler_matches_fixed_bit_for_bit_and_exports_counters() {
        let p = blocks_pdb();
        let qs = "(exists x, y. A(x) /\\ A(y) /\\ x != y) \
                  /\\ (exists x, y. B(x) /\\ B(y) /\\ x != y)";
        let q = parse(qs, p.schema()).unwrap();
        let fixed = QueryService::new(
            p.clone(),
            ServiceConfig {
                threads: 1,
                engine: Engine::Lineage,
                parallelism: 4,
                ..ServiceConfig::default()
            },
        );
        let stealing = QueryService::new(
            p.clone(),
            ServiceConfig {
                threads: 2,
                engine: Engine::Lineage,
                parallelism: 4,
                scheduler: SchedulerKind::Stealing,
                ..ServiceConfig::default()
            },
        );
        let a = fixed.evaluate(QueryRequest::new(q.clone(), 0.01)).unwrap();
        let b = stealing.evaluate(QueryRequest::new(q, 0.01)).unwrap();
        assert_eq!(a.approx.estimate.to_bits(), b.approx.estimate.to_bits());
        assert_eq!(a.approx, b.approx);
        assert_eq!(a.trace, b.trace);
        // the component split still happened — as pool subtasks, not
        // freshly forked scoped threads
        assert_eq!(stealing.metrics().parallel_tasks.load(Ordering::Relaxed), 2);
        let per_worker = stealing
            .metrics()
            .worker_tasks
            .get()
            .expect("stealing pool sizes per-worker counters");
        let subtasks: u64 = per_worker.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(subtasks, 2, "both component subtasks ran on pool workers");
        let dump = stealing.metrics_dump();
        assert!(dump.contains("serve_steals_total"));
        assert!(dump.contains("serve_injector_depth 0"));
        assert!(dump.contains("serve_worker_tasks_total{worker=\"0\"}"));
        // a fixed-scheduler service never initializes the stealing tier
        assert!(fixed.metrics().worker_tasks.get().is_none());
    }

    #[test]
    fn alpha_equivalent_queries_share_a_plan_cache_entry() {
        let svc = service(1);
        let p = pdb();
        let q1 = parse("exists x. R(x)", p.schema()).unwrap();
        svc.evaluate(QueryRequest::new(q1, 0.05)).unwrap();
        assert_eq!(svc.plan_cache_len(), 1);
        // an α-equivalent spelling at a DIFFERENT ε misses the result
        // cache (keys include ε) but hits the shared plan entry
        let q2 = parse("exists y. R(y)", p.schema()).unwrap();
        let resp = svc.evaluate(QueryRequest::new(q2, 0.01)).unwrap();
        assert!(!resp.cached);
        assert_eq!(svc.plan_cache_len(), 1);
        assert_eq!(svc.metrics().plan_cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(svc.metrics().plan_cache_hits.load(Ordering::Relaxed), 1);
        // a genuinely different query compiles its own plan
        let q3 = parse("forall x. R(x)", p.schema()).unwrap();
        svc.evaluate(QueryRequest::new(q3, 0.05)).unwrap();
        assert_eq!(svc.plan_cache_len(), 2);
        assert_eq!(svc.metrics().plan_cache_misses.load(Ordering::Relaxed), 2);
        let dump = svc.metrics_dump();
        assert!(dump.contains("serve_plan_cache_hits_total 1"));
        assert!(dump.contains("serve_plan_cache_misses_total 2"));
        assert!(dump.contains("serve_plan_cache_evictions_total 0"));
    }

    #[test]
    fn repeat_requests_reuse_the_prepared_catalog() {
        let svc = service(1);
        let p = pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        svc.evaluate(QueryRequest::new(q.clone(), 0.05)).unwrap();
        let grounded = svc.materialized_len();
        assert!(grounded > 0);
        // a tighter ε only EXTENDS the shared catalog; a repeat at the
        // loose ε re-slices it without touching the enumeration again
        svc.evaluate(QueryRequest::new(q.clone(), 0.01)).unwrap();
        let extended = svc.materialized_len();
        assert!(extended > grounded);
        let q2 = parse("exists y. R(y)", p.schema()).unwrap();
        svc.evaluate(QueryRequest::new(q2, 0.02)).unwrap();
        assert_eq!(svc.materialized_len(), extended);
    }

    #[test]
    fn warm_grounds_before_the_first_request() {
        let svc = service(1);
        let n = svc.warm(0.01).unwrap();
        assert!(n > 0);
        assert_eq!(svc.materialized_len(), n);
        let p = pdb();
        // answers still agree bit-for-bit with the cold sequential path
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let expected = approx_prob_boolean(&p, &q, 0.05, Engine::Auto).unwrap();
        let got = svc.evaluate(QueryRequest::new(q, 0.05)).unwrap();
        assert_eq!(got.approx.estimate.to_bits(), expected.estimate.to_bits());
        assert_eq!(svc.materialized_len(), n, "warm prefix already covers ε");
    }

    #[test]
    fn different_eps_do_not_share_cache_entries() {
        let svc = service(1);
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        svc.evaluate(QueryRequest::new(q.clone(), 0.05)).unwrap();
        let other = svc.evaluate(QueryRequest::new(q, 0.01)).unwrap();
        assert!(!other.cached);
        assert_eq!(svc.cache_len(), 2);
    }

    #[test]
    fn degraded_request_reports_widened_eps_and_still_certifies() {
        let svc = service(1);
        let p = pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let resp = svc
            .evaluate(QueryRequest::new(q, 0.001).with_budget(CostBudget::max_n(5)))
            .unwrap();
        assert!(resp.degraded);
        assert_eq!(resp.requested_eps, 0.001);
        assert!(resp.approx.eps > 0.001);
        assert!(resp.approx.n <= 5);
        // the widened interval still encloses the truth (~0.7112)
        assert!(resp.interval().contains(0.7112));
        assert_eq!(svc.metrics().degraded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reject_policy_surfaces_structured_error() {
        let svc = QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                policy: DegradePolicy::Reject,
                ..ServiceConfig::default()
            },
        );
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.evaluate(QueryRequest::new(q, 0.001).with_budget(CostBudget::max_n(1))) {
            Err(ServeError::Rejected {
                requested_eps,
                max_n,
                needed_n,
            }) => {
                assert_eq!(requested_eps, 0.001);
                assert_eq!(max_n, 1);
                assert!(needed_n > 1);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(svc.metrics().rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn invalid_eps_is_a_query_error_not_a_panic() {
        let svc = service(1);
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.evaluate(QueryRequest::new(q, 0.5)) {
            Err(ServeError::Query(_)) => {}
            other => panic!("expected query error, got {other:?}"),
        }
        assert_eq!(svc.metrics().errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batch_preserves_input_order() {
        let svc = service(2);
        let p = pdb();
        let queries = ["R(1)", "R(2)", "R(1) /\\ R(2)", "exists x. R(x)"];
        let reqs = queries
            .iter()
            .map(|s| QueryRequest::new(parse(s, p.schema()).unwrap(), 0.05))
            .collect();
        let tickets = svc.submit_batch(reqs);
        let answers: Vec<f64> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().approx.estimate)
            .collect();
        for (s, got) in queries.iter().zip(&answers) {
            let expected =
                approx_prob_boolean(&p, &parse(s, p.schema()).unwrap(), 0.05, Engine::Auto)
                    .unwrap();
            assert_eq!(got.to_bits(), expected.estimate.to_bits(), "query {s}");
        }
        assert_eq!(svc.metrics().submitted.load(Ordering::Relaxed), 4);
        assert_eq!(svc.metrics().completed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deadline_budget_flows_through_the_throughput_estimate() {
        let svc = QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                // absurdly slow prior: 1 fact/sec ⇒ a 3 s deadline caps n at 3
                prior_facts_per_sec: 1.0,
                ..ServiceConfig::default()
            },
        );
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let resp = svc
            .evaluate(
                QueryRequest::new(q, 0.001)
                    .with_budget(CostBudget::deadline(Duration::from_secs(3))),
            )
            .unwrap();
        assert!(resp.degraded);
        assert!(resp.approx.n <= 3);
    }

    #[test]
    fn shutdown_resolves_pending_tickets_with_shutdown_error() {
        let mut svc = service(1);
        let p = pdb();
        // occupy the single worker so the rest of the batch stays queued
        let mut tickets = Vec::new();
        for _ in 0..30 {
            let q = parse("exists x. R(x)", p.schema()).unwrap();
            tickets.push(svc.submit(QueryRequest::new(q, 0.000_001)));
        }
        svc.shutdown_now();
        let mut done = 0;
        let mut shut = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) => done += 1,
                Err(ServeError::Shutdown) => shut += 1,
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert_eq!(done + shut, 30);
        // submission after shutdown resolves immediately as Shutdown
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.submit(QueryRequest::new(q, 0.1)).wait() {
            Err(ServeError::Shutdown) => {}
            other => panic!("expected shutdown, got {other:?}"),
        }
    }

    #[test]
    fn drain_finishes_in_flight_work_but_refuses_new_submissions() {
        let svc = service(1);
        let p = pdb();
        // fill the single worker plus the queue with real work
        let mut accepted = Vec::new();
        for i in 0..12 {
            let q = parse("exists x. R(x)", p.schema()).unwrap();
            accepted.push(svc.submit(QueryRequest::new(q, 0.01 / (i + 1) as f64)));
        }
        assert!(!svc.is_draining());
        svc.begin_drain();
        assert!(svc.is_draining());
        // a post-drain submission resolves Shutdown without queueing
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.submit(QueryRequest::new(q.clone(), 0.05)).wait() {
            Err(ServeError::Shutdown) => {}
            other => panic!("expected Shutdown, got {other:?}"),
        }
        // batch submissions are refused too, one ticket per request
        let batch = svc.submit_batch(vec![
            QueryRequest::new(q.clone(), 0.05),
            QueryRequest::new(q, 0.04),
        ]);
        assert_eq!(batch.len(), 2);
        for t in batch {
            assert!(matches!(t.wait(), Err(ServeError::Shutdown)));
        }
        // nothing after begin_drain was counted as submitted
        assert_eq!(svc.metrics().submitted.load(Ordering::Relaxed), 12);
        // every request accepted before the drain still completes
        for t in accepted {
            t.wait().unwrap();
        }
        assert_eq!(svc.metrics().completed.load(Ordering::Relaxed), 12);
        svc.drain(); // begin_drain is idempotent; join drains the queue
    }

    #[test]
    fn drain_preserves_partial_certificates_of_in_flight_work() {
        // a deadline-bounded slow request accepted before the drain must
        // still resolve with its partial certificate, not Shutdown
        let svc = QueryService::new(
            zeta_pdb(),
            ServiceConfig {
                threads: 1,
                prior_facts_per_sec: 1e12,
                ..ServiceConfig::default()
            },
        );
        let p = zeta_pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let ticket = svc.submit(
            QueryRequest::new(q, 0.004).with_budget(CostBudget::deadline(Duration::from_millis(5))),
        );
        svc.begin_drain();
        match ticket.wait() {
            Err(ServeError::DeadlineExceeded { partial, .. }) => {
                if let Some(partial) = partial {
                    assert!(partial.eps < 0.5);
                }
            }
            Ok(_) => {} // beat the deadline — also a full, sound answer
            other => panic!("expected DeadlineExceeded or success, got {other:?}"),
        }
        svc.drain();
    }

    #[test]
    fn responses_carry_the_evaluation_trace_even_when_cached() {
        let svc = QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                engine: Engine::Lineage,
                ..ServiceConfig::default()
            },
        );
        let p = pdb();
        let q = parse("exists x, y. R(x) /\\ R(y) /\\ x != y", p.schema()).unwrap();
        let fresh = svc.evaluate(QueryRequest::new(q.clone(), 0.05)).unwrap();
        assert!(!fresh.cached);
        let arena = fresh.trace.arena.expect("lineage engine reports arena");
        assert!(arena.nodes > 0);
        // the cached answer replays the original evaluation's trace
        let hit = svc.evaluate(QueryRequest::new(q, 0.05)).unwrap();
        assert!(hit.cached);
        assert_eq!(hit.trace, fresh.trace);
    }

    #[test]
    fn explicit_cancel_resolves_with_cancelled_error() {
        // one worker, blocked by a slow zeta evaluation; the next ticket
        // is cancelled while still queued, so its evaluation stops at
        // the very first checkpoint
        let svc = QueryService::new(
            zeta_pdb(),
            ServiceConfig {
                threads: 1,
                queue_cap: Some(8),
                ..ServiceConfig::default()
            },
        );
        let p = zeta_pdb();
        let slow = parse("exists x. R(x)", p.schema()).unwrap();
        let blocker = svc.submit(QueryRequest::new(slow.clone(), 0.004));
        let victim = svc.submit(QueryRequest::new(slow, 0.0041));
        victim.cancel();
        match victim.wait() {
            Err(ServeError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        blocker.wait().unwrap();
        assert_eq!(svc.metrics().cancelled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn runtime_deadline_stops_mid_loop_with_sound_partial() {
        let svc = QueryService::new(
            zeta_pdb(),
            ServiceConfig {
                threads: 1,
                // fast prior so admission does NOT clamp n — the runtime
                // deadline must do the stopping
                prior_facts_per_sec: 1e12,
                ..ServiceConfig::default()
            },
        );
        let p = zeta_pdb();
        // ground truth for ∃x R(x): 1 − ∏(1 − p_i), by very long product
        let mut acc = 1.0;
        for i in 0..3_000_000 {
            acc *= 1.0 - p.supply().prob(i);
        }
        let truth = 1.0 - acc;
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let req =
            QueryRequest::new(q, 0.004).with_budget(CostBudget::deadline(Duration::from_millis(1)));
        match svc.submit(req).wait() {
            Err(ServeError::DeadlineExceeded { partial, .. }) => {
                if let Some(partial) = partial {
                    // the partial interval must still enclose the truth
                    assert!(partial.eps < 0.5);
                    assert!(partial.interval().contains(truth));
                }
            }
            Ok(resp) => {
                // a 1 ms deadline *can* be beaten on a fast machine; the
                // answer must then be a fully certified one
                assert!(resp.interval().contains(truth));
            }
            other => panic!("expected DeadlineExceeded or success, got {other:?}"),
        }
    }

    #[test]
    fn injected_panic_is_contained_and_reported() {
        let faults = Arc::new(FaultInjector::new(11));
        faults.inject("engine", FaultKind::Panic, Trigger::Times(1));
        let svc = QueryService::with_faults(
            pdb(),
            ServiceConfig {
                threads: 1,
                retry: RetryPolicy::none(),
                ..ServiceConfig::default()
            },
            Arc::clone(&faults),
        );
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.evaluate(QueryRequest::new(q.clone(), 0.05)) {
            Err(ServeError::EnginePanic { payload }) => {
                assert!(payload.contains("injected fault"), "{payload}");
            }
            other => panic!("expected EnginePanic, got {other:?}"),
        }
        assert_eq!(svc.metrics().panics.load(Ordering::Relaxed), 1);
        // the worker survives and the next request succeeds
        let resp = svc.evaluate(QueryRequest::new(q, 0.05)).unwrap();
        assert!(!resp.cached);
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let faults = Arc::new(FaultInjector::new(12));
        faults.inject("engine", FaultKind::Error, Trigger::Times(2));
        let svc = QueryService::with_faults(
            pdb(),
            ServiceConfig {
                threads: 1,
                retry: RetryPolicy {
                    max_attempts: 3,
                    base: Duration::ZERO,
                    cap: Duration::ZERO,
                },
                ..ServiceConfig::default()
            },
            faults,
        );
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let resp = svc.evaluate(QueryRequest::new(q, 0.05)).unwrap();
        assert!(!resp.cached);
        assert_eq!(svc.metrics().retries.load(Ordering::Relaxed), 2);
        assert_eq!(svc.metrics().completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn breaker_opens_after_persistent_failures_and_recovers() {
        let faults = Arc::new(FaultInjector::new(13));
        // every evaluation fails until the injector is cleared
        faults.inject("engine", FaultKind::Error, Trigger::Always);
        let svc = QueryService::with_faults(
            pdb(),
            ServiceConfig {
                threads: 1,
                retry: RetryPolicy::none(),
                breaker: BreakerConfig {
                    threshold: 3,
                    cooldown: Duration::ZERO,
                },
                ..ServiceConfig::default()
            },
            Arc::clone(&faults),
        );
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        for _ in 0..3 {
            match svc.evaluate(QueryRequest::new(q.clone(), 0.05)) {
                Err(ServeError::Transient { .. }) => {}
                other => panic!("expected Transient, got {other:?}"),
            }
        }
        // breaker open with zero cooldown ⇒ every request is a probe;
        // heal the engine and the next request closes the breaker
        faults.clear("engine");
        let resp = svc.evaluate(QueryRequest::new(q, 0.05)).unwrap();
        assert!(!resp.cached);
    }

    #[test]
    fn open_breaker_fails_fast_but_serves_cache_hits() {
        let faults = Arc::new(FaultInjector::new(14));
        let svc = QueryService::with_faults(
            pdb(),
            ServiceConfig {
                threads: 1,
                retry: RetryPolicy::none(),
                breaker: BreakerConfig {
                    threshold: 2,
                    cooldown: Duration::from_secs(3600),
                },
                ..ServiceConfig::default()
            },
            Arc::clone(&faults),
        );
        let p = pdb();
        let cached_q = parse("R(1)", p.schema()).unwrap();
        // warm the cache while healthy
        svc.evaluate(QueryRequest::new(cached_q.clone(), 0.05))
            .unwrap();
        // now break the engine and trip the breaker
        faults.inject("engine", FaultKind::Error, Trigger::Always);
        let fresh_q = parse("R(2)", p.schema()).unwrap();
        for _ in 0..2 {
            svc.evaluate(QueryRequest::new(fresh_q.clone(), 0.05))
                .unwrap_err();
        }
        match svc.evaluate(QueryRequest::new(fresh_q, 0.05)) {
            Err(ServeError::CircuitOpen {
                consecutive_failures,
            }) => assert!(consecutive_failures >= 2),
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert_eq!(svc.metrics().breaker_fastfail.load(Ordering::Relaxed), 1);
        // cache hits keep serving while the breaker is open
        let hit = svc.evaluate(QueryRequest::new(cached_q, 0.05)).unwrap();
        assert!(hit.cached);
    }

    #[test]
    fn reject_newest_overflow_resolves_tickets_as_overloaded() {
        let svc = QueryService::new(
            zeta_pdb(),
            ServiceConfig {
                threads: 1,
                queue_cap: Some(1),
                overflow: OverflowPolicy::RejectNewest,
                ..ServiceConfig::default()
            },
        );
        let p = zeta_pdb();
        let slow = parse("exists x. R(x)", p.schema()).unwrap();
        // the blocker occupies the worker; give it a moment to start
        let blocker = svc.submit(QueryRequest::new(slow.clone(), 0.004));
        let deadline = Instant::now() + TICKET_GRACE;
        while svc.queue_depth() > 0 {
            assert!(Instant::now() < deadline, "blocker never started");
            std::thread::yield_now();
        }
        // fills the single queue slot
        let queued = svc.submit(QueryRequest::new(slow.clone(), 0.0041));
        // overflow: must resolve as Overloaded, not hang
        let shed = svc.submit(QueryRequest::new(slow, 0.0042));
        match shed.wait() {
            Err(ServeError::Overloaded { queue_cap }) => assert_eq!(queue_cap, 1),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(svc.metrics().shed.load(Ordering::Relaxed), 1);
        blocker.wait().unwrap();
        queued.wait().unwrap();
    }

    #[test]
    fn retry_policy_backoff_is_bounded() {
        let r = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
        };
        assert_eq!(r.backoff(0), Duration::from_millis(1));
        assert_eq!(r.backoff(1), Duration::from_millis(2));
        assert_eq!(r.backoff(3), Duration::from_millis(8));
        assert_eq!(r.backoff(31), Duration::from_millis(8)); // saturates
        assert_eq!(r.backoff(200), Duration::from_millis(8)); // shl overflow
    }
}

//! The query service: pool → admission → cache → engine.
//!
//! [`QueryService`] owns a [`ThreadPool`], a [`ShardedLruCache`] of
//! finished answers, and a [`Metrics`] registry, and evaluates
//! [`QueryRequest`]s against one countable t.i. PDB. Every request flows
//! through the same stages on a worker thread:
//!
//! 1. **Admission** ([`crate::admission`]) — plan `n(ε)` and apply the
//!    request's budget, possibly widening ε or rejecting;
//! 2. **Cache** — look up the (PDB, normalized query, *effective* ε,
//!    engine) fingerprint. Keying by the effective ε means a degraded
//!    answer is cached under the tolerance it actually satisfies and can
//!    never be returned for a stricter request;
//! 3. **Engine** — on a miss, run the Proposition 6.1 evaluation
//!    ([`approx_prob_boolean`]), record throughput, insert the answer.
//!
//! Results come back through a [`Ticket`]; if the service is shut down
//! before a queued request runs, its job is dropped and the ticket
//! resolves to [`ServeError::Shutdown`] instead of blocking forever.

use crate::admission::{self, CostBudget, DegradePolicy, ThroughputEstimate};
use crate::cache::ShardedLruCache;
use crate::fingerprint::{countable_pdb_fingerprint, CacheKey};
use crate::metrics::Metrics;
use crate::pool::ThreadPool;
use crate::ServeError;
use infpdb_finite::engine::Engine;
use infpdb_logic::ast::Formula;
use infpdb_query::approx::{approx_prob_boolean, Approximation};
use infpdb_query::budget::BudgetReport;
use infpdb_ti::construction::CountableTiPdb;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Configuration for a [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the pool (at least 1).
    pub threads: usize,
    /// Total result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Finite engine used for every evaluation.
    pub engine: Engine,
    /// What to do with requests whose plan exceeds their budget.
    pub policy: DegradePolicy,
    /// Prior throughput estimate (facts/second) used to convert
    /// deadlines to `n` caps before any evaluation has been observed.
    pub prior_facts_per_sec: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 4,
            cache_capacity: 1024,
            cache_shards: 8,
            engine: Engine::Auto,
            policy: DegradePolicy::WidenEps,
            prior_facts_per_sec: 100_000.0,
        }
    }
}

/// One query to evaluate.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Boolean FO query over the service's schema.
    pub query: Formula,
    /// Requested additive tolerance, `0 < ε < 1/2`.
    pub eps: f64,
    /// Cost constraints (unlimited by default).
    pub budget: CostBudget,
}

impl QueryRequest {
    /// An unconstrained request.
    pub fn new(query: Formula, eps: f64) -> Self {
        QueryRequest {
            query,
            eps,
            budget: CostBudget::unlimited(),
        }
    }

    /// Attaches a budget.
    pub fn with_budget(mut self, budget: CostBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// A finished evaluation with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResponse {
    /// The certified approximation (at the *effective* ε).
    pub approx: Approximation,
    /// The plan the evaluation ran under.
    pub report: BudgetReport,
    /// The tolerance the client asked for.
    pub requested_eps: f64,
    /// Whether ε was widened to fit the request's budget.
    pub degraded: bool,
    /// Whether the answer came from the result cache.
    pub cached: bool,
}

impl QueryResponse {
    /// The guaranteed enclosure of the true probability.
    pub fn interval(&self) -> infpdb_math::ProbInterval {
        self.approx.interval()
    }
}

/// A handle to one in-flight request.
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the request finishes. If the service shut down
    /// before the request ran, returns [`ServeError::Shutdown`].
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<QueryResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Shutdown)),
        }
    }
}

struct Inner {
    pdb: CountableTiPdb,
    pdb_fingerprint: u64,
    engine: Engine,
    policy: DegradePolicy,
    cache: ShardedLruCache<(Approximation, BudgetReport)>,
    metrics: Arc<Metrics>,
    throughput: ThroughputEstimate,
}

/// A concurrent query-evaluation service over one countable t.i. PDB.
pub struct QueryService {
    inner: Arc<Inner>,
    pool: ThreadPool,
}

impl QueryService {
    /// Builds the service: spawns the pool, fingerprints the PDB once.
    pub fn new(pdb: CountableTiPdb, config: ServiceConfig) -> Self {
        let metrics = Arc::new(Metrics::new());
        let inner = Arc::new(Inner {
            pdb_fingerprint: countable_pdb_fingerprint(&pdb),
            pdb,
            engine: config.engine,
            policy: config.policy,
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            metrics: Arc::clone(&metrics),
            throughput: ThroughputEstimate::new(config.prior_facts_per_sec),
        });
        let pool = ThreadPool::new(config.threads, metrics);
        QueryService { inner, pool }
    }

    /// Enqueues one request.
    pub fn submit(&self, request: QueryRequest) -> Ticket {
        self.inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let (job, ticket) = self.make_job(request);
        self.pool.submit(job);
        ticket
    }

    /// Enqueues a whole batch under one queue-lock acquisition; tickets
    /// come back in input order.
    pub fn submit_batch(&self, requests: Vec<QueryRequest>) -> Vec<Ticket> {
        self.inner
            .metrics
            .submitted
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let mut jobs: Vec<Box<dyn FnOnce() + Send + 'static>> = Vec::with_capacity(requests.len());
        let mut tickets = Vec::with_capacity(requests.len());
        for request in requests {
            let (job, ticket) = self.make_job(request);
            jobs.push(Box::new(job));
            tickets.push(ticket);
        }
        self.pool.submit_batch(jobs);
        tickets
    }

    /// Submits and waits — the synchronous convenience path.
    pub fn evaluate(&self, request: QueryRequest) -> Result<QueryResponse, ServeError> {
        self.submit(request).wait()
    }

    fn make_job(&self, request: QueryRequest) -> (impl FnOnce() + Send + 'static, Ticket) {
        let inner = Arc::clone(&self.inner);
        let submitted = Instant::now();
        let (tx, rx) = mpsc::channel();
        let job = move || {
            inner.metrics.wait.record(submitted.elapsed());
            let result = handle(&inner, &request);
            match &result {
                Ok(_) => inner.metrics.completed.fetch_add(1, Ordering::Relaxed),
                Err(ServeError::Rejected { .. }) => {
                    inner.metrics.rejected.fetch_add(1, Ordering::Relaxed)
                }
                Err(_) => inner.metrics.errors.fetch_add(1, Ordering::Relaxed),
            };
            // a dropped ticket is fine — fire-and-forget submission
            tx.send(result).ok();
        };
        (job, Ticket { rx })
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Immediate shutdown: queued requests are dropped (their tickets
    /// resolve to [`ServeError::Shutdown`]); in-flight evaluations finish.
    pub fn shutdown_now(&mut self) {
        self.pool.shutdown_now();
    }

    /// Graceful shutdown: drains the queue, then joins the workers.
    pub fn join(self) {
        self.pool.join();
    }
}

fn handle(inner: &Inner, request: &QueryRequest) -> Result<QueryResponse, ServeError> {
    let cap = request.budget.effective_max_n(inner.throughput.get());
    let admitted = admission::admit(&inner.pdb, request.eps, cap, inner.policy)?;
    if admitted.degraded {
        inner.metrics.degraded.fetch_add(1, Ordering::Relaxed);
    }
    // keyed by the EFFECTIVE ε: a degraded answer is cached under the
    // tolerance it actually certifies
    let key = CacheKey::new(
        inner.pdb_fingerprint,
        inner.pdb.schema(),
        &request.query,
        admitted.eps,
        inner.engine,
    )
    .digest();
    if let Some((approx, report)) = inner.cache.get(key) {
        inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(QueryResponse {
            approx,
            report,
            requested_eps: request.eps,
            degraded: admitted.degraded,
            cached: true,
        });
    }
    inner.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let approx = approx_prob_boolean(&inner.pdb, &request.query, admitted.eps, inner.engine)
        .map_err(ServeError::Query)?;
    let elapsed = start.elapsed();
    inner.metrics.run.record(elapsed);
    inner.throughput.observe(approx.n, elapsed);
    inner.cache.insert(key, (approx, admitted.report));
    Ok(QueryResponse {
        approx,
        report: admitted.report,
        requested_eps: request.eps,
        degraded: admitted.degraded,
        cached: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;
    use std::time::Duration;

    fn pdb() -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema,
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    fn service(threads: usize) -> QueryService {
        QueryService::new(
            pdb(),
            ServiceConfig {
                threads,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn agrees_with_sequential_evaluation_bit_for_bit() {
        let svc = service(2);
        let p = pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let expected = approx_prob_boolean(&p, &q, 0.01, Engine::Auto).unwrap();
        let got = svc.evaluate(QueryRequest::new(q, 0.01)).unwrap();
        assert_eq!(got.approx.estimate.to_bits(), expected.estimate.to_bits());
        assert_eq!(got.approx.n, expected.n);
        assert!(!got.cached);
        assert!(!got.degraded);
        assert_eq!(got.requested_eps, 0.01);
    }

    #[test]
    fn second_identical_request_is_a_cache_hit() {
        let svc = service(1);
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let first = svc.evaluate(QueryRequest::new(q.clone(), 0.05)).unwrap();
        // α-equivalent spelling through a double negation still hits
        let q2 = parse("!(!R(1))", p.schema()).unwrap();
        let second = svc.evaluate(QueryRequest::new(q2, 0.05)).unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.approx, second.approx);
        assert_eq!(svc.metrics().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(svc.metrics().cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(svc.cache_len(), 1);
    }

    #[test]
    fn different_eps_do_not_share_cache_entries() {
        let svc = service(1);
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        svc.evaluate(QueryRequest::new(q.clone(), 0.05)).unwrap();
        let other = svc.evaluate(QueryRequest::new(q, 0.01)).unwrap();
        assert!(!other.cached);
        assert_eq!(svc.cache_len(), 2);
    }

    #[test]
    fn degraded_request_reports_widened_eps_and_still_certifies() {
        let svc = service(1);
        let p = pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let resp = svc
            .evaluate(QueryRequest::new(q, 0.001).with_budget(CostBudget::max_n(5)))
            .unwrap();
        assert!(resp.degraded);
        assert_eq!(resp.requested_eps, 0.001);
        assert!(resp.approx.eps > 0.001);
        assert!(resp.approx.n <= 5);
        // the widened interval still encloses the truth (~0.7112)
        assert!(resp.interval().contains(0.7112));
        assert_eq!(svc.metrics().degraded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reject_policy_surfaces_structured_error() {
        let svc = QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                policy: DegradePolicy::Reject,
                ..ServiceConfig::default()
            },
        );
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.evaluate(QueryRequest::new(q, 0.001).with_budget(CostBudget::max_n(1))) {
            Err(ServeError::Rejected {
                requested_eps,
                max_n,
                needed_n,
            }) => {
                assert_eq!(requested_eps, 0.001);
                assert_eq!(max_n, 1);
                assert!(needed_n > 1);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(svc.metrics().rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn invalid_eps_is_a_query_error_not_a_panic() {
        let svc = service(1);
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.evaluate(QueryRequest::new(q, 0.5)) {
            Err(ServeError::Query(_)) => {}
            other => panic!("expected query error, got {other:?}"),
        }
        assert_eq!(svc.metrics().errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batch_preserves_input_order() {
        let svc = service(2);
        let p = pdb();
        let queries = ["R(1)", "R(2)", "R(1) /\\ R(2)", "exists x. R(x)"];
        let reqs = queries
            .iter()
            .map(|s| QueryRequest::new(parse(s, p.schema()).unwrap(), 0.05))
            .collect();
        let tickets = svc.submit_batch(reqs);
        let answers: Vec<f64> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().approx.estimate)
            .collect();
        for (s, got) in queries.iter().zip(&answers) {
            let expected =
                approx_prob_boolean(&p, &parse(s, p.schema()).unwrap(), 0.05, Engine::Auto)
                    .unwrap();
            assert_eq!(got.to_bits(), expected.estimate.to_bits(), "query {s}");
        }
        assert_eq!(svc.metrics().submitted.load(Ordering::Relaxed), 4);
        assert_eq!(svc.metrics().completed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deadline_budget_flows_through_the_throughput_estimate() {
        let svc = QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                // absurdly slow prior: 1 fact/sec ⇒ a 3 s deadline caps n at 3
                prior_facts_per_sec: 1.0,
                ..ServiceConfig::default()
            },
        );
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let resp = svc
            .evaluate(
                QueryRequest::new(q, 0.001)
                    .with_budget(CostBudget::deadline(Duration::from_secs(3))),
            )
            .unwrap();
        assert!(resp.degraded);
        assert!(resp.approx.n <= 3);
    }

    #[test]
    fn shutdown_resolves_pending_tickets_with_shutdown_error() {
        let mut svc = service(1);
        let p = pdb();
        // occupy the single worker so the rest of the batch stays queued
        let mut tickets = Vec::new();
        for _ in 0..30 {
            let q = parse("exists x. R(x)", p.schema()).unwrap();
            tickets.push(svc.submit(QueryRequest::new(q, 0.000_001)));
        }
        svc.shutdown_now();
        let mut done = 0;
        let mut shut = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) => done += 1,
                Err(ServeError::Shutdown) => shut += 1,
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert_eq!(done + shut, 30);
        // submission after shutdown resolves immediately as Shutdown
        let q = parse("R(1)", p.schema()).unwrap();
        match svc.submit(QueryRequest::new(q, 0.1)).wait() {
            Err(ServeError::Shutdown) => {}
            other => panic!("expected shutdown, got {other:?}"),
        }
    }
}

#![warn(missing_docs)]
//! Concurrent query-evaluation service for countable t.i. PDBs.
//!
//! Proposition 6.1 (Grohe & Lindner, PODS 2019) gives a *cost-predictable*
//! evaluation algorithm: the whole expense of an ε-approximation is fixed
//! by the truncation length `n(ε)` before the finite engine runs. This
//! crate turns that property into a serving layer:
//!
//! ```text
//!   requests ──▶ [admission]          plan n(ε); widen ε or reject if
//!                    │                the budget cannot afford n(ε)
//!                    ▼
//!              [result cache]         sharded LRU keyed by
//!                    │                (PDB, query, effective ε, engine)
//!                    ▼ miss
//!              [thread pool]──▶ [finite engine on Ω_n]   (Prop. 6.1)
//! ```
//!
//! * [`pool`] — fixed-size `std`-only worker pool (mutex + condvar queue)
//!   with a *bounded* submission queue, configurable overflow policy,
//!   batch submission, and two shutdown modes;
//! * [`cache`] — sharded LRU over 64-bit request fingerprints;
//! * [`fingerprint`] — stable content hashes: PDBs by enumeration prefix
//!   and tail bound, queries modulo rectification/NNF/α-renaming;
//! * [`admission`] — budgets (max `n`, deadlines) and ε-degradation,
//!   sound because the widened evaluation carries its own Prop. 6.1
//!   certificate;
//! * [`breaker`] — a per-engine circuit breaker that fails fast after a
//!   run of consecutive evaluation failures;
//! * [`faults`] — a deterministic, seeded fault-injection harness for
//!   chaos testing (panics, latency, spurious errors at named sites);
//! * [`metrics`] — lock-free counters and latency histograms with a
//!   plain-text dump;
//! * [`service`] — the [`QueryService`] wiring it all together.
//!
//! Everything is `std`-only: no external dependencies.
//!
//! # Failure model
//!
//! Every request resolves its [`Ticket`] with exactly one
//! `Result` — no fault may leave a client blocked forever — and no fault
//! may return an answer whose ε-certificate is violated. The
//! [`ServeError`] variants, and the stage that raises each:
//!
//! | variant | raised by | meaning |
//! |---|---|---|
//! | [`Rejected`](ServeError::Rejected) | admission | the plan needs a longer truncation than the budget affords and the policy left no feasible ε |
//! | [`Query`](ServeError::Query) | engine | the evaluation itself failed (bad tolerance, free variables, divergence, …) — deterministic, not retried |
//! | [`Overloaded`](ServeError::Overloaded) | submission | the bounded queue was full and the overflow policy shed this request (or, under `ShedOldest`, an older queued one) |
//! | [`Cancelled`](ServeError::Cancelled) | truncation loop | [`Ticket::cancel`](service::Ticket::cancel) fired a checkpoint mid-evaluation |
//! | [`DeadlineExceeded`](ServeError::DeadlineExceeded) | truncation loop / ticket wait | the request's deadline passed — at a checkpoint mid-loop, or while the ticket was still waiting |
//! | [`EnginePanic`](ServeError::EnginePanic) | worker | the evaluation panicked; the panic was caught, the worker survives, and the payload is preserved |
//! | [`Transient`](ServeError::Transient) | anywhere (injected) | a spurious, retryable failure — retried with bounded exponential backoff before surfacing |
//! | [`CircuitOpen`](ServeError::CircuitOpen) | cache-miss gate | the per-engine circuit breaker is open after too many consecutive failures; the request fails fast without evaluating (cache hits still serve) |
//! | [`Shutdown`](ServeError::Shutdown) | pool | the service shut down before this request ran |
//!
//! **Soundness of cancelled partial results.** A cancelled evaluation may
//! carry a partial [`Approximation`]:
//! if the truncation loop stopped after `m` facts, the `m`-fact prefix is
//! itself a valid Proposition 6.1 truncation `Ω_m` at the wider tolerance
//! `ε_m = e^{α_m} − 1`, `α_m = (3/2)·T_m`, where `T_m` is the series' own
//! certified tail bound at `m`. The proof of Prop. 6.1 only uses
//! `e^{α} ≤ 1 + ε` and `e^{−α} ≥ 1 − ε`; since `e^α − 1 ≥ 1 − e^{−α}`,
//! the single value `ε_m` covers both directions. The partial is omitted
//! (`None`) whenever the prefix cannot certify anything non-vacuous
//! (`T_m > 1/2`, which claim (∗) needs, or `ε_m ≥ 1/2`). Partial results
//! are **never cached** — the cache only holds answers at their admitted
//! effective ε.
//!
//! Worker panics never wedge the pool: panics are caught per job, and
//! every lock acquisition recovers from poisoning (`into_inner`) instead
//! of propagating it, so one contained panic cannot cascade into a
//! denial of service.

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod faults;
pub mod fingerprint;
pub mod metrics;
pub mod pool;
mod recover;
pub mod service;

pub use admission::{CostBudget, DegradePolicy};
pub use breaker::{BreakerConfig, CircuitBreaker};
pub use faults::{FaultInjector, FaultKind, Trigger};
pub use metrics::Metrics;
pub use pool::{OverflowPolicy, PoolConfig, SchedulerKind, StealingExecutor};
pub use service::{QueryRequest, QueryResponse, QueryService, RetryPolicy, ServiceConfig, Ticket};

use infpdb_query::approx::Approximation;
use infpdb_query::QueryError;

/// Errors of the serving layer. See the crate-level *Failure model* for
/// which stage raises each variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request: its plan needs a longer
    /// truncation than the budget affords, and the policy (or the PDB's
    /// convergence rate) left no feasible ε to widen to.
    Rejected {
        /// The tolerance the client asked for.
        requested_eps: f64,
        /// The truncation length the (possibly widened) plan required.
        needed_n: usize,
        /// The budget's cap on the truncation length.
        max_n: usize,
    },
    /// The evaluation itself failed (bad tolerance, free variables,
    /// divergence, …).
    Query(QueryError),
    /// The bounded submission queue was full and the overflow policy
    /// shed this request (reject-newest) or an older queued one
    /// (shed-oldest).
    Overloaded {
        /// The queue capacity that was exceeded.
        queue_cap: usize,
    },
    /// The request was cancelled via its ticket mid-evaluation.
    Cancelled {
        /// Facts materialized before the cancellation checkpoint fired.
        facts_processed: usize,
        /// A sound partial answer at the wider tolerance the processed
        /// prefix certifies, when one exists (see *Failure model*).
        partial: Option<Approximation>,
    },
    /// The request's deadline passed — at a truncation-loop checkpoint,
    /// or while its ticket was still waiting for a worker.
    DeadlineExceeded {
        /// Facts materialized before the deadline checkpoint fired
        /// (0 when the deadline expired before evaluation started).
        facts_processed: usize,
        /// A sound partial answer, when one exists (see *Failure model*).
        partial: Option<Approximation>,
    },
    /// The evaluation panicked on a worker. The panic was caught, the
    /// worker survives, and the payload is preserved here.
    EnginePanic {
        /// The panic payload, stringified (`&str`/`String` payloads are
        /// preserved verbatim; anything else becomes a placeholder).
        payload: String,
    },
    /// A transient, retryable failure (in production: a resource blip;
    /// in chaos tests: injected by [`faults::FaultInjector`]). Retried
    /// with bounded exponential backoff before surfacing.
    Transient {
        /// The site that failed.
        site: String,
    },
    /// The per-engine circuit breaker is open: too many consecutive
    /// failures, so the request fails fast without evaluating.
    CircuitOpen {
        /// Consecutive failures observed when the breaker opened.
        consecutive_failures: u32,
    },
    /// The service shut down before this request ran.
    Shutdown,
}

impl ServeError {
    /// Whether retrying could plausibly succeed: transient blips and
    /// panics (often environmental) are retryable; deterministic
    /// failures (rejection, query errors), terminal states (shutdown,
    /// cancellation, deadline), and open breakers are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServeError::Transient { .. } | ServeError::EnginePanic { .. }
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected {
                requested_eps,
                needed_n,
                max_n,
            } => write!(
                f,
                "rejected: eps {requested_eps} needs n = {needed_n} facts, budget allows {max_n}"
            ),
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Overloaded { queue_cap } => {
                write!(f, "overloaded: submission queue full ({queue_cap} jobs)")
            }
            ServeError::Cancelled {
                facts_processed,
                partial,
            } => {
                write!(f, "cancelled after {facts_processed} facts")?;
                if let Some(p) = partial {
                    write!(f, " (partial: {} ± {})", p.estimate, p.eps)?;
                }
                Ok(())
            }
            ServeError::DeadlineExceeded {
                facts_processed,
                partial,
            } => {
                write!(f, "deadline exceeded after {facts_processed} facts")?;
                if let Some(p) = partial {
                    write!(f, " (partial: {} ± {})", p.estimate, p.eps)?;
                }
                Ok(())
            }
            ServeError::EnginePanic { payload } => {
                write!(f, "evaluation panicked: {payload}")
            }
            ServeError::Transient { site } => {
                write!(f, "transient failure at {site} (retries exhausted)")
            }
            ServeError::CircuitOpen {
                consecutive_failures,
            } => write!(
                f,
                "circuit breaker open after {consecutive_failures} consecutive failures"
            ),
            ServeError::Shutdown => write!(f, "service shut down before the request ran"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_actionable() {
        let e = ServeError::Rejected {
            requested_eps: 0.01,
            needed_n: 40,
            max_n: 5,
        };
        let s = e.to_string();
        assert!(s.contains("40") && s.contains('5') && s.contains("0.01"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let q: ServeError = QueryError::Math(infpdb_math::MathError::BadTolerance(0.7)).into();
        assert!(q.to_string().contains("0.7"));
        assert!(ServeError::Overloaded { queue_cap: 32 }
            .to_string()
            .contains("32"));
        let c = ServeError::Cancelled {
            facts_processed: 48,
            partial: Some(Approximation {
                estimate: 0.5,
                eps: 0.2,
                n: 48,
                tail_mass: 0.1,
            }),
        };
        assert!(c.to_string().contains("48") && c.to_string().contains("0.5"));
        assert!(ServeError::DeadlineExceeded {
            facts_processed: 3,
            partial: None
        }
        .to_string()
        .contains("deadline"));
        assert!(ServeError::EnginePanic {
            payload: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(ServeError::Transient {
            site: "engine".into()
        }
        .to_string()
        .contains("engine"));
        assert!(ServeError::CircuitOpen {
            consecutive_failures: 5
        }
        .to_string()
        .contains('5'));
    }

    #[test]
    fn transient_classification() {
        assert!(ServeError::Transient { site: "x".into() }.is_transient());
        assert!(ServeError::EnginePanic {
            payload: "p".into()
        }
        .is_transient());
        for e in [
            ServeError::Shutdown,
            ServeError::Overloaded { queue_cap: 1 },
            ServeError::CircuitOpen {
                consecutive_failures: 3,
            },
            ServeError::Cancelled {
                facts_processed: 0,
                partial: None,
            },
            ServeError::DeadlineExceeded {
                facts_processed: 0,
                partial: None,
            },
        ] {
            assert!(!e.is_transient(), "{e:?}");
        }
    }
}

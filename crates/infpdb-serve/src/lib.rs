#![warn(missing_docs)]
//! Concurrent query-evaluation service for countable t.i. PDBs.
//!
//! Proposition 6.1 (Grohe & Lindner, PODS 2019) gives a *cost-predictable*
//! evaluation algorithm: the whole expense of an ε-approximation is fixed
//! by the truncation length `n(ε)` before the finite engine runs. This
//! crate turns that property into a serving layer:
//!
//! ```text
//!   requests ──▶ [admission]          plan n(ε); widen ε or reject if
//!                    │                the budget cannot afford n(ε)
//!                    ▼
//!              [result cache]         sharded LRU keyed by
//!                    │                (PDB, query, effective ε, engine)
//!                    ▼ miss
//!              [thread pool]──▶ [finite engine on Ω_n]   (Prop. 6.1)
//! ```
//!
//! * [`pool`] — fixed-size `std`-only worker pool (mutex + condvar queue)
//!   with batch submission and two shutdown modes;
//! * [`cache`] — sharded LRU over 64-bit request fingerprints;
//! * [`fingerprint`] — stable content hashes: PDBs by enumeration prefix
//!   and tail bound, queries modulo rectification/NNF/α-renaming;
//! * [`admission`] — budgets (max `n`, deadlines) and ε-degradation,
//!   sound because the widened evaluation carries its own Prop. 6.1
//!   certificate;
//! * [`metrics`] — lock-free counters and latency histograms with a
//!   plain-text dump;
//! * [`service`] — the [`QueryService`] wiring it all together.
//!
//! Everything is `std`-only: no external dependencies.

pub mod admission;
pub mod cache;
pub mod fingerprint;
pub mod metrics;
pub mod pool;
pub mod service;

pub use admission::{CostBudget, DegradePolicy};
pub use metrics::Metrics;
pub use service::{QueryRequest, QueryResponse, QueryService, ServiceConfig, Ticket};

use infpdb_query::QueryError;

/// Errors of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request: its plan needs a longer
    /// truncation than the budget affords, and the policy (or the PDB's
    /// convergence rate) left no feasible ε to widen to.
    Rejected {
        /// The tolerance the client asked for.
        requested_eps: f64,
        /// The truncation length the (possibly widened) plan required.
        needed_n: usize,
        /// The budget's cap on the truncation length.
        max_n: usize,
    },
    /// The evaluation itself failed (bad tolerance, free variables,
    /// divergence, …).
    Query(QueryError),
    /// The service shut down before this request ran.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected {
                requested_eps,
                needed_n,
                max_n,
            } => write!(
                f,
                "rejected: eps {requested_eps} needs n = {needed_n} facts, budget allows {max_n}"
            ),
            ServeError::Query(e) => write!(f, "{e}"),
            ServeError::Shutdown => write!(f, "service shut down before the request ran"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_actionable() {
        let e = ServeError::Rejected {
            requested_eps: 0.01,
            needed_n: 40,
            max_n: 5,
        };
        let s = e.to_string();
        assert!(s.contains("40") && s.contains('5') && s.contains("0.01"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let q: ServeError = QueryError::Math(infpdb_math::MathError::BadTolerance(0.7)).into();
        assert!(q.to_string().contains("0.7"));
    }
}

//! Cache-key construction: stable fingerprints of requests.
//!
//! A cached answer may be returned for a request exactly when the four
//! components of its [`CacheKey`] agree:
//!
//! 1. **PDB content** — for finite tables, `TiTable::fingerprint`; for
//!    countable PDBs, [`countable_pdb_fingerprint`] hashes an enumeration
//!    prefix plus the certified tail bound (two supplies agreeing on both
//!    are indistinguishable to every evaluation this service performs at
//!    the tolerances it accepts).
//! 2. **Normalized query** — [`query_fingerprint`] (re-exported from
//!    [`infpdb_logic::compile`], where it also keys compiled-query
//!    artifacts): the formula is rectified and put in negation normal
//!    form, then hashed structurally with bound variables replaced by de
//!    Bruijn indices, so α-equivalent queries (`∃x. R(x)` vs `∃y. R(y)`)
//!    and double negations share an entry while genuinely different
//!    queries do not.
//! 3. **Effective ε bits** — the tolerance actually evaluated (after any
//!    degradation), by exact bit pattern.
//! 4. **Engine** — different engines must not share entries: the service
//!    promises byte-identical agreement with the corresponding
//!    sequential evaluation, and e.g. `Lifted` and `Lineage` may differ
//!    in the last ulp.

use infpdb_core::fingerprint::Fingerprinter;
use infpdb_core::schema::Schema;
use infpdb_finite::engine::Engine;
use infpdb_logic::ast::Formula;
use infpdb_ti::construction::CountableTiPdb;

pub use infpdb_logic::compile::query_fingerprint;

/// Enumeration prefix length hashed by [`countable_pdb_fingerprint`].
pub const PDB_FINGERPRINT_PREFIX: usize = 64;

/// The components identifying a cacheable evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// PDB content fingerprint.
    pub pdb: u64,
    /// Normalized-query fingerprint.
    pub query: u64,
    /// Bit pattern of the ε the evaluation actually ran at.
    pub eps_bits: u64,
    /// Engine discriminant.
    pub engine: u8,
}

impl CacheKey {
    /// Assembles a key.
    pub fn new(pdb: u64, schema: &Schema, query: &Formula, eps: f64, engine: Engine) -> Self {
        CacheKey {
            pdb,
            query: query_fingerprint(schema, query),
            eps_bits: eps.to_bits(),
            engine: engine_tag(engine),
        }
    }

    /// The 64-bit digest used as the cache index.
    pub fn digest(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u64(self.pdb)
            .write_u64(self.query)
            .write_u64(self.eps_bits)
            .write_u64(u64::from(self.engine));
        fp.finish()
    }
}

/// Stable discriminant for an engine choice.
pub fn engine_tag(engine: Engine) -> u8 {
    match engine {
        Engine::Auto => 0,
        Engine::Lifted => 1,
        Engine::Lineage => 2,
        Engine::Brute => 3,
    }
}

/// Content fingerprint of a countable t.i. PDB.
///
/// Hashes the schema, the first [`PDB_FINGERPRINT_PREFIX`] enumerated
/// `(fact, probability)` pairs *in enumeration order* (the order is part
/// of the oracle's identity: it decides which prefix `Ω_n` a truncation
/// keeps), and the certified tail bound after the prefix.
pub fn countable_pdb_fingerprint(pdb: &CountableTiPdb) -> u64 {
    let supply = pdb.supply();
    let mut fp = Fingerprinter::new();
    fp.write_u64(combine_schema(pdb.schema()));
    let prefix = supply
        .support_len()
        .unwrap_or(PDB_FINGERPRINT_PREFIX)
        .min(PDB_FINGERPRINT_PREFIX);
    fp.write_u64(prefix as u64);
    for i in 0..prefix {
        fp.write_u64(infpdb_core::fingerprint::fact_fingerprint(
            pdb.schema(),
            &supply.fact(i),
            supply.prob(i),
        ));
    }
    match supply.tail_upper(prefix).finite() {
        Some(bound) => fp.write_f64(bound),
        None => fp.write_u64(u64::MAX),
    };
    fp.finish()
}

fn combine_schema(schema: &Schema) -> u64 {
    infpdb_core::fingerprint::combine_unordered(schema.iter().map(|(_, r)| {
        let mut rf = Fingerprinter::new();
        rf.write_bytes(r.name().as_bytes())
            .write_u64(r.arity() as u64);
        rf.finish()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
    }

    fn qfp(q: &str) -> u64 {
        let s = schema();
        query_fingerprint(&s, &parse(q, &s).unwrap())
    }

    #[test]
    fn alpha_equivalent_queries_share_a_fingerprint() {
        assert_eq!(qfp("exists x. R(x)"), qfp("exists y. R(y)"));
        assert_eq!(
            qfp("exists x. exists y. S(x, y)"),
            qfp("exists a. exists b. S(a, b)")
        );
        // swapped roles are NOT α-equivalent
        assert_ne!(
            qfp("exists x. exists y. S(x, y)"),
            qfp("exists x. exists y. S(y, x)")
        );
    }

    #[test]
    fn normalization_collapses_double_negation() {
        assert_eq!(qfp("!(!R(1))"), qfp("R(1)"));
        assert_eq!(qfp("!(exists x. R(x))"), qfp("forall x. !R(x)"));
    }

    #[test]
    fn distinct_queries_get_distinct_fingerprints() {
        assert_ne!(qfp("R(1)"), qfp("R(2)"));
        assert_ne!(qfp("R(1)"), qfp("!R(1)"));
        assert_ne!(qfp("exists x. R(x)"), qfp("forall x. R(x)"));
        assert_ne!(qfp("R(1) /\\ R(2)"), qfp("R(1) \\/ R(2)"));
    }

    #[test]
    fn cache_key_separates_eps_and_engine() {
        let s = schema();
        let q = parse("R(1)", &s).unwrap();
        let base = CacheKey::new(7, &s, &q, 0.01, Engine::Auto);
        assert_eq!(base, CacheKey::new(7, &s, &q, 0.01, Engine::Auto));
        assert_ne!(
            base.digest(),
            CacheKey::new(7, &s, &q, 0.02, Engine::Auto).digest()
        );
        assert_ne!(
            base.digest(),
            CacheKey::new(7, &s, &q, 0.01, Engine::Lineage).digest()
        );
        assert_ne!(
            base.digest(),
            CacheKey::new(8, &s, &q, 0.01, Engine::Auto).digest()
        );
    }

    #[test]
    fn countable_fingerprint_sees_probability_changes() {
        let s = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let make = |first: f64| {
            CountableTiPdb::new(FactSupply::unary_over_naturals(
                s.clone(),
                RelId(0),
                GeometricSeries::new(first, 0.5).unwrap(),
            ))
            .unwrap()
        };
        let a = countable_pdb_fingerprint(&make(0.5));
        let b = countable_pdb_fingerprint(&make(0.5));
        let c = countable_pdb_fingerprint(&make(0.25));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Cache-key construction: stable fingerprints of requests.
//!
//! A cached answer may be returned for a request exactly when the five
//! components of its [`CacheKey`] agree:
//!
//! 1. **PDB content** — for finite tables, `TiTable::fingerprint`; for
//!    countable PDBs, [`countable_pdb_fingerprint`] hashes an enumeration
//!    prefix plus the certified tail bound (two supplies agreeing on both
//!    are indistinguishable to every evaluation this service performs at
//!    the tolerances it accepts).
//! 2. **Normalized query** — [`query_fingerprint`] (re-exported from
//!    [`infpdb_logic::compile`], where it also keys compiled-query
//!    artifacts): the formula is rectified and put in negation normal
//!    form, then hashed structurally with bound variables replaced by de
//!    Bruijn indices, so α-equivalent queries (`∃x. R(x)` vs `∃y. R(y)`)
//!    and double negations share an entry while genuinely different
//!    queries do not.
//! 3. **Effective ε bits** — the tolerance actually evaluated (after any
//!    degradation), by exact bit pattern.
//! 4. **Engine** — different engines must not share entries: the service
//!    promises byte-identical agreement with the corresponding
//!    sequential evaluation, and e.g. `Lifted` and `Lineage` may differ
//!    in the last ulp.
//! 5. **Planner knobs** — [`PlanKnobs::fingerprint`]: under
//!    `Engine::Auto` the answer bits depend on the plan (sampling
//!    strategies, seeds, the ε budget split), and the plan on the knobs,
//!    so a knob change must never alias a stale entry.
//!
//! [`PlanKnobs::fingerprint`]: infpdb_query::PlanKnobs::fingerprint

use infpdb_core::fingerprint::Fingerprinter;
use infpdb_core::schema::Schema;
use infpdb_finite::engine::Engine;
use infpdb_logic::ast::Formula;
use infpdb_query::PlanKnobs;

pub use infpdb_logic::compile::query_fingerprint;
// the countable-PDB content fingerprint lives with the PDB construction
// itself (the planner seeds plans with it too); re-exported here for the
// service and its callers
pub use infpdb_ti::fingerprint::{countable_pdb_fingerprint, PDB_FINGERPRINT_PREFIX};

/// The components identifying a cacheable evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// PDB content fingerprint.
    pub pdb: u64,
    /// Normalized-query fingerprint.
    pub query: u64,
    /// Bit pattern of the ε the evaluation actually ran at.
    pub eps_bits: u64,
    /// Engine discriminant ([`Engine::tag`]).
    pub engine: u8,
    /// Planner-knob fingerprint (the plan, and under `Engine::Auto` the
    /// answer bits, are a function of it).
    pub knobs: u64,
}

impl CacheKey {
    /// Assembles a key.
    pub fn new(
        pdb: u64,
        schema: &Schema,
        query: &Formula,
        eps: f64,
        engine: Engine,
        knobs: &PlanKnobs,
    ) -> Self {
        CacheKey {
            pdb,
            query: query_fingerprint(schema, query),
            eps_bits: eps.to_bits(),
            engine: engine.tag(),
            knobs: knobs.fingerprint(),
        }
    }

    /// The 64-bit digest used as the cache index.
    pub fn digest(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u64(self.pdb)
            .write_u64(self.query)
            .write_u64(self.eps_bits)
            .write_u64(u64::from(self.engine))
            .write_u64(self.knobs);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::construction::CountableTiPdb;
    use infpdb_ti::enumerator::FactSupply;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
    }

    fn qfp(q: &str) -> u64 {
        let s = schema();
        query_fingerprint(&s, &parse(q, &s).unwrap())
    }

    #[test]
    fn alpha_equivalent_queries_share_a_fingerprint() {
        assert_eq!(qfp("exists x. R(x)"), qfp("exists y. R(y)"));
        assert_eq!(
            qfp("exists x. exists y. S(x, y)"),
            qfp("exists a. exists b. S(a, b)")
        );
        // swapped roles are NOT α-equivalent
        assert_ne!(
            qfp("exists x. exists y. S(x, y)"),
            qfp("exists x. exists y. S(y, x)")
        );
    }

    #[test]
    fn normalization_collapses_double_negation() {
        assert_eq!(qfp("!(!R(1))"), qfp("R(1)"));
        assert_eq!(qfp("!(exists x. R(x))"), qfp("forall x. !R(x)"));
    }

    #[test]
    fn distinct_queries_get_distinct_fingerprints() {
        assert_ne!(qfp("R(1)"), qfp("R(2)"));
        assert_ne!(qfp("R(1)"), qfp("!R(1)"));
        assert_ne!(qfp("exists x. R(x)"), qfp("forall x. R(x)"));
        assert_ne!(qfp("R(1) /\\ R(2)"), qfp("R(1) \\/ R(2)"));
    }

    #[test]
    fn cache_key_separates_eps_engine_and_knobs() {
        let s = schema();
        let q = parse("R(1)", &s).unwrap();
        let knobs = PlanKnobs::default();
        let base = CacheKey::new(7, &s, &q, 0.01, Engine::Auto, &knobs);
        assert_eq!(base, CacheKey::new(7, &s, &q, 0.01, Engine::Auto, &knobs));
        assert_ne!(
            base.digest(),
            CacheKey::new(7, &s, &q, 0.02, Engine::Auto, &knobs).digest()
        );
        assert_ne!(
            base.digest(),
            CacheKey::new(7, &s, &q, 0.01, Engine::Lineage, &knobs).digest()
        );
        assert_ne!(
            base.digest(),
            CacheKey::new(8, &s, &q, 0.01, Engine::Auto, &knobs).digest()
        );
        // changing a planner knob changes the key: re-tuned services
        // can never serve answers planned under the old knobs
        let retuned = PlanKnobs {
            sampling_fraction: 0.25,
            ..PlanKnobs::default()
        };
        assert_ne!(
            base.digest(),
            CacheKey::new(7, &s, &q, 0.01, Engine::Auto, &retuned).digest()
        );
    }

    #[test]
    fn countable_fingerprint_sees_probability_changes() {
        let s = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let make = |first: f64| {
            CountableTiPdb::new(FactSupply::unary_over_naturals(
                s.clone(),
                RelId(0),
                GeometricSeries::new(first, 0.5).unwrap(),
            ))
            .unwrap()
        };
        let a = countable_pdb_fingerprint(&make(0.5));
        let b = countable_pdb_fingerprint(&make(0.5));
        let c = countable_pdb_fingerprint(&make(0.25));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

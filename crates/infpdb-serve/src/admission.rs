//! Admission control and deadline-aware ε-degradation.
//!
//! The Section 6 complexity remark makes evaluation cost *predictable
//! before evaluating*: the truncation length `n(ε)` from
//! [`infpdb_query::budget::plan`] determines the prefix table the finite
//! engine will see. Admission therefore consults the plan first and
//! compares `n(ε)` against the request's cost budget:
//!
//! * within budget — admit at the requested ε;
//! * over budget with [`DegradePolicy::WidenEps`] — serve an *anytime*
//!   answer at the smallest ε′ ≥ ε whose `n(ε′)` fits. Soundness comes
//!   from Proposition 6.1 itself: the widened evaluation carries its own
//!   certified additive guarantee `P(Q) ∈ [p − ε′, p + ε′]`; the service
//!   reports ε′ so callers always see the interval they were given, never
//!   the one they asked for;
//! * over budget with [`DegradePolicy::Reject`] — refuse with a
//!   structured error carrying the plan, so the client can retry with a
//!   feasible tolerance.
//!
//! Budgets are expressed directly as a maximum `n` and/or as a deadline;
//! deadlines convert to an `n` cap through a throughput estimate
//! (facts/second) that the service updates from observed evaluations.

use crate::ServeError;
use infpdb_query::budget::{plan, BudgetReport};
use infpdb_ti::construction::CountableTiPdb;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Largest tolerance degradation may widen to; Proposition 6.1 requires
/// `ε < 1/2`, and an answer at ε ≥ 1/2 would be vacuous anyway.
pub const EPS_MAX: f64 = 0.499;

/// What to do with a request whose planned cost exceeds its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Refuse with [`ServeError::Rejected`].
    Reject,
    /// Widen ε until the plan fits (the default).
    #[default]
    WidenEps,
}

/// Cost constraints carried by a request. `None` fields do not constrain.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBudget {
    /// Cap on the truncation length `n(ε)`.
    pub max_n: Option<usize>,
    /// Wall-clock deadline; converted to an `n` cap via the service's
    /// throughput estimate.
    pub deadline: Option<Duration>,
}

impl CostBudget {
    /// An unconstrained budget.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Budget capped at truncation length `n`.
    pub fn max_n(n: usize) -> Self {
        CostBudget {
            max_n: Some(n),
            deadline: None,
        }
    }

    /// Budget capped by a deadline.
    pub fn deadline(d: Duration) -> Self {
        CostBudget {
            max_n: None,
            deadline: Some(d),
        }
    }

    /// The effective `n` cap given a facts/second throughput estimate.
    pub fn effective_max_n(&self, facts_per_sec: f64) -> Option<usize> {
        let from_deadline = self
            .deadline
            .map(|d| (d.as_secs_f64() * facts_per_sec).floor().max(1.0) as usize);
        match (self.max_n, from_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy)]
pub struct Admitted {
    /// Tolerance the evaluation will actually run at (≥ requested).
    pub eps: f64,
    /// The plan at the admitted tolerance.
    pub report: BudgetReport,
    /// Whether ε was widened to fit the budget.
    pub degraded: bool,
}

/// Plans the request and applies the budget/degradation policy.
pub fn admit(
    pdb: &CountableTiPdb,
    eps: f64,
    max_n: Option<usize>,
    policy: DegradePolicy,
) -> Result<Admitted, ServeError> {
    let report = plan(pdb, eps).map_err(ServeError::Query)?;
    let Some(cap) = max_n else {
        return Ok(Admitted {
            eps,
            report,
            degraded: false,
        });
    };
    if report.n <= cap {
        return Ok(Admitted {
            eps,
            report,
            degraded: false,
        });
    }
    match policy {
        DegradePolicy::Reject => Err(ServeError::Rejected {
            requested_eps: eps,
            needed_n: report.n,
            max_n: cap,
        }),
        DegradePolicy::WidenEps => {
            let widest = plan(pdb, EPS_MAX).map_err(ServeError::Query)?;
            if widest.n > cap {
                // even a vacuously wide answer cannot fit this budget
                return Err(ServeError::Rejected {
                    requested_eps: eps,
                    needed_n: widest.n,
                    max_n: cap,
                });
            }
            let report = widen_to_fit(pdb, eps, cap, widest)?;
            Ok(Admitted {
                eps: report.eps,
                report,
                degraded: true,
            })
        }
    }
}

/// Smallest ε′ ∈ (eps, EPS_MAX] with `n(ε′) ≤ cap`, by bisection.
///
/// `n(ε)` is non-increasing in ε, so bisection on ε converges to the
/// boundary; 60 iterations pin ε′ to ~1 ulp, and we keep the best
/// *feasible* plan seen, so the result is always within budget.
fn widen_to_fit(
    pdb: &CountableTiPdb,
    eps: f64,
    cap: usize,
    widest: BudgetReport,
) -> Result<BudgetReport, ServeError> {
    let mut lo = eps; // infeasible
    let mut hi = EPS_MAX; // feasible
    let mut best = widest;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let r = plan(pdb, mid).map_err(ServeError::Query)?;
        if r.n <= cap {
            best = r;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(best)
}

/// A relaxed-atomic EWMA of evaluation throughput in facts/second,
/// used to convert deadlines into `n` caps.
#[derive(Debug)]
pub struct ThroughputEstimate {
    bits: AtomicU64,
}

impl ThroughputEstimate {
    /// Smoothing factor: each observation contributes 20%.
    const ALPHA: f64 = 0.2;

    /// Starts from a prior estimate (facts/second).
    pub fn new(prior_facts_per_sec: f64) -> Self {
        ThroughputEstimate {
            bits: AtomicU64::new(prior_facts_per_sec.max(1.0).to_bits()),
        }
    }

    /// Current estimate.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Folds in an observed evaluation of `n` facts taking `elapsed`.
    /// Lossy under concurrent updates (last write wins) — an estimate,
    /// not an accounting ledger.
    pub fn observe(&self, n: usize, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 || n == 0 {
            return;
        }
        let sample = (n as f64 / secs).max(1.0);
        let current = self.get();
        let next = (1.0 - Self::ALPHA) * current + Self::ALPHA * sample;
        self.bits.store(next.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;

    fn pdb() -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema,
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    #[test]
    fn within_budget_admits_unchanged() {
        let p = pdb();
        let a = admit(&p, 0.01, Some(10_000), DegradePolicy::Reject).unwrap();
        assert_eq!(a.eps, 0.01);
        assert!(!a.degraded);
        let unconstrained = admit(&p, 0.01, None, DegradePolicy::Reject).unwrap();
        assert_eq!(unconstrained.report.n, a.report.n);
    }

    #[test]
    fn over_budget_reject_policy_rejects_with_plan() {
        let p = pdb();
        let full = plan(&p, 0.001).unwrap();
        let cap = full.n - 1;
        match admit(&p, 0.001, Some(cap), DegradePolicy::Reject) {
            Err(ServeError::Rejected {
                requested_eps,
                needed_n,
                max_n,
            }) => {
                assert_eq!(requested_eps, 0.001);
                assert_eq!(needed_n, full.n);
                assert_eq!(max_n, cap);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn over_budget_widen_policy_fits_and_is_minimal() {
        let p = pdb();
        let cap = 5;
        let a = admit(&p, 0.001, Some(cap), DegradePolicy::WidenEps).unwrap();
        assert!(a.degraded);
        assert!(a.eps > 0.001);
        assert!(a.report.n <= cap, "widened plan must fit: {:?}", a.report);
        // minimality: a meaningfully tighter ε would not fit
        let tighter = plan(&p, (a.eps * 0.9).max(0.0011)).unwrap();
        assert!(
            tighter.n > cap || a.eps * 0.9 <= 0.001,
            "ε′ should be near the feasibility boundary"
        );
    }

    #[test]
    fn impossible_budget_rejects_even_widening() {
        let p = pdb();
        // geometric with first=0.5 needs n ≥ 1 even at ε = 0.499
        match admit(&p, 0.01, Some(0), DegradePolicy::WidenEps) {
            Err(ServeError::Rejected { .. }) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn cost_budget_combines_caps() {
        let b = CostBudget {
            max_n: Some(100),
            deadline: Some(Duration::from_millis(10)),
        };
        // 1000 facts/sec × 10ms = 10 facts — the deadline is tighter
        assert_eq!(b.effective_max_n(1000.0), Some(10));
        assert_eq!(CostBudget::max_n(7).effective_max_n(1e9), Some(7));
        assert_eq!(CostBudget::unlimited().effective_max_n(1e9), None);
        // a deadline so tight it rounds to zero still caps at one fact
        assert_eq!(
            CostBudget::deadline(Duration::from_nanos(1)).effective_max_n(1.0),
            Some(1)
        );
    }

    #[test]
    fn throughput_ewma_moves_toward_observations() {
        let t = ThroughputEstimate::new(1000.0);
        assert_eq!(t.get(), 1000.0);
        for _ in 0..50 {
            t.observe(10_000, Duration::from_secs(1));
        }
        assert!(
            t.get() > 9000.0,
            "ewma should approach 10k, got {}",
            t.get()
        );
        t.observe(0, Duration::from_secs(1)); // ignored
        t.observe(10, Duration::ZERO); // ignored
        assert!(t.get() > 9000.0);
    }
}

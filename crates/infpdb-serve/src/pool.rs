//! A fixed-size worker thread pool over a `Mutex`+`Condvar` job queue.
//!
//! `std`-only: jobs are boxed closures in a `VecDeque` guarded by one
//! mutex, workers park on a condition variable. One mutex is enough
//! here — queue operations are push/pop of a pointer while job bodies
//! (query evaluations) run three to six orders of magnitude longer, so
//! the critical section is never the bottleneck.
//!
//! Shutdown comes in two flavors:
//!
//! * **Graceful** ([`ThreadPool::drop`] / [`ThreadPool::join`]) — workers
//!   drain every queued job, then exit.
//! * **Immediate** ([`ThreadPool::shutdown_now`]) — the queue is cleared
//!   first; dropped jobs never run, which any response channel they held
//!   reports as a disconnect. Jobs already mid-flight still finish (the
//!   pool never kills a thread), so joining stays deadlock-free.
//!
//! Worker panics are caught per job and counted in
//! [`Metrics::panics`](crate::metrics::Metrics); the worker thread
//! survives and moves on to the next job.

use crate::metrics::Metrics;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
    metrics: Arc<Metrics>,
}

/// A fixed-size pool of worker threads consuming a shared job queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least 1) sharing `metrics`.
    pub fn new(threads: usize, metrics: Arc<Metrics>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            metrics,
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("infpdb-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job. Jobs submitted after shutdown are dropped
    /// immediately (their effects never happen).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.submit_boxed(Box::new(job));
    }

    /// Enqueues a whole batch under a single lock acquisition, then wakes
    /// every worker — cheaper than `submit` in a loop for query fan-out.
    pub fn submit_batch(&self, jobs: Vec<Job>) {
        let count = jobs.len();
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            if state.shutdown {
                return; // jobs drop here; receivers observe disconnect
            }
            state.jobs.extend(jobs);
        }
        self.shared
            .metrics
            .queue_depth
            .fetch_add(count as u64, Ordering::Relaxed);
        self.shared.available.notify_all();
    }

    fn submit_boxed(&self, job: Job) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            if state.shutdown {
                return;
            }
            state.jobs.push_back(job);
        }
        self.shared
            .metrics
            .queue_depth
            .fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .jobs
            .len()
    }

    /// Immediate shutdown: discards queued jobs and waits only for the
    /// jobs already running. Queued-but-never-run jobs are dropped, which
    /// disconnects any response channel they captured.
    pub fn shutdown_now(&mut self) {
        let dropped_jobs: Vec<Job> = {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
            state.jobs.drain(..).collect()
        };
        self.shared
            .metrics
            .queue_depth
            .fetch_sub(dropped_jobs.len() as u64, Ordering::Relaxed);
        // dropping outside the lock: job destructors (channel senders,
        // arbitrary captures) must not run under the queue mutex
        drop(dropped_jobs);
        self.shared.available.notify_all();
        self.join_workers();
    }

    /// Graceful shutdown: lets workers drain the queue, then joins them.
    /// Equivalent to dropping the pool, but explicit at call sites.
    pub fn join(mut self) {
        self.begin_graceful_shutdown();
        self.join_workers();
    }

    fn begin_graceful_shutdown(&self) {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        state.shutdown = true;
        drop(state);
        self.shared.available.notify_all();
    }

    fn join_workers(&mut self) {
        for handle in self.workers.drain(..) {
            handle.join().expect("worker thread itself never panics");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_graceful_shutdown();
            self.join_workers();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.available.wait(state).expect("pool lock poisoned");
            }
        };
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs_across_workers() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::new(4, Arc::clone(&metrics));
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn batch_submission_runs_everything() {
        let pool = ThreadPool::new(2, Arc::new(Metrics::new()));
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..50)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.submit_batch(jobs);
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn graceful_drop_drains_the_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(1, Arc::new(Metrics::new()));
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // drop here: must finish all 20, not abandon them
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn shutdown_now_drops_queued_jobs_and_disconnects_receivers() {
        let metrics = Arc::new(Metrics::new());
        let mut pool = ThreadPool::new(1, Arc::clone(&metrics));
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // first job occupies the single worker until we release it
        pool.submit(move || {
            block_rx.recv().ok();
        });
        let mut waiters = Vec::new();
        for i in 0..10 {
            let (tx, rx) = mpsc::channel::<u32>();
            pool.submit(move || {
                tx.send(i).ok();
            });
            waiters.push(rx);
        }
        block_tx.send(()).ok(); // release the in-flight job
        pool.shutdown_now();
        // every queued job either ran (sent) or was dropped (disconnect);
        // none may leave its receiver hanging
        for rx in waiters {
            match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(_) | Err(mpsc::RecvTimeoutError::Disconnected) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    panic!("receiver left hanging after shutdown_now")
                }
            }
        }
    }

    #[test]
    fn worker_survives_job_panics() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::new(1, Arc::clone(&metrics));
        pool.submit(|| panic!("job goes boom"));
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 1);
    }
}

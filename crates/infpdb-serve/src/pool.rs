//! A fixed-size worker thread pool over a bounded `Mutex`+`Condvar` job
//! queue.
//!
//! `std`-only: jobs are boxed closures in a `VecDeque` guarded by one
//! mutex, workers park on a condition variable. One mutex is enough
//! here — queue operations are push/pop of a pointer while job bodies
//! (query evaluations) run three to six orders of magnitude longer, so
//! the critical section is never the bottleneck.
//!
//! **Backpressure.** The queue is bounded (default
//! [`DEFAULT_QUEUE_CAP_PER_THREAD`]` × threads`) so a fast producer can
//! never exhaust memory. When the queue is full, the configured
//! [`OverflowPolicy`] decides: block the submitter until space frees up
//! (default), reject the incoming job, or shed the oldest queued job to
//! make room. Shed jobs get their `on_shed` handler invoked (outside the
//! queue lock) so any response channel they hold can resolve with a
//! structured error instead of a silent disconnect; sheds are counted in
//! [`Metrics::shed`](crate::metrics::Metrics).
//!
//! Shutdown comes in two flavors:
//!
//! * **Graceful** ([`ThreadPool::drop`] / [`ThreadPool::join`]) — workers
//!   drain every queued job, then exit.
//! * **Immediate** ([`ThreadPool::shutdown_now`]) — the queue is cleared
//!   first; dropped jobs never run, which any response channel they held
//!   reports as a disconnect. Jobs already mid-flight still finish (the
//!   pool never kills a thread), so joining stays deadlock-free.
//!
//! Worker panics are caught per job and counted in
//! [`Metrics::panics`](crate::metrics::Metrics); the worker thread
//! survives and moves on to the next job. Every lock acquisition
//! recovers from poisoning (the internal `recover` module), so a panic
//! that unwinds
//! while the queue mutex is held cannot wedge the pool.

use crate::metrics::Metrics;
use crate::recover;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Default queue capacity per worker thread: enough lookahead to keep
/// workers busy, small enough that latency (and memory) stay bounded.
pub const DEFAULT_QUEUE_CAP_PER_THREAD: usize = 8;

/// What to do with a submission when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the submitting thread until a worker frees a slot (or the
    /// pool shuts down). Classic backpressure: no request is lost, the
    /// producer slows to the service's pace.
    #[default]
    Block,
    /// Drop the incoming job; its `on_shed` handler runs so the caller
    /// learns immediately. Favors requests already accepted.
    RejectNewest,
    /// Evict the oldest *queued* job to make room for the incoming one;
    /// the victim's `on_shed` handler runs. Favors fresh requests —
    /// the oldest queued job is the most likely to be past its deadline
    /// anyway.
    ShedOldest,
}

/// Pool construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads (at least 1).
    pub threads: usize,
    /// Queue capacity; `None` means
    /// [`DEFAULT_QUEUE_CAP_PER_THREAD`]` × threads`.
    pub queue_cap: Option<usize>,
    /// Behavior when the queue is full.
    pub overflow: OverflowPolicy,
}

impl PoolConfig {
    /// `threads` workers with the default bounded queue and block policy.
    pub fn new(threads: usize) -> Self {
        PoolConfig {
            threads,
            queue_cap: None,
            overflow: OverflowPolicy::default(),
        }
    }

    fn effective_cap(&self) -> usize {
        self.queue_cap
            .unwrap_or(DEFAULT_QUEUE_CAP_PER_THREAD * self.threads.max(1))
            .max(1)
    }
}

/// A queued unit of work: the job itself plus an optional handler to run
/// if the overflow policy sheds it before a worker picks it up.
struct QueuedJob {
    run: Job,
    on_shed: Option<Job>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers: a job is available (or shutdown began).
    available: Condvar,
    /// Signals blocked submitters: a slot freed up (or shutdown began).
    space: Condvar,
    cap: usize,
    overflow: OverflowPolicy,
    metrics: Arc<Metrics>,
}

/// The fate of one submission under the pool's overflow policy.
enum Enqueued {
    /// The job is in the queue.
    Accepted,
    /// The queue was full; this handler (the incoming job's, or under
    /// shed-oldest the evicted victim's) must run outside the lock.
    Shed(Option<Job>),
    /// The pool had shut down; the job was dropped.
    Dropped,
}

/// A fixed-size pool of worker threads consuming a shared bounded queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least 1) sharing `metrics`, with the
    /// default bounded queue (`8 × threads`, block-on-full).
    pub fn new(threads: usize, metrics: Arc<Metrics>) -> Self {
        Self::with_config(PoolConfig::new(threads), metrics)
    }

    /// Spawns a pool with explicit queue bounds and overflow policy.
    pub fn with_config(config: PoolConfig, metrics: Arc<Metrics>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            cap: config.effective_cap(),
            overflow: config.overflow,
            metrics,
        });
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("infpdb-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.shared.cap
    }

    /// Enqueues one job. Jobs submitted after shutdown are dropped
    /// immediately (their effects never happen). When the queue is full
    /// the [`OverflowPolicy`] applies; a job shed without an `on_shed`
    /// handler disappears silently (its channels disconnect).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.submit_with_shed(Box::new(job), None);
    }

    /// Enqueues one job with a shed handler: if the overflow policy
    /// drops this job (reject-newest) — or this job is later evicted by
    /// shed-oldest — `on_shed` runs exactly once, outside the queue
    /// lock, so it may resolve response channels or take locks itself.
    pub fn submit_with_shed(&self, job: Job, on_shed: Option<Job>) {
        let outcome = self.enqueue(QueuedJob { run: job, on_shed });
        self.settle(outcome);
    }

    /// Enqueues a whole batch, waking every worker once per slot made.
    /// Each job is subject to the overflow policy independently; under
    /// the block policy the submitting thread waits for space as needed.
    pub fn submit_batch(&self, jobs: Vec<Job>) {
        self.submit_batch_with_shed(jobs.into_iter().map(|j| (j, None)).collect());
    }

    /// [`ThreadPool::submit_batch`] with a shed handler per job.
    pub fn submit_batch_with_shed(&self, jobs: Vec<(Job, Option<Job>)>) {
        for (job, on_shed) in jobs {
            self.submit_with_shed(job, on_shed);
        }
    }

    fn enqueue(&self, job: QueuedJob) -> Enqueued {
        let mut state = recover::lock(&self.shared.state);
        loop {
            if state.shutdown {
                return Enqueued::Dropped;
            }
            if state.jobs.len() < self.shared.cap {
                state.jobs.push_back(job);
                self.shared
                    .metrics
                    .queue_depth
                    .fetch_add(1, Ordering::Relaxed);
                return Enqueued::Accepted;
            }
            match self.shared.overflow {
                OverflowPolicy::Block => {
                    state = recover::wait(&self.shared.space, state);
                }
                OverflowPolicy::RejectNewest => {
                    return Enqueued::Shed(job.on_shed);
                }
                OverflowPolicy::ShedOldest => {
                    let victim = state.jobs.pop_front().expect("cap >= 1, queue full");
                    state.jobs.push_back(job);
                    // victim's Job must drop outside the lock; hand both
                    // pieces out through the Shed arm
                    drop(state);
                    let QueuedJob { run, on_shed } = victim;
                    drop(run);
                    return Enqueued::Shed(on_shed);
                }
            }
        }
    }

    fn settle(&self, outcome: Enqueued) {
        match outcome {
            Enqueued::Accepted => self.shared.available.notify_one(),
            Enqueued::Shed(handler) => {
                self.shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(h) = handler {
                    h();
                }
            }
            Enqueued::Dropped => {}
        }
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        recover::lock(&self.shared.state).jobs.len()
    }

    /// Immediate shutdown: discards queued jobs and waits only for the
    /// jobs already running. Queued-but-never-run jobs are dropped, which
    /// disconnects any response channel they captured.
    pub fn shutdown_now(&mut self) {
        let dropped_jobs: Vec<QueuedJob> = {
            let mut state = recover::lock(&self.shared.state);
            state.shutdown = true;
            state.jobs.drain(..).collect()
        };
        self.shared
            .metrics
            .queue_depth
            .fetch_sub(dropped_jobs.len() as u64, Ordering::Relaxed);
        // dropping outside the lock: job destructors (channel senders,
        // arbitrary captures) must not run under the queue mutex
        drop(dropped_jobs);
        self.shared.available.notify_all();
        self.shared.space.notify_all();
        self.join_workers();
    }

    /// Graceful shutdown: lets workers drain the queue, then joins them.
    /// Equivalent to dropping the pool, but explicit at call sites.
    pub fn join(mut self) {
        self.begin_graceful_shutdown();
        self.join_workers();
    }

    fn begin_graceful_shutdown(&self) {
        let mut state = recover::lock(&self.shared.state);
        state.shutdown = true;
        drop(state);
        self.shared.available.notify_all();
        self.shared.space.notify_all();
    }

    fn join_workers(&mut self) {
        for handle in self.workers.drain(..) {
            // a worker can only die by a panic that escaped its own
            // catch_unwind (e.g. a panicking Job destructor); swallowing
            // the Err here keeps shutdown from cascading the panic
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_graceful_shutdown();
            self.join_workers();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = recover::lock(&shared.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = recover::wait(&shared.available, state);
            }
        };
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared.space.notify_one();
        if catch_unwind(AssertUnwindSafe(job.run)).is_err() {
            shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TICKET_GRACE;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs_across_workers() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::new(4, Arc::clone(&metrics));
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.queue_cap(), 4 * DEFAULT_QUEUE_CAP_PER_THREAD);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn batch_submission_runs_everything() {
        let pool = ThreadPool::new(2, Arc::new(Metrics::new()));
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..50)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.submit_batch(jobs);
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn graceful_drop_drains_the_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(1, Arc::new(Metrics::new()));
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // drop here: must finish all 20, not abandon them
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn shutdown_now_drops_queued_jobs_and_disconnects_receivers() {
        let metrics = Arc::new(Metrics::new());
        // explicit capacity: all 10 jobs must *queue* behind the blocker
        // without the Block policy stalling the submitting thread
        let mut pool = ThreadPool::with_config(
            PoolConfig {
                threads: 1,
                queue_cap: Some(16),
                overflow: OverflowPolicy::Block,
            },
            Arc::clone(&metrics),
        );
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // first job occupies the single worker until we release it
        pool.submit(move || {
            block_rx.recv().ok();
        });
        let mut waiters = Vec::new();
        for i in 0..10 {
            let (tx, rx) = mpsc::channel::<u32>();
            pool.submit(move || {
                tx.send(i).ok();
            });
            waiters.push(rx);
        }
        block_tx.send(()).ok(); // release the in-flight job
        pool.shutdown_now();
        // every queued job either ran (sent) or was dropped (disconnect);
        // none may leave its receiver hanging
        for rx in waiters {
            match rx.recv_timeout(TICKET_GRACE) {
                Ok(_) | Err(mpsc::RecvTimeoutError::Disconnected) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    panic!("receiver left hanging after shutdown_now")
                }
            }
        }
    }

    #[test]
    fn worker_survives_job_panics() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::new(1, Arc::clone(&metrics));
        pool.submit(|| panic!("job goes boom"));
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_stays_usable_after_a_panic_poisons_nothing() {
        // a worker panic must not wedge the pool: submit and shutdown
        // still work afterwards, and the panic is on the record
        let metrics = Arc::new(Metrics::new());
        let mut pool = ThreadPool::new(2, Arc::clone(&metrics));
        pool.submit(|| panic!("worker holds no job state"));
        // wait until the panic has been recorded
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while metrics.panics.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline, "panic never recorded");
            std::thread::yield_now();
        }
        let (tx, rx) = mpsc::channel::<u32>();
        pool.submit(move || {
            tx.send(42).ok();
        });
        assert_eq!(rx.recv_timeout(TICKET_GRACE).unwrap(), 42);
        assert_eq!(pool.queue_depth(), 0);
        pool.shutdown_now();
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn block_policy_applies_backpressure_without_losing_jobs() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::with_config(
            PoolConfig {
                threads: 1,
                queue_cap: Some(2),
                overflow: OverflowPolicy::Block,
            },
            Arc::clone(&metrics),
        );
        let counter = Arc::new(AtomicU64::new(0));
        // 30 jobs through a 2-slot queue: the submitter must block, and
        // every job must still run
        for _ in 0..30 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(100));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn reject_newest_sheds_incoming_and_runs_its_handler() {
        let metrics = Arc::new(Metrics::new());
        let mut pool = ThreadPool::with_config(
            PoolConfig {
                threads: 1,
                queue_cap: Some(1),
                overflow: OverflowPolicy::RejectNewest,
            },
            Arc::clone(&metrics),
        );
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            block_rx.recv().ok();
        });
        // wait until the blocker is actually running (queue empty again)
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while pool.queue_depth() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        let ran = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        // fills the single slot
        let r = Arc::clone(&ran);
        pool.submit_with_shed(
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
            None,
        );
        // queue full: this one must be rejected and its handler run
        let r = Arc::clone(&ran);
        let s = Arc::clone(&shed);
        pool.submit_with_shed(
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
            Some(Box::new(move || {
                s.fetch_add(1, Ordering::Relaxed);
            })),
        );
        assert_eq!(shed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
        block_tx.send(()).ok();
        pool.shutdown_now();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn shed_oldest_evicts_the_queued_victim() {
        let metrics = Arc::new(Metrics::new());
        let mut pool = ThreadPool::with_config(
            PoolConfig {
                threads: 1,
                queue_cap: Some(1),
                overflow: OverflowPolicy::ShedOldest,
            },
            Arc::clone(&metrics),
        );
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            block_rx.recv().ok();
        });
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while pool.queue_depth() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        let (first_tx, first_rx) = mpsc::channel::<&str>();
        let (second_tx, second_rx) = mpsc::channel::<&str>();
        let ftx = first_tx.clone();
        pool.submit_with_shed(
            Box::new(move || {
                ftx.send("ran").ok();
            }),
            Some(Box::new(move || {
                first_tx.send("shed").ok();
            })),
        );
        // queue full: the *first* job is evicted, the second takes its slot
        let stx = second_tx.clone();
        pool.submit_with_shed(
            Box::new(move || {
                stx.send("ran").ok();
            }),
            Some(Box::new(move || {
                second_tx.send("shed").ok();
            })),
        );
        assert_eq!(first_rx.recv_timeout(TICKET_GRACE).unwrap(), "shed");
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
        block_tx.send(()).ok();
        assert_eq!(second_rx.recv_timeout(TICKET_GRACE).unwrap(), "ran");
        pool.shutdown_now();
    }
}

//! A fixed-size worker thread pool over a bounded `Mutex`+`Condvar` job
//! queue.
//!
//! `std`-only: jobs are boxed closures in a `VecDeque` guarded by one
//! mutex, workers park on a condition variable. One mutex is enough
//! here — queue operations are push/pop of a pointer while job bodies
//! (query evaluations) run three to six orders of magnitude longer, so
//! the critical section is never the bottleneck.
//!
//! **Backpressure.** The queue is bounded (default
//! [`DEFAULT_QUEUE_CAP_PER_THREAD`]` × threads`) so a fast producer can
//! never exhaust memory. When the queue is full, the configured
//! [`OverflowPolicy`] decides: block the submitter until space frees up
//! (default), reject the incoming job, or shed the oldest queued job to
//! make room. Shed jobs get their `on_shed` handler invoked (outside the
//! queue lock) so any response channel they hold can resolve with a
//! structured error instead of a silent disconnect; sheds are counted in
//! [`Metrics::shed`](crate::metrics::Metrics).
//!
//! Shutdown comes in two flavors:
//!
//! * **Graceful** ([`ThreadPool::drop`] / [`ThreadPool::join`]) — workers
//!   drain every queued job, then exit.
//! * **Immediate** ([`ThreadPool::shutdown_now`]) — the queue is cleared
//!   first; dropped jobs never run, which any response channel they held
//!   reports as a disconnect. Jobs already mid-flight still finish (the
//!   pool never kills a thread), so joining stays deadlock-free.
//!
//! Worker panics are caught per job and counted in
//! [`Metrics::panics`](crate::metrics::Metrics); the worker thread
//! survives and moves on to the next job. Every lock acquisition
//! recovers from poisoning (the internal `recover` module), so a panic
//! that unwinds
//! while the queue mutex is held cannot wedge the pool.
//!
//! **Work stealing.** With [`SchedulerKind::Stealing`] the pool grows a
//! second, finer-grained scheduling tier: per-worker subtask deques plus
//! a shared injector. A request evaluating on worker *k* splits its
//! independent lineage components into subtasks (via
//! [`StealingExecutor`], the pool's implementation of the engine's
//! [`TaskExecutor`]) and pushes
//! them onto its own deque; idle workers drain the injector and then
//! steal from the *front* of busy workers' deques while the owner pops
//! its own *back*. The owner helps until its group completes, so a
//! request's components run with **zero thread spawns** — unlike the
//! fixed scheduler's [`ScopedExecutor`](infpdb_finite::shannon::ScopedExecutor),
//! which forks fresh scoped threads per request. Stealing reorders
//! *execution* only: results are combined in canonical component order
//! on the owning worker, so answers stay bit-for-bit identical (see
//! DESIGN.md §13). Subtasks carry their request's
//! [`CancelToken`]; a stolen subtask from a cancelled request
//! short-circuits without running, and a panicking subtask is caught
//! where it ran and re-thrown on the owner so the request-level
//! containment in `run_resilient` sees it exactly as before.

use crate::metrics::Metrics;
use crate::recover;
use infpdb_finite::shannon::{ParTask, TaskExecutor};
use infpdb_query::cancel::CancelToken;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

std::thread_local! {
    /// Index of the pool worker running on this thread, if any. Lets the
    /// stealing tier route an owner's subtasks to its own deque and
    /// attribute executed subtasks to per-worker counters.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Default queue capacity per worker thread: enough lookahead to keep
/// workers busy, small enough that latency (and memory) stay bounded.
pub const DEFAULT_QUEUE_CAP_PER_THREAD: usize = 8;

/// What to do with a submission when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the submitting thread until a worker frees a slot (or the
    /// pool shuts down). Classic backpressure: no request is lost, the
    /// producer slows to the service's pace.
    #[default]
    Block,
    /// Drop the incoming job; its `on_shed` handler runs so the caller
    /// learns immediately. Favors requests already accepted.
    RejectNewest,
    /// Evict the oldest *queued* job to make room for the incoming one;
    /// the victim's `on_shed` handler runs. Favors fresh requests —
    /// the oldest queued job is the most likely to be past its deadline
    /// anyway.
    ShedOldest,
}

/// How the pool schedules intra-request subtasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// One request per worker; intra-query parallelism forks fresh
    /// scoped threads per request (the historical behavior).
    #[default]
    Fixed,
    /// Per-worker deques plus a shared injector: a request's component
    /// subtasks are schedulable units that idle workers steal, so no
    /// per-request threads are ever spawned.
    Stealing,
}

impl SchedulerKind {
    /// Parses the CLI spelling (`fixed` | `stealing`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(SchedulerKind::Fixed),
            "stealing" => Some(SchedulerKind::Stealing),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fixed => "fixed",
            SchedulerKind::Stealing => "stealing",
        }
    }
}

/// Pool construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads (at least 1).
    pub threads: usize,
    /// Queue capacity; `None` means
    /// [`DEFAULT_QUEUE_CAP_PER_THREAD`]` × threads`.
    pub queue_cap: Option<usize>,
    /// Behavior when the queue is full.
    pub overflow: OverflowPolicy,
    /// Intra-request subtask scheduling.
    pub scheduler: SchedulerKind,
}

impl PoolConfig {
    /// `threads` workers with the default bounded queue and block policy.
    pub fn new(threads: usize) -> Self {
        PoolConfig {
            threads,
            queue_cap: None,
            overflow: OverflowPolicy::default(),
            scheduler: SchedulerKind::default(),
        }
    }

    fn effective_cap(&self) -> usize {
        self.queue_cap
            .unwrap_or(DEFAULT_QUEUE_CAP_PER_THREAD * self.threads.max(1))
            .max(1)
    }
}

/// A queued unit of work: the job itself plus an optional handler to run
/// if the overflow policy sheds it before a worker picks it up.
struct QueuedJob {
    run: Job,
    on_shed: Option<Job>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers: a job is available (or shutdown began).
    available: Condvar,
    /// Signals blocked submitters: a slot freed up (or shutdown began).
    space: Condvar,
    cap: usize,
    overflow: OverflowPolicy,
    metrics: Arc<Metrics>,
    /// The stealing tier; `None` under [`SchedulerKind::Fixed`].
    steal: Option<StealState>,
}

/// One schedulable slice of a request: already wrapped with cancel
/// short-circuit, panic capture, and completion accounting, so whoever
/// pops it just runs it.
struct SubTask {
    run: Job,
}

/// The stealing tier: per-worker deques plus a shared injector.
///
/// Lock ordering: a subtask deque is never held while taking the queue
/// mutex, and the queue mutex may take a deque (the availability check
/// in `worker_loop`), so `state → deque` is the only nesting.
struct StealState {
    /// Overflow / external-owner queue, drained by every worker.
    injector: Mutex<VecDeque<SubTask>>,
    /// One deque per worker; the owner pops its back, thieves its front.
    locals: Vec<Mutex<VecDeque<SubTask>>>,
}

impl StealState {
    fn new(workers: usize) -> Self {
        StealState {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Any subtask waiting anywhere? Called under the queue mutex before
    /// a worker parks, so a push (deque, then empty queue-mutex section,
    /// then notify) can never be missed.
    fn has_work(&self) -> bool {
        if !recover::lock(&self.injector).is_empty() {
            return true;
        }
        self.locals.iter().any(|l| !recover::lock(l).is_empty())
    }
}

/// Tracks one `run_tasks` barrier: outstanding subtasks plus the first
/// panic payload, re-thrown on the owner once the group drains.
struct TaskGroup {
    state: Mutex<GroupState>,
    done: Condvar,
}

struct GroupState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

fn pop_own(shared: &Shared, me: Option<usize>) -> Option<SubTask> {
    let st = shared.steal.as_ref()?;
    let i = me?;
    recover::lock(&st.locals[i]).pop_back()
}

/// Injector, then other workers' deque fronts; both count as observable
/// scheduler events (`serve_injector_depth` / `serve_steals_total`).
fn pop_elsewhere(shared: &Shared, me: Option<usize>) -> Option<SubTask> {
    let st = shared.steal.as_ref()?;
    if let Some(sub) = recover::lock(&st.injector).pop_front() {
        shared
            .metrics
            .injector_depth
            .fetch_sub(1, Ordering::Relaxed);
        return Some(sub);
    }
    for (j, local) in st.locals.iter().enumerate() {
        if Some(j) == me {
            continue;
        }
        if let Some(sub) = recover::lock(local).pop_front() {
            shared.metrics.steals.fetch_add(1, Ordering::Relaxed);
            return Some(sub);
        }
    }
    None
}

fn pop_subtask(shared: &Shared, me: Option<usize>) -> Option<SubTask> {
    pop_own(shared, me).or_else(|| pop_elsewhere(shared, me))
}

fn run_subtask(shared: &Shared, sub: SubTask) {
    if let Some(i) = WORKER_INDEX.with(|w| w.get()) {
        if let Some(per_worker) = shared.metrics.worker_tasks.get() {
            if let Some(c) = per_worker.get(i) {
                c.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // the wrapper installed by `StealingExecutor::run_tasks` contains its
    // own catch_unwind; a subtask can never unwind into the worker loop
    (sub.run)();
}

/// The fate of one submission under the pool's overflow policy.
enum Enqueued {
    /// The job is in the queue.
    Accepted,
    /// The queue was full; this handler (the incoming job's, or under
    /// shed-oldest the evicted victim's) must run outside the lock.
    Shed(Option<Job>),
    /// The pool had shut down; the job was dropped.
    Dropped,
}

/// A fixed-size pool of worker threads consuming a shared bounded queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least 1) sharing `metrics`, with the
    /// default bounded queue (`8 × threads`, block-on-full).
    pub fn new(threads: usize, metrics: Arc<Metrics>) -> Self {
        Self::with_config(PoolConfig::new(threads), metrics)
    }

    /// Spawns a pool with explicit queue bounds and overflow policy.
    pub fn with_config(config: PoolConfig, metrics: Arc<Metrics>) -> Self {
        let threads = config.threads.max(1);
        let steal = match config.scheduler {
            SchedulerKind::Fixed => None,
            SchedulerKind::Stealing => {
                metrics
                    .worker_tasks
                    .get_or_init(|| (0..threads).map(|_| Default::default()).collect());
                Some(StealState::new(threads))
            }
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            cap: config.effective_cap(),
            overflow: config.overflow,
            metrics,
            steal,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("infpdb-serve-{i}"))
                    .spawn(move || {
                        WORKER_INDEX.with(|w| w.set(Some(i)));
                        worker_loop(&shared)
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// A handle to the stealing tier, for building per-request
    /// [`StealingExecutor`]s; `None` under [`SchedulerKind::Fixed`].
    pub fn steal_handle(&self) -> Option<StealHandle> {
        self.shared.steal.as_ref()?;
        Some(StealHandle {
            shared: Arc::clone(&self.shared),
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.shared.cap
    }

    /// Enqueues one job. Jobs submitted after shutdown are dropped
    /// immediately (their effects never happen). When the queue is full
    /// the [`OverflowPolicy`] applies; a job shed without an `on_shed`
    /// handler disappears silently (its channels disconnect).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.submit_with_shed(Box::new(job), None);
    }

    /// Enqueues one job with a shed handler: if the overflow policy
    /// drops this job (reject-newest) — or this job is later evicted by
    /// shed-oldest — `on_shed` runs exactly once, outside the queue
    /// lock, so it may resolve response channels or take locks itself.
    pub fn submit_with_shed(&self, job: Job, on_shed: Option<Job>) {
        let outcome = self.enqueue(QueuedJob { run: job, on_shed });
        self.settle(outcome);
    }

    /// Enqueues a whole batch, waking every worker once per slot made.
    /// Each job is subject to the overflow policy independently; under
    /// the block policy the submitting thread waits for space as needed.
    pub fn submit_batch(&self, jobs: Vec<Job>) {
        self.submit_batch_with_shed(jobs.into_iter().map(|j| (j, None)).collect());
    }

    /// [`ThreadPool::submit_batch`] with a shed handler per job.
    pub fn submit_batch_with_shed(&self, jobs: Vec<(Job, Option<Job>)>) {
        for (job, on_shed) in jobs {
            self.submit_with_shed(job, on_shed);
        }
    }

    fn enqueue(&self, job: QueuedJob) -> Enqueued {
        let mut state = recover::lock(&self.shared.state);
        loop {
            if state.shutdown {
                return Enqueued::Dropped;
            }
            if state.jobs.len() < self.shared.cap {
                state.jobs.push_back(job);
                self.shared
                    .metrics
                    .queue_depth
                    .fetch_add(1, Ordering::Relaxed);
                return Enqueued::Accepted;
            }
            match self.shared.overflow {
                OverflowPolicy::Block => {
                    state = recover::wait(&self.shared.space, state);
                }
                OverflowPolicy::RejectNewest => {
                    return Enqueued::Shed(job.on_shed);
                }
                OverflowPolicy::ShedOldest => {
                    let victim = state.jobs.pop_front().expect("cap >= 1, queue full");
                    state.jobs.push_back(job);
                    // victim's Job must drop outside the lock; hand both
                    // pieces out through the Shed arm
                    drop(state);
                    let QueuedJob { run, on_shed } = victim;
                    drop(run);
                    return Enqueued::Shed(on_shed);
                }
            }
        }
    }

    fn settle(&self, outcome: Enqueued) {
        match outcome {
            Enqueued::Accepted => self.shared.available.notify_one(),
            Enqueued::Shed(handler) => {
                self.shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(h) = handler {
                    h();
                }
            }
            Enqueued::Dropped => {}
        }
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        recover::lock(&self.shared.state).jobs.len()
    }

    /// Immediate shutdown: discards queued jobs and waits only for the
    /// jobs already running. Queued-but-never-run jobs are dropped, which
    /// disconnects any response channel they captured.
    pub fn shutdown_now(&mut self) {
        let dropped_jobs: Vec<QueuedJob> = {
            let mut state = recover::lock(&self.shared.state);
            state.shutdown = true;
            state.jobs.drain(..).collect()
        };
        self.shared
            .metrics
            .queue_depth
            .fetch_sub(dropped_jobs.len() as u64, Ordering::Relaxed);
        // dropping outside the lock: job destructors (channel senders,
        // arbitrary captures) must not run under the queue mutex
        drop(dropped_jobs);
        self.shared.available.notify_all();
        self.shared.space.notify_all();
        self.join_workers();
    }

    /// Graceful shutdown: lets workers drain the queue, then joins them.
    /// Equivalent to dropping the pool, but explicit at call sites.
    pub fn join(mut self) {
        self.begin_graceful_shutdown();
        self.join_workers();
    }

    fn begin_graceful_shutdown(&self) {
        let mut state = recover::lock(&self.shared.state);
        state.shutdown = true;
        drop(state);
        self.shared.available.notify_all();
        self.shared.space.notify_all();
    }

    fn join_workers(&mut self) {
        for handle in self.workers.drain(..) {
            // a worker can only die by a panic that escaped its own
            // catch_unwind (e.g. a panicking Job destructor); swallowing
            // the Err here keeps shutdown from cascading the panic
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_graceful_shutdown();
            self.join_workers();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let me = WORKER_INDEX.with(|w| w.get());
    loop {
        // subtasks first: own deque, then injector, then steal. Finishing
        // in-flight requests beats starting new ones, and under the fixed
        // scheduler (`steal: None`) this is a no-op.
        while let Some(sub) = pop_subtask(shared, me) {
            run_subtask(shared, sub);
        }
        let job = {
            let mut state = recover::lock(&shared.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    // any still-queued subtasks belong to requests whose
                    // owning worker is mid-`run_tasks`; the owner's help
                    // loop drains them, so exiting here cannot strand work
                    return;
                }
                // re-check the stealing tier under the queue mutex: a
                // push takes this mutex (empty section) before notifying,
                // so the wakeup cannot slip between this check and wait
                if shared.steal.as_ref().is_some_and(StealState::has_work) {
                    break None;
                }
                state = recover::wait(&shared.available, state);
            }
        };
        let Some(job) = job else {
            continue; // back to the subtask fast path
        };
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared.space.notify_one();
        if catch_unwind(AssertUnwindSafe(job.run)).is_err() {
            shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A cloneable handle to a stealing pool's subtask tier.
#[derive(Clone)]
pub struct StealHandle {
    shared: Arc<Shared>,
}

impl StealHandle {
    /// Pushes a group's subtasks: onto the calling worker's own deque
    /// when the caller is a pool worker, else onto the shared injector.
    /// Wakes every parked worker either way.
    fn push(&self, subs: Vec<SubTask>) {
        let st = self.shared.steal.as_ref().expect("handle implies stealing");
        match WORKER_INDEX.with(|w| w.get()) {
            Some(i) if i < st.locals.len() => {
                recover::lock(&st.locals[i]).extend(subs);
            }
            _ => {
                let n = subs.len() as u64;
                recover::lock(&st.injector).extend(subs);
                self.shared
                    .metrics
                    .injector_depth
                    .fetch_add(n, Ordering::Relaxed);
            }
        }
        // empty critical section pairs with the has_work re-check in
        // worker_loop so a parked worker cannot miss this wakeup
        drop(recover::lock(&self.shared.state));
        self.shared.available.notify_all();
    }
}

/// The stealing pool's per-request implementation of the engine's
/// [`TaskExecutor`]: component subtasks run on existing pool workers
/// (owner included) instead of freshly spawned scoped threads.
///
/// Semantics preserved from the fixed path:
///
/// * **Cancellation** — the group is dropped wholesale if the request is
///   already cancelled, and every subtask re-checks the token where it
///   runs (a stolen subtask from a cancelled request short-circuits).
///   Skipped subtasks leave their component's result missing, which the
///   engine reports as a cancelled evaluation — exactly the skip
///   contract of [`TaskExecutor::run_tasks`].
/// * **Panic containment** — a panicking subtask is caught where it ran;
///   the first payload is re-thrown on the owner after the barrier, so
///   request-level containment sees the same panic the fixed path's
///   scope join would deliver.
/// * **Determinism** — stealing reorders execution only; the engine
///   combines component results in canonical order on the owner.
pub struct StealingExecutor {
    handle: StealHandle,
    cancel: CancelToken,
}

impl StealingExecutor {
    /// An executor for one request, carrying its ticket's cancel token.
    pub fn new(handle: StealHandle, cancel: CancelToken) -> Self {
        StealingExecutor { handle, cancel }
    }
}

impl TaskExecutor for StealingExecutor {
    fn run_tasks(&self, tasks: Vec<ParTask>) {
        if tasks.is_empty() {
            return;
        }
        if self.cancel.is_cancelled() {
            return; // skip the whole group: the engine sees missing results
        }
        let group = Arc::new(TaskGroup {
            state: Mutex::new(GroupState {
                remaining: tasks.len(),
                panic: None,
            }),
            done: Condvar::new(),
        });
        let subs: Vec<SubTask> = tasks
            .into_iter()
            .map(|task| {
                let group = Arc::clone(&group);
                let cancel = self.cancel.clone();
                SubTask {
                    run: Box::new(move || {
                        let outcome = if cancel.is_cancelled() {
                            Ok(())
                        } else {
                            catch_unwind(AssertUnwindSafe(task))
                        };
                        let mut st = recover::lock(&group.state);
                        st.remaining -= 1;
                        if let Err(payload) = outcome {
                            st.panic.get_or_insert(payload);
                        }
                        drop(st);
                        group.done.notify_all();
                    }),
                }
            })
            .collect();
        self.handle.push(subs);
        // help until the barrier clears: run whatever is schedulable
        // (this group's subtasks first — they sit in our own deque — but
        // also other requests' work while ours is stolen and in flight)
        let shared = &self.handle.shared;
        let me = WORKER_INDEX.with(|w| w.get());
        loop {
            if recover::lock(&group.state).remaining == 0 {
                break;
            }
            match pop_subtask(shared, me) {
                Some(sub) => run_subtask(shared, sub),
                None => {
                    // nothing schedulable: our stragglers are running on
                    // other workers; park on the group barrier
                    let mut st = recover::lock(&group.state);
                    while st.remaining > 0 {
                        st = recover::wait(&group.done, st);
                    }
                    break;
                }
            }
        }
        let payload = recover::lock(&group.state).panic.take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TICKET_GRACE;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs_across_workers() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::new(4, Arc::clone(&metrics));
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.queue_cap(), 4 * DEFAULT_QUEUE_CAP_PER_THREAD);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 0);
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn batch_submission_runs_everything() {
        let pool = ThreadPool::new(2, Arc::new(Metrics::new()));
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..50)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.submit_batch(jobs);
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn graceful_drop_drains_the_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(1, Arc::new(Metrics::new()));
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // drop here: must finish all 20, not abandon them
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn shutdown_now_drops_queued_jobs_and_disconnects_receivers() {
        let metrics = Arc::new(Metrics::new());
        // explicit capacity: all 10 jobs must *queue* behind the blocker
        // without the Block policy stalling the submitting thread
        let mut pool = ThreadPool::with_config(
            PoolConfig {
                queue_cap: Some(16),
                ..PoolConfig::new(1)
            },
            Arc::clone(&metrics),
        );
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // first job occupies the single worker until we release it
        pool.submit(move || {
            block_rx.recv().ok();
        });
        let mut waiters = Vec::new();
        for i in 0..10 {
            let (tx, rx) = mpsc::channel::<u32>();
            pool.submit(move || {
                tx.send(i).ok();
            });
            waiters.push(rx);
        }
        block_tx.send(()).ok(); // release the in-flight job
        pool.shutdown_now();
        // every queued job either ran (sent) or was dropped (disconnect);
        // none may leave its receiver hanging
        for rx in waiters {
            match rx.recv_timeout(TICKET_GRACE) {
                Ok(_) | Err(mpsc::RecvTimeoutError::Disconnected) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    panic!("receiver left hanging after shutdown_now")
                }
            }
        }
    }

    #[test]
    fn worker_survives_job_panics() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::new(1, Arc::clone(&metrics));
        pool.submit(|| panic!("job goes boom"));
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_stays_usable_after_a_panic_poisons_nothing() {
        // a worker panic must not wedge the pool: submit and shutdown
        // still work afterwards, and the panic is on the record
        let metrics = Arc::new(Metrics::new());
        let mut pool = ThreadPool::new(2, Arc::clone(&metrics));
        pool.submit(|| panic!("worker holds no job state"));
        // wait until the panic has been recorded
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while metrics.panics.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline, "panic never recorded");
            std::thread::yield_now();
        }
        let (tx, rx) = mpsc::channel::<u32>();
        pool.submit(move || {
            tx.send(42).ok();
        });
        assert_eq!(rx.recv_timeout(TICKET_GRACE).unwrap(), 42);
        assert_eq!(pool.queue_depth(), 0);
        pool.shutdown_now();
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn block_policy_applies_backpressure_without_losing_jobs() {
        let metrics = Arc::new(Metrics::new());
        let pool = ThreadPool::with_config(
            PoolConfig {
                queue_cap: Some(2),
                ..PoolConfig::new(1)
            },
            Arc::clone(&metrics),
        );
        let counter = Arc::new(AtomicU64::new(0));
        // 30 jobs through a 2-slot queue: the submitter must block, and
        // every job must still run
        for _ in 0..30 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(100));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn reject_newest_sheds_incoming_and_runs_its_handler() {
        let metrics = Arc::new(Metrics::new());
        let mut pool = ThreadPool::with_config(
            PoolConfig {
                queue_cap: Some(1),
                overflow: OverflowPolicy::RejectNewest,
                ..PoolConfig::new(1)
            },
            Arc::clone(&metrics),
        );
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            block_rx.recv().ok();
        });
        // wait until the blocker is actually running (queue empty again)
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while pool.queue_depth() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        let ran = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        // fills the single slot
        let r = Arc::clone(&ran);
        pool.submit_with_shed(
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
            None,
        );
        // queue full: this one must be rejected and its handler run
        let r = Arc::clone(&ran);
        let s = Arc::clone(&shed);
        pool.submit_with_shed(
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
            Some(Box::new(move || {
                s.fetch_add(1, Ordering::Relaxed);
            })),
        );
        assert_eq!(shed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
        block_tx.send(()).ok();
        // the accepted job must run before shutdown_now drains the
        // queue, or this races the worker's dequeue on a busy box
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while ran.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        pool.shutdown_now();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    fn stealing_pool(threads: usize, metrics: &Arc<Metrics>) -> ThreadPool {
        ThreadPool::with_config(
            PoolConfig {
                scheduler: SchedulerKind::Stealing,
                ..PoolConfig::new(threads)
            },
            Arc::clone(metrics),
        )
    }

    #[test]
    fn fixed_pool_has_no_steal_handle() {
        let pool = ThreadPool::new(2, Arc::new(Metrics::new()));
        assert!(pool.steal_handle().is_none());
    }

    #[test]
    fn external_owner_drains_its_group_through_the_injector() {
        let metrics = Arc::new(Metrics::new());
        let pool = stealing_pool(2, &metrics);
        let exec = StealingExecutor::new(pool.steal_handle().unwrap(), CancelToken::new());
        let counter = Arc::new(AtomicU64::new(0));
        let tasks: Vec<ParTask> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as ParTask
            })
            .collect();
        // the test thread is not a pool worker: the group goes through
        // the shared injector, and run_tasks is a completion barrier
        exec.run_tasks(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(metrics.injector_depth.load(Ordering::Relaxed), 0);
        pool.join();
    }

    #[test]
    fn idle_worker_steals_from_a_busy_owner() {
        let metrics = Arc::new(Metrics::new());
        let pool = stealing_pool(2, &metrics);
        let handle = pool.steal_handle().unwrap();
        let (done_tx, done_rx) = mpsc::channel::<u64>();
        pool.submit(move || {
            let exec = StealingExecutor::new(handle, CancelToken::new());
            let (sig_tx, sig_rx) = mpsc::channel::<()>();
            // push order [signal, block]: the owner pops its own BACK
            // (the blocking task), so the signal task can only run if the
            // idle worker steals it from the deque's front
            let tasks: Vec<ParTask> = vec![
                Box::new(move || {
                    sig_tx.send(()).ok();
                }),
                Box::new(move || {
                    sig_rx.recv_timeout(TICKET_GRACE).expect("steal happened");
                }),
            ];
            exec.run_tasks(tasks);
            done_tx.send(42).ok();
        });
        assert_eq!(done_rx.recv_timeout(TICKET_GRACE).unwrap(), 42);
        assert!(metrics.steals.load(Ordering::Relaxed) >= 1);
        let per_worker = metrics
            .worker_tasks
            .get()
            .expect("stealing pool sizes counters");
        let total: u64 = per_worker.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 2, "both subtasks ran on pool workers");
        pool.join();
    }

    #[test]
    fn cancelled_request_subtasks_short_circuit() {
        let metrics = Arc::new(Metrics::new());
        let pool = stealing_pool(1, &metrics);
        let handle = pool.steal_handle().unwrap();
        let ran = Arc::new(AtomicU64::new(0));

        // already-cancelled request: the whole group is skipped
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let exec = StealingExecutor::new(handle.clone(), cancelled);
        let r = Arc::clone(&ran);
        exec.run_tasks(vec![Box::new(move || {
            r.fetch_add(1, Ordering::Relaxed);
        }) as ParTask]);
        assert_eq!(ran.load(Ordering::Relaxed), 0);

        // cancellation mid-group: occupy the single worker so the test
        // thread runs its own subtasks in push order — the first cancels
        // the token, so the second (a "stolen task from a cancelled
        // request" in scheduler terms) must short-circuit
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            block_rx.recv().ok();
        });
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while pool.queue_depth() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "blocker never started"
            );
            std::thread::yield_now();
        }
        let token = CancelToken::new();
        let exec = StealingExecutor::new(handle, token.clone());
        let r = Arc::clone(&ran);
        let tasks: Vec<ParTask> = vec![
            Box::new(move || {
                token.cancel();
            }),
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
        ];
        exec.run_tasks(tasks); // must return (skips still drain the barrier)
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        block_tx.send(()).ok();
        pool.join();
    }

    #[test]
    fn subtask_panic_resurfaces_on_the_owner_and_spares_the_workers() {
        let metrics = Arc::new(Metrics::new());
        let pool = stealing_pool(2, &metrics);
        let exec = StealingExecutor::new(pool.steal_handle().unwrap(), CancelToken::new());
        let survivor = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&survivor);
        let tasks: Vec<ParTask> = vec![
            Box::new(|| panic!("component goes boom")),
            Box::new(move || {
                s.fetch_add(1, Ordering::Relaxed);
            }),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| exec.run_tasks(tasks)))
            .expect_err("owner re-throws the subtask panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "component goes boom");
        // the barrier drained: the sibling subtask still ran
        assert_eq!(survivor.load(Ordering::Relaxed), 1);
        // containment happened at the executor, not the worker loop
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 0);
        // workers survive: the pool still runs ordinary jobs
        let (tx, rx) = mpsc::channel::<u32>();
        pool.submit(move || {
            tx.send(7).ok();
        });
        assert_eq!(rx.recv_timeout(TICKET_GRACE).unwrap(), 7);
        pool.join();
    }

    #[test]
    fn shed_oldest_evicts_the_queued_victim() {
        let metrics = Arc::new(Metrics::new());
        let mut pool = ThreadPool::with_config(
            PoolConfig {
                queue_cap: Some(1),
                overflow: OverflowPolicy::ShedOldest,
                ..PoolConfig::new(1)
            },
            Arc::clone(&metrics),
        );
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            block_rx.recv().ok();
        });
        let deadline = std::time::Instant::now() + TICKET_GRACE;
        while pool.queue_depth() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        let (first_tx, first_rx) = mpsc::channel::<&str>();
        let (second_tx, second_rx) = mpsc::channel::<&str>();
        let ftx = first_tx.clone();
        pool.submit_with_shed(
            Box::new(move || {
                ftx.send("ran").ok();
            }),
            Some(Box::new(move || {
                first_tx.send("shed").ok();
            })),
        );
        // queue full: the *first* job is evicted, the second takes its slot
        let stx = second_tx.clone();
        pool.submit_with_shed(
            Box::new(move || {
                stx.send("ran").ok();
            }),
            Some(Box::new(move || {
                second_tx.send("shed").ok();
            })),
        );
        assert_eq!(first_rx.recv_timeout(TICKET_GRACE).unwrap(), "shed");
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
        block_tx.send(()).ok();
        assert_eq!(second_rx.recv_timeout(TICKET_GRACE).unwrap(), "ran");
        pool.shutdown_now();
    }
}

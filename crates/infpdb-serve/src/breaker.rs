//! A per-engine circuit breaker: fail fast after consecutive failures.
//!
//! Retrying a persistently failing engine wastes the pool on work that
//! cannot succeed and amplifies an outage under load. The breaker trips
//! **open** after [`BreakerConfig::threshold`] consecutive failures:
//! requests then fail fast with
//! [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen) instead of
//! evaluating. After [`BreakerConfig::cooldown`] the breaker goes
//! **half-open** and admits exactly one probe request; the probe's
//! outcome closes the breaker (success) or re-opens it for another
//! cooldown (failure).
//!
//! The breaker guards the *evaluation* stage only — it is consulted at
//! the cache-miss point, so cached answers keep serving while open.
//! Lock-free: two atomics, CAS for the single-probe election.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open. `0` disables
    /// the breaker entirely.
    pub threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown: Duration::from_millis(100),
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips.
    pub fn disabled() -> Self {
        BreakerConfig {
            threshold: 0,
            cooldown: Duration::ZERO,
        }
    }
}

/// The breaker's answer to "may this request evaluate?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed (or half-open probe slot won): evaluate normally.
    Proceed,
    /// Open: fail fast; the payload is the consecutive-failure count
    /// that tripped the breaker.
    FastFail(u32),
}

/// A lock-free consecutive-failure circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    consecutive_failures: AtomicU32,
    /// Nanoseconds (relative to `epoch`) at which the cooldown ends;
    /// 0 = closed.
    open_until_nanos: AtomicU64,
    /// Half-open: set while one probe is in flight.
    probing: AtomicBool,
    epoch: Instant,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            consecutive_failures: AtomicU32::new(0),
            open_until_nanos: AtomicU64::new(0),
            probing: AtomicBool::new(false),
            epoch: Instant::now(),
        }
    }

    fn now_nanos(&self) -> u64 {
        // saturating: good for > 500 years of uptime
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Consult the breaker before evaluating.
    pub fn admit(&self) -> Admission {
        if self.config.threshold == 0 {
            return Admission::Proceed;
        }
        let open_until = self.open_until_nanos.load(Ordering::Acquire);
        if open_until == 0 {
            return Admission::Proceed;
        }
        if self.now_nanos() < open_until {
            return Admission::FastFail(self.consecutive_failures.load(Ordering::Relaxed));
        }
        // cooldown over: half-open; elect exactly one probe
        if self
            .probing
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Admission::Proceed
        } else {
            Admission::FastFail(self.consecutive_failures.load(Ordering::Relaxed))
        }
    }

    /// Record a successful evaluation: closes the breaker.
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.open_until_nanos.store(0, Ordering::Release);
        self.probing.store(false, Ordering::Release);
    }

    /// Record a failed evaluation: trips the breaker at the threshold,
    /// re-opens it when a half-open probe fails.
    pub fn record_failure(&self) {
        if self.config.threshold == 0 {
            return;
        }
        let failures = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= self.config.threshold {
            let until =
                self.now_nanos() + self.config.cooldown.as_nanos().min(u128::from(u64::MAX)) as u64;
            self.open_until_nanos.store(until.max(1), Ordering::Release);
        }
        self.probing.store(false, Ordering::Release);
    }

    /// Whether the breaker is currently open (fast-failing).
    pub fn is_open(&self) -> bool {
        matches!(self.admit_peek(), Admission::FastFail(_))
    }

    /// Like [`CircuitBreaker::admit`] but without claiming the probe slot.
    fn admit_peek(&self) -> Admission {
        let open_until = self.open_until_nanos.load(Ordering::Acquire);
        if open_until != 0 && self.now_nanos() < open_until {
            Admission::FastFail(self.consecutive_failures.load(Ordering::Relaxed))
        } else {
            Admission::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown,
        })
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = breaker(3, Duration::from_secs(60));
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admission::Proceed);
        // a success resets the streak
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admission::Proceed);
    }

    #[test]
    fn trips_open_at_threshold_and_fast_fails() {
        let b = breaker(3, Duration::from_secs(60));
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(b.is_open());
        match b.admit() {
            Admission::FastFail(n) => assert_eq!(n, 3),
            other => panic!("expected fast-fail, got {other:?}"),
        }
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let b = breaker(2, Duration::ZERO);
        b.record_failure();
        b.record_failure();
        // cooldown of zero: immediately half-open
        assert_eq!(b.admit(), Admission::Proceed); // the probe
        assert!(matches!(b.admit(), Admission::FastFail(_))); // concurrent request
        b.record_success();
        assert_eq!(b.admit(), Admission::Proceed);
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker(2, Duration::ZERO);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admission::Proceed); // probe
        b.record_failure(); // probe failed
                            // half-open again (zero cooldown): the next admit is a new probe
        assert_eq!(b.admit(), Admission::Proceed);
        assert!(matches!(b.admit(), Admission::FastFail(_)));
    }

    #[test]
    fn zero_threshold_disables() {
        let b = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..100 {
            b.record_failure();
        }
        assert_eq!(b.admit(), Admission::Proceed);
        assert!(!b.is_open());
    }
}

//! Sharded LRU result cache.
//!
//! Keys are 64-bit [cache-key digests](crate::fingerprint::CacheKey); the
//! key space is pre-hashed, so shard selection and the inner `HashMap`
//! both work on already-uniform integers. Sharding bounds contention:
//! each shard has its own mutex, and a lookup touches exactly one shard.
//!
//! Eviction is least-recently-used per shard, tracked with a logical
//! clock per entry. Eviction scans the shard for the minimum clock —
//! `O(shard capacity)` — which is deliberate: shard capacities in this
//! service are small (hundreds), the scan is branch-predictable, and it
//! avoids the unsafe linked-list machinery of textbook O(1) LRU.

use crate::recover;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    clock: u64,
    capacity: usize,
}

impl<V: Clone> Shard<V> {
    fn get(&mut self, key: u64) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&key).map(|e| {
            e.last_used = clock;
            e.value.clone()
        })
    }

    /// Returns whether an existing entry was evicted to make room.
    fn insert(&mut self, key: u64, value: V) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.map.get_mut(&key) {
            e.value = value;
            e.last_used = clock;
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                evicted = true;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
        evicted
    }
}

/// A sharded LRU map from 64-bit digests to cached values.
pub struct ShardedLruCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedLruCache<V> {
    /// A cache holding at most `capacity` entries spread over `shards`
    /// independently locked shards (both forced to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Looks up a digest, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let got = recover::lock(self.shard(key)).get(key);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Inserts (or refreshes) a value, evicting the shard's LRU entry if
    /// the shard is full.
    pub fn insert(&self, key: u64, value: V) {
        if recover::lock(self.shard(key)).insert(key, value) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| recover::lock(s).map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries displaced by LRU eviction (refreshes don't count).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counters() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(8, 2);
        assert_eq!(c.get(1), None);
        c.insert(1, 11);
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // single shard, capacity 2, fully deterministic LRU order
        let c: ShardedLruCache<&str> = ShardedLruCache::new(2, 1);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(1), Some("one")); // 1 is now most recent
        c.insert(3, "three"); // evicts 2
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some("one"));
        assert_eq!(c.get(3), Some("three"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn insert_refreshes_existing_keys() {
        let c: ShardedLruCache<u32> = ShardedLruCache::new(2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, not a new entry: nothing evicted
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        c.insert(3, 30); // now 2 is LRU
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(11));
    }

    #[test]
    fn sharding_spreads_keys() {
        let c: ShardedLruCache<u64> = ShardedLruCache::new(64, 4);
        for k in 0..32u64 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 32);
        let occupied = c
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert!(occupied > 1, "consecutive keys should hit several shards");
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c: Arc<ShardedLruCache<u64>> = Arc::new(ShardedLruCache::new(128, 8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 131 + i) % 200;
                        c.insert(k, k);
                        assert!(c.get(k).is_none_or(|v| v == k));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.hits() + c.misses() == 2000);
    }
}

//! Concurrency stress tests for the serving layer (ISSUE tentpole
//! acceptance): many client threads hammer one [`QueryService`] and every
//! concurrent answer is cross-checked bit-for-bit against a sequential
//! evaluation through plain `infpdb-query`.

use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_math::series::{GeometricSeries, ZetaSeries};
use infpdb_query::approx::approx_prob_boolean;
use infpdb_serve::{QueryRequest, QueryService, ServeError, ServiceConfig};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const CLIENT_THREADS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 100;

fn geometric_pdb() -> CountableTiPdb {
    let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema,
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap()
}

/// A workload of distinct (query, ε) combinations. Mixing a small set of
/// repeated combinations with per-client tolerances gives both guaranteed
/// cache hits and guaranteed cache misses.
fn workload(schema: &Schema) -> Vec<(infpdb_logic::ast::Formula, f64)> {
    let queries = [
        "R(1)",
        "R(2)",
        "!R(1)",
        "R(1) /\\ R(2)",
        "R(1) \\/ R(3)",
        "exists x. R(x)",
        "!(exists x. R(x))",
        "R(1) /\\ !R(2)",
        "exists x. exists y. R(x) /\\ R(y)",
        "forall x. R(x)",
    ];
    let tolerances = [0.05, 0.01, 0.002];
    let mut combos = Vec::new();
    for q in queries {
        for eps in tolerances {
            combos.push((parse(q, schema).unwrap(), eps));
        }
    }
    combos
}

#[test]
fn concurrent_answers_are_byte_identical_to_sequential() {
    let pdb = geometric_pdb();
    let combos = workload(pdb.schema());

    // ground truth, sequentially, through plain infpdb-query
    let expected: Vec<u64> = combos
        .iter()
        .map(|(q, eps)| {
            approx_prob_boolean(&pdb, q, *eps, Engine::Auto)
                .unwrap()
                .estimate
                .to_bits()
        })
        .collect();

    let svc = Arc::new(QueryService::new(
        pdb,
        ServiceConfig {
            threads: 4,
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
    ));

    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let combos = combos.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                // half the clients submit one by one, half in batches
                let picks: Vec<usize> = (0..REQUESTS_PER_CLIENT)
                    .map(|i| (t * 31 + i * 7) % combos.len())
                    .collect();
                let responses: Vec<_> = if t % 2 == 0 {
                    picks
                        .iter()
                        .map(|&c| {
                            let (q, eps) = &combos[c];
                            svc.submit(QueryRequest::new(q.clone(), *eps)).wait()
                        })
                        .collect()
                } else {
                    let reqs = picks
                        .iter()
                        .map(|&c| {
                            let (q, eps) = &combos[c];
                            QueryRequest::new(q.clone(), *eps)
                        })
                        .collect();
                    svc.submit_batch(reqs)
                        .into_iter()
                        .map(|ticket| ticket.wait())
                        .collect()
                };
                for (&c, resp) in picks.iter().zip(responses) {
                    let resp = resp.expect("no rejections in an unbudgeted workload");
                    assert_eq!(
                        resp.approx.estimate.to_bits(),
                        expected[c],
                        "client {t} combo {c}: concurrent answer diverged from sequential"
                    );
                    assert_eq!(resp.approx.eps, combos[c].1);
                    assert!(!resp.degraded);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread panicked");
    }

    let total = (CLIENT_THREADS * REQUESTS_PER_CLIENT) as u64;
    let m = svc.metrics();
    assert_eq!(m.submitted.load(Ordering::Relaxed), total);
    assert_eq!(m.completed.load(Ordering::Relaxed), total);
    let hits = m.cache_hits.load(Ordering::Relaxed);
    let misses = m.cache_misses.load(Ordering::Relaxed);
    assert_eq!(hits + misses, total);
    // 800 requests over 30 distinct keys: hits are guaranteed, and at
    // most one miss per key can escape even a racy first round
    assert!(hits > 0, "expected cache hits, got none");
    assert!(
        misses >= combos.len() as u64,
        "every distinct key must miss at least once"
    );
    assert_eq!(m.errors.load(Ordering::Relaxed), 0);
    assert_eq!(m.panics.load(Ordering::Relaxed), 0);
    assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
    assert_eq!(m.wait.count(), total);

    let dump = m.dump();
    assert!(dump.contains("serve_requests_completed_total 800"));
}

#[test]
fn shutdown_mid_flight_never_deadlocks_or_hangs_tickets() {
    // slow convergence (ζ(2) tail) + tight ε makes each evaluation carry
    // a large truncation, so shutdown lands while work is genuinely
    // in flight
    let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
    let pdb = CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema,
        RelId(0),
        ZetaSeries::basel(),
    ))
    .unwrap();
    let q = parse("exists x. R(x)", pdb.schema()).unwrap();

    let mut svc = QueryService::new(
        pdb,
        ServiceConfig {
            threads: 2,
            // room for the whole burst: with the default bounded queue
            // (8 × threads, Block policy) the submission loop below would
            // block until workers drain, and shutdown would find an
            // almost-empty queue — defeating the "drop queued jobs" check
            queue_cap: Some(64),
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = (0..64)
        .map(|i| {
            // distinct tolerances defeat the cache: every job evaluates
            let eps = 0.001 + (i as f64) * 1e-6;
            svc.submit(QueryRequest::new(q.clone(), eps))
        })
        .collect();
    svc.shutdown_now();

    // every ticket must resolve — a deadlock hangs the suite right here
    let mut finished = 0;
    let mut dropped = 0;
    for t in tickets {
        match t.wait() {
            Ok(_) => finished += 1,
            Err(ServeError::Shutdown) => dropped += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(finished + dropped, 64);
    assert!(dropped > 0, "shutdown_now should have dropped queued jobs");
    assert_eq!(svc.queue_depth(), 0);
}

#[test]
fn graceful_join_drains_every_request() {
    let pdb = geometric_pdb();
    let q = parse("exists x. R(x)", pdb.schema()).unwrap();
    let svc = QueryService::new(
        pdb,
        ServiceConfig {
            threads: 3,
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = (0..50)
        .map(|i| {
            let eps = 0.01 + (i % 5) as f64 * 0.01;
            svc.submit(QueryRequest::new(q.clone(), eps))
        })
        .collect();
    svc.join(); // graceful: must run everything already queued
    for t in tickets {
        t.wait().expect("graceful join must not drop queued work");
    }
}

//! Deterministic chaos tests (ISSUE tentpole acceptance): a seeded
//! [`FaultInjector`] fires panics, transient errors, and latency at the
//! three named request-path sites (`admission`, `engine`, `cache_insert`)
//! while a workload runs, and the suite asserts the full resilience
//! contract:
//!
//! * **every ticket resolves** — no fault may hang a client;
//! * **no wrong answers** — every success is bit-for-bit identical to a
//!   sequential evaluation through plain `infpdb-query`, and any partial
//!   result's certificate encloses the truth;
//! * **exact accounting** — shed / panic / cancel / error metrics match
//!   the injected counts exactly (budgeted triggers make this possible);
//! * **the pool stays healthy** — after the chaos, a fresh request
//!   succeeds and the queue is empty.
//!
//! Seeds come from `INFPDB_CHAOS_SEED` when set (the CI `chaos` job runs
//! three fixed seeds); otherwise each test loops over a built-in trio.

use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_query::approx::approx_prob_boolean;
use infpdb_serve::{
    BreakerConfig, FaultInjector, FaultKind, OverflowPolicy, QueryRequest, QueryService,
    RetryPolicy, ServeError, ServiceConfig, Trigger,
};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn seeds() -> Vec<u64> {
    match std::env::var("INFPDB_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("INFPDB_CHAOS_SEED must be a u64")],
        Err(_) => vec![0xC0FFEE, 42, 7],
    }
}

fn geometric_pdb() -> CountableTiPdb {
    let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema,
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap()
}

/// A small mixed workload: distinct (query, ε) keys so the cache cannot
/// absorb everything, with enough volume to exhaust every fault budget.
fn workload(pdb: &CountableTiPdb) -> Vec<(infpdb_logic::ast::Formula, f64)> {
    let queries = [
        "R(1)",
        "!R(1)",
        "R(1) /\\ R(2)",
        "exists x. R(x)",
        "R(1) \\/ R(3)",
    ];
    let tolerances = [0.05, 0.01];
    let mut combos = Vec::new();
    for q in queries {
        for eps in tolerances {
            combos.push((parse(q, pdb.schema()).unwrap(), eps));
        }
    }
    combos
}

/// Outcome tally for a batch of resolved tickets.
#[derive(Default, Debug)]
struct Tally {
    ok: u64,
    transient: u64,
    panic: u64,
    overloaded: u64,
}

/// After the chaos: clear every fault and prove the service still works.
fn assert_pool_healthy(svc: &QueryService, faults: &FaultInjector, pdb: &CountableTiPdb) {
    for site in ["admission", "engine", "cache_insert"] {
        faults.clear(site);
    }
    // a previously unseen ε forces a genuine evaluation, not a cache hit
    let q = parse("exists x. R(x)", pdb.schema()).unwrap();
    let resp = svc
        .submit(QueryRequest::new(q.clone(), 0.0037))
        .wait()
        .expect("service must accept fresh work after the chaos");
    let expected = approx_prob_boolean(pdb, &q, 0.0037, Engine::Auto).unwrap();
    assert_eq!(resp.approx.estimate.to_bits(), expected.estimate.to_bits());
    assert_eq!(svc.metrics().queue_depth.load(Ordering::Relaxed), 0);
}

#[test]
fn faults_at_three_sites_every_ticket_resolves_and_successes_match_sequential() {
    for seed in seeds() {
        let pdb = geometric_pdb();
        let combos = workload(&pdb);
        let expected: Vec<u64> = combos
            .iter()
            .map(|(q, eps)| {
                approx_prob_boolean(&pdb, q, *eps, Engine::Auto)
                    .unwrap()
                    .estimate
                    .to_bits()
            })
            .collect();

        const ADMISSION_ERRORS: u64 = 2;
        const ENGINE_PANICS: u64 = 3;
        const INSERT_LATENCIES: u64 = 2;
        let faults = Arc::new(FaultInjector::new(seed));
        faults.inject(
            "admission",
            FaultKind::Error,
            Trigger::Times(ADMISSION_ERRORS),
        );
        faults.inject("engine", FaultKind::Panic, Trigger::Times(ENGINE_PANICS));
        faults.inject(
            "cache_insert",
            FaultKind::Latency(Duration::from_millis(1)),
            Trigger::Times(INSERT_LATENCIES),
        );

        let svc = QueryService::with_faults(
            pdb.clone(),
            ServiceConfig {
                threads: 2,
                // no retries and no breaker: every injected failure
                // surfaces on exactly one ticket, so counts are exact
                retry: RetryPolicy::none(),
                breaker: BreakerConfig::disabled(),
                ..ServiceConfig::default()
            },
            Arc::clone(&faults),
        );

        const ROUNDS: usize = 4;
        let mut tally = Tally::default();
        for round in 0..ROUNDS {
            // seed-dependent submission order: different seeds hit the
            // fault budgets from different interleavings
            for i in 0..combos.len() {
                let c = (i + (seed as usize) * 7 + round) % combos.len();
                let (q, eps) = &combos[c];
                match svc.submit(QueryRequest::new(q.clone(), *eps)).wait() {
                    Ok(resp) => {
                        tally.ok += 1;
                        assert_eq!(
                            resp.approx.estimate.to_bits(),
                            expected[c],
                            "seed {seed}: chaotic answer diverged from sequential"
                        );
                    }
                    Err(ServeError::Transient { site }) => {
                        tally.transient += 1;
                        assert_eq!(site, "admission");
                    }
                    Err(ServeError::EnginePanic { payload }) => {
                        tally.panic += 1;
                        assert!(payload.contains("injected fault"), "{payload}");
                    }
                    Err(e) => panic!("seed {seed}: unexpected outcome {e}"),
                }
            }
        }
        let total = (ROUNDS * combos.len()) as u64;
        assert_eq!(tally.ok + tally.transient + tally.panic, total);

        // exact accounting: every budget fully spent, every fire visible
        // on exactly one ticket and one metric
        assert_eq!(faults.fired("admission"), ADMISSION_ERRORS);
        assert_eq!(faults.fired("engine"), ENGINE_PANICS);
        assert_eq!(faults.fired("cache_insert"), INSERT_LATENCIES);
        assert_eq!(tally.transient, ADMISSION_ERRORS);
        assert_eq!(tally.panic, ENGINE_PANICS);
        let m = svc.metrics();
        assert_eq!(m.panics.load(Ordering::Relaxed), ENGINE_PANICS);
        assert_eq!(
            m.errors.load(Ordering::Relaxed),
            ADMISSION_ERRORS + ENGINE_PANICS
        );
        assert_eq!(m.completed.load(Ordering::Relaxed), tally.ok);
        assert_eq!(m.shed.load(Ordering::Relaxed), 0);
        assert_eq!(m.cancelled.load(Ordering::Relaxed), 0);

        assert_pool_healthy(&svc, &faults, &pdb);
    }
}

#[test]
fn overload_sheds_are_counted_exactly_and_resolve_as_overloaded() {
    for seed in seeds() {
        let pdb = geometric_pdb();
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();
        let truth = approx_prob_boolean(&pdb, &q, 0.01, Engine::Auto).unwrap();

        let faults = Arc::new(FaultInjector::new(seed));
        // slow every evaluation so the burst below overflows the queue
        faults.inject(
            "engine",
            FaultKind::Latency(Duration::from_millis(20)),
            Trigger::Always,
        );
        let svc = QueryService::with_faults(
            pdb.clone(),
            ServiceConfig {
                threads: 1,
                queue_cap: Some(2),
                overflow: OverflowPolicy::RejectNewest,
                retry: RetryPolicy::none(),
                breaker: BreakerConfig::disabled(),
                ..ServiceConfig::default()
            },
            Arc::clone(&faults),
        );

        // distinct tolerances defeat the cache: every accepted job
        // occupies the single worker for the injected 20 ms
        let tickets: Vec<_> = (0..20)
            .map(|i| {
                let eps = 0.01 + (i as f64) * 1e-5;
                svc.submit(QueryRequest::new(q.clone(), eps))
            })
            .collect();

        let mut tally = Tally::default();
        for t in tickets {
            match t.wait() {
                Ok(resp) => {
                    tally.ok += 1;
                    // same query, near-identical ε: the estimate must
                    // still carry a valid certificate around the truth
                    assert!((resp.approx.estimate - truth.estimate).abs() <= 2.0 * 0.011);
                }
                Err(ServeError::Overloaded { queue_cap }) => {
                    tally.overloaded += 1;
                    assert_eq!(queue_cap, 2);
                }
                Err(e) => panic!("seed {seed}: unexpected outcome {e}"),
            }
        }
        assert_eq!(tally.ok + tally.overloaded, 20);
        assert!(tally.overloaded > 0, "burst must overflow a 2-slot queue");
        let m = svc.metrics();
        assert_eq!(m.shed.load(Ordering::Relaxed), tally.overloaded);
        assert_eq!(m.completed.load(Ordering::Relaxed), tally.ok);

        assert_pool_healthy(&svc, &faults, &pdb);
    }
}

#[test]
fn cancellations_resolve_exactly_and_partials_are_sound() {
    for seed in seeds() {
        let pdb = geometric_pdb();
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();
        // a near-exact truth for the certificate check below
        let truth = approx_prob_boolean(&pdb, &q, 1e-6, Engine::Auto)
            .unwrap()
            .estimate;

        let faults = Arc::new(FaultInjector::new(seed));
        // pin the single worker inside the first job long enough for the
        // cancellations below to land while the victims are still queued
        faults.inject(
            "engine",
            FaultKind::Latency(Duration::from_millis(150)),
            Trigger::Times(1),
        );
        let svc = QueryService::with_faults(
            pdb.clone(),
            ServiceConfig {
                threads: 1,
                queue_cap: Some(16),
                retry: RetryPolicy::none(),
                breaker: BreakerConfig::disabled(),
                ..ServiceConfig::default()
            },
            Arc::clone(&faults),
        );

        let blocker = svc.submit(QueryRequest::new(q.clone(), 0.02));
        let victims: Vec<_> = (0..3)
            .map(|i| {
                let eps = 0.02 + (i as f64 + 1.0) * 1e-4;
                svc.submit(QueryRequest::new(q.clone(), eps))
            })
            .collect();
        for v in &victims {
            v.cancel();
        }

        blocker
            .wait()
            .expect("the latency-injected job still succeeds");
        let mut cancelled = 0u64;
        for v in victims {
            match v.wait() {
                Err(ServeError::Cancelled {
                    facts_processed,
                    partial,
                }) => {
                    cancelled += 1;
                    if let Some(p) = partial {
                        // a partial is a bona fide Proposition 6.1
                        // certificate: it must enclose the truth
                        assert!(p.eps < 0.5);
                        assert!(
                            (p.estimate - truth).abs() <= p.eps + 1e-6,
                            "seed {seed}: partial at {facts_processed} facts violated its certificate"
                        );
                    }
                }
                other => panic!("seed {seed}: expected Cancelled, got {other:?}"),
            }
        }
        assert_eq!(cancelled, 3);
        let m = svc.metrics();
        assert_eq!(m.cancelled.load(Ordering::Relaxed), 3);
        assert!(m.dump().contains("serve_cancelled_total 3"));

        assert_pool_healthy(&svc, &faults, &pdb);
    }
}

#[test]
fn probabilistic_engine_faults_with_retries_never_corrupt_answers() {
    for seed in seeds() {
        let pdb = geometric_pdb();
        let combos = workload(&pdb);
        let expected: Vec<u64> = combos
            .iter()
            .map(|(q, eps)| {
                approx_prob_boolean(&pdb, q, *eps, Engine::Auto)
                    .unwrap()
                    .estimate
                    .to_bits()
            })
            .collect();

        let faults = Arc::new(FaultInjector::new(seed));
        faults.inject("engine", FaultKind::Error, Trigger::Probability(0.3));
        let svc = QueryService::with_faults(
            pdb.clone(),
            ServiceConfig {
                threads: 2,
                retry: RetryPolicy {
                    max_attempts: 3,
                    base: Duration::from_micros(100),
                    cap: Duration::from_millis(2),
                },
                breaker: BreakerConfig::disabled(),
                ..ServiceConfig::default()
            },
            Arc::clone(&faults),
        );

        let mut tally = Tally::default();
        for round in 0..3 {
            for (c, (q, eps)) in combos.iter().enumerate() {
                match svc.submit(QueryRequest::new(q.clone(), *eps)).wait() {
                    Ok(resp) => {
                        tally.ok += 1;
                        assert_eq!(
                            resp.approx.estimate.to_bits(),
                            expected[c],
                            "seed {seed} round {round}: retried answer diverged"
                        );
                    }
                    Err(ServeError::Transient { .. }) => tally.transient += 1,
                    Err(e) => panic!("seed {seed}: unexpected outcome {e}"),
                }
            }
        }
        assert_eq!(tally.ok + tally.transient, 3 * combos.len() as u64);

        // every injected fire is visible as exactly one retry or one
        // final transient ticket — nothing is silently swallowed
        let m = svc.metrics();
        assert_eq!(
            faults.fired("engine"),
            m.retries.load(Ordering::Relaxed) + tally.transient,
            "seed {seed}: injected fault count must equal retries + surfaced errors"
        );

        assert_pool_healthy(&svc, &faults, &pdb);
    }
}

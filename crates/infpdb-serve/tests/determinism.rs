//! Cross-request determinism under the batch-throughput engine.
//!
//! The scheduler contract (DESIGN.md §13): stealing may reorder
//! *execution*, never *reduction*. The same mixed batch — heavy
//! two-component queries interleaved with light point queries — must
//! produce bit-for-bit identical estimates and identical `EvalTrace`
//! counters at every pool size and under both schedulers. A second run
//! sprays seeded random cancellations into the batch mid-flight and
//! asserts the liveness half of the contract: every ticket resolves.

use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::value::Value;
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_serve::pool::SchedulerKind;
use infpdb_serve::service::{QueryRequest, QueryService, ServiceConfig};
use infpdb_serve::ServeError;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;

/// Two relations with interleaved decaying probabilities: conjunctions
/// of per-relation pair queries split into two var-disjoint components
/// heavy enough for the parallel evaluator to fork.
fn blocks_pdb() -> CountableTiPdb {
    let schema = Schema::from_relations([Relation::new("A", 1), Relation::new("B", 1)]).unwrap();
    let a = schema.rel_id("A").unwrap();
    let b = schema.rel_id("B").unwrap();
    let mut facts = Vec::new();
    let mut p = 0.45f64;
    for i in 0..16i64 {
        facts.push((Fact::new(a, [Value::int(i)]), p));
        facts.push((Fact::new(b, [Value::int(i)]), p));
        p *= 0.75;
    }
    CountableTiPdb::new(FactSupply::from_vec(schema, facts).unwrap()).unwrap()
}

/// The mixed batch: heavy splittable conjunctions and light point
/// queries, each at a distinct ε so no request is a result-cache hit of
/// another and every ticket reflects a real evaluation.
fn mixed_batch(pdb: &CountableTiPdb) -> Vec<QueryRequest> {
    let heavy = "(exists x, y. A(x) /\\ A(y) /\\ x != y) \
                 /\\ (exists x, y. B(x) /\\ B(y) /\\ x != y)";
    let light = ["A(0)", "B(1)", "A(2) /\\ B(2)", "exists x. A(x)"];
    let mut reqs = Vec::new();
    for i in 0..12usize {
        let (text, eps) = if i % 3 == 0 {
            (heavy, 0.01 + i as f64 * 1e-5)
        } else {
            (light[i % light.len()], 0.05 + i as f64 * 1e-5)
        };
        reqs.push(QueryRequest::new(parse(text, pdb.schema()).unwrap(), eps));
    }
    reqs
}

fn service(threads: usize, scheduler: SchedulerKind) -> QueryService {
    QueryService::new(
        blocks_pdb(),
        ServiceConfig {
            threads,
            engine: Engine::Lineage,
            parallelism: 4,
            scheduler,
            ..ServiceConfig::default()
        },
    )
}

/// Deterministic LCG for the cancellation spray (no RNG dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn mixed_batch_is_bit_identical_across_threads_and_schedulers() {
    let pdb = blocks_pdb();
    let reference: Vec<_> = {
        let svc = service(1, SchedulerKind::Fixed);
        svc.submit_batch(mixed_batch(&pdb))
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect()
    };
    for threads in [1usize, 2, 4] {
        for scheduler in [SchedulerKind::Fixed, SchedulerKind::Stealing] {
            let svc = service(threads, scheduler);
            let got: Vec<_> = svc
                .submit_batch(mixed_batch(&pdb))
                .into_iter()
                .map(|t| t.wait().unwrap())
                .collect();
            assert_eq!(got.len(), reference.len());
            for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(
                    r.approx.estimate.to_bits(),
                    g.approx.estimate.to_bits(),
                    "request {i}: estimate differs at threads={threads} scheduler={}",
                    scheduler.name()
                );
                assert_eq!(r.approx, g.approx, "request {i}");
                assert_eq!(
                    r.trace,
                    g.trace,
                    "request {i}: EvalTrace differs at threads={threads} scheduler={}",
                    scheduler.name()
                );
            }
        }
    }
}

#[test]
fn every_ticket_resolves_under_random_cancellation_mid_steal() {
    let pdb = blocks_pdb();
    for (round, threads) in [(0u64, 2usize), (1, 4), (2, 2)] {
        let mut rng = Lcg(0xC0FF_EE00 + round);
        let svc = service(threads, SchedulerKind::Stealing);
        let tickets = svc.submit_batch(mixed_batch(&pdb));
        // cancel roughly half the batch while it is in flight: some
        // land before evaluation, some mid-steal, some after completion
        let cancelled: Vec<bool> = tickets
            .iter()
            .map(|t| {
                let hit = rng.next().is_multiple_of(2);
                if hit {
                    t.cancel();
                }
                hit
            })
            .collect();
        for (i, (t, was_cancelled)) in tickets.into_iter().zip(cancelled).enumerate() {
            match t.wait() {
                Ok(resp) => {
                    // a cancellation can lose the race — the answer must
                    // then be the same fully certified one as ever
                    assert!(resp.approx.eps < 0.5, "request {i}");
                }
                Err(ServeError::Cancelled { .. }) => {
                    assert!(was_cancelled, "request {i} cancelled itself");
                }
                Err(other) => panic!("request {i}: unexpected error {other:?}"),
            }
        }
        // liveness: nothing is stuck in the scheduler
        assert_eq!(svc.queue_depth(), 0);
        assert_eq!(
            svc.metrics()
                .injector_depth
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
        svc.join();
    }
}

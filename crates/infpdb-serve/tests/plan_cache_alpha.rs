//! Property: α-equivalent queries — same shape, renamed bound variables —
//! compile to identical [`CompiledQuery`] fingerprints and, when served,
//! share one plan-cache entry.
//!
//! Formulas are generated as random closed trees over `{R/1}` (atoms only
//! ever mention bound variables or constants), then systematically
//! renamed binder-by-binder. The pair is α-equivalent by construction, so
//! the de Bruijn fingerprint must agree; submitting both to a service at
//! *different* tolerances (so the result cache cannot short-circuit the
//! second request) must record exactly one plan compile and one plan hit.

use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_core::value::Value;
use infpdb_logic::ast::{Formula, Term};
use infpdb_logic::compile::CompiledQuery;
use infpdb_math::series::GeometricSeries;
use infpdb_serve::service::{QueryRequest, QueryService, ServiceConfig};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use proptest::prelude::*;
use std::sync::atomic::Ordering;

fn schema() -> Schema {
    Schema::from_relations([Relation::new("R", 1)]).expect("static schema")
}

fn pdb() -> CountableTiPdb {
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema(),
        RelId(0),
        GeometricSeries::new(0.5, 0.5).expect("parameters in range"),
    ))
    .expect("geometric series converges")
}

fn term(rng: &mut SplitMix64, bound: &[String]) -> Term {
    if !bound.is_empty() && rng.next_u64().is_multiple_of(2) {
        let i = rng.next_u64() as usize % bound.len();
        Term::Var(bound[i].clone())
    } else {
        Term::Const(Value::int((rng.next_u64() % 3) as i64 + 1))
    }
}

/// A random *closed* Boolean formula over `{R/1}`: atoms only ever use
/// currently bound variables or constants.
fn formula(rng: &mut SplitMix64, depth: usize, bound: &mut Vec<String>) -> Formula {
    let leaf = depth == 0;
    match rng.next_u64() % if leaf { 2 } else { 7 } {
        0 => Formula::Atom {
            rel: RelId(0),
            args: vec![term(rng, bound)],
        },
        1 => Formula::Eq(term(rng, bound), term(rng, bound)),
        2 => Formula::Not(Box::new(formula(rng, depth - 1, bound))),
        3 => Formula::And(vec![
            formula(rng, depth - 1, bound),
            formula(rng, depth - 1, bound),
        ]),
        4 => Formula::Or(vec![
            formula(rng, depth - 1, bound),
            formula(rng, depth - 1, bound),
        ]),
        q => {
            let v = format!("v{}", bound.len());
            bound.push(v.clone());
            let body = formula(rng, depth - 1, bound);
            bound.pop();
            if q == 5 {
                Formula::Exists(v, Box::new(body))
            } else {
                Formula::Forall(v, Box::new(body))
            }
        }
    }
}

/// Renames every binder (and its occurrences) `v*` → `w*` — α-conversion
/// by construction, since generated binders are unique per nesting level.
fn rename(f: &Formula) -> Formula {
    fn rt(t: &Term) -> Term {
        match t {
            Term::Var(v) => Term::Var(format!("w{}", &v[1..])),
            c @ Term::Const(_) => c.clone(),
        }
    }
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom { rel, args } => Formula::Atom {
            rel: *rel,
            args: args.iter().map(rt).collect(),
        },
        Formula::Eq(a, b) => Formula::Eq(rt(a), rt(b)),
        Formula::Not(g) => Formula::Not(Box::new(rename(g))),
        Formula::And(gs) => Formula::And(gs.iter().map(rename).collect()),
        Formula::Or(gs) => Formula::Or(gs.iter().map(rename).collect()),
        Formula::Exists(v, g) => Formula::Exists(format!("w{}", &v[1..]), Box::new(rename(g))),
        Formula::Forall(v, g) => Formula::Forall(format!("w{}", &v[1..]), Box::new(rename(g))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn renamed_queries_share_fingerprint_and_plan_entry(seed in 0u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        let s = schema();
        let q = formula(&mut rng, 3, &mut Vec::new());
        let renamed = rename(&q);

        let c0 = CompiledQuery::compile(&s, &q);
        let c1 = CompiledQuery::compile(&s, &renamed);
        prop_assert!(c0.fingerprint() == c1.fingerprint(),
            "fingerprints differ for α-equivalent {q:?} vs {renamed:?}");
        prop_assert_eq!(c0.profile(), c1.profile());

        let svc = QueryService::new(pdb(), ServiceConfig {
            threads: 1,
            ..ServiceConfig::default()
        });
        // different tolerances: the second request misses the result
        // cache, so it genuinely probes the plan cache
        svc.evaluate(QueryRequest::new(q, 0.2)).expect("closed query evaluates");
        let resp = svc.evaluate(QueryRequest::new(renamed, 0.1)).expect("closed query evaluates");
        prop_assert!(!resp.cached);
        prop_assert_eq!(svc.plan_cache_len(), 1);
        prop_assert_eq!(svc.metrics().plan_cache_misses.load(Ordering::Relaxed), 1);
        prop_assert_eq!(svc.metrics().plan_cache_hits.load(Ordering::Relaxed), 1);
    }
}

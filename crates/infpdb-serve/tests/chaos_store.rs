//! Durable-store chaos (ISSUE 7 acceptance): snapshot → damage →
//! reopen, asserting the recovery contract end to end through
//! [`QueryService`]:
//!
//! * **no panics, ever** — any byte-level damage to the store degrades
//!   to a smaller verified prefix, never an abort;
//! * **bit-for-bit answers on the recovered prefix** — a service
//!   reopened from a damaged store answers exactly like a fresh one;
//! * **exact accounting** — `store_recoveries_total`,
//!   `store_checksum_failures_total`, and
//!   `store_recovered_facts_dropped_total` match the recovery report
//!   the open produced, so every injected fault is visible in
//!   `/metrics`.
//!
//! Seeds come from `INFPDB_CHAOS_SEED` when set (the CI `chaos-store`
//! job runs three fixed seeds); otherwise each test loops over a
//! built-in trio.

use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_query::approx::approx_prob_boolean;
use infpdb_query::StoreStatus;
use infpdb_serve::{QueryRequest, QueryService, ServiceConfig};
use infpdb_store::segment::{FOOTER_LEN, HEADER_LEN};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

fn seeds() -> Vec<u64> {
    match std::env::var("INFPDB_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("INFPDB_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 20190625, 271828],
    }
}

fn geometric_pdb() -> CountableTiPdb {
    let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema,
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap()
}

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("infpdb-chaos-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn durable_service(dir: &Path) -> QueryService {
    QueryService::new(
        geometric_pdb(),
        ServiceConfig {
            threads: 1,
            store_dir: Some(dir.to_path_buf()),
            ..ServiceConfig::default()
        },
    )
}

fn seg_path(dir: &Path) -> PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("snapshot leaves a segment file")
}

#[test]
fn snapshot_and_reopen_serve_bit_for_bit_answers() {
    let dir = tempdir("roundtrip");
    let q_text = "exists x. R(x)";

    let svc = durable_service(&dir);
    assert_eq!(svc.store_status(), Some(StoreStatus::Fresh));
    svc.warm(0.001).unwrap();
    let q = parse(q_text, svc.pdb().schema()).unwrap();
    let baseline = svc.evaluate(QueryRequest::new(q.clone(), 0.001)).unwrap();
    let info = svc.snapshot().unwrap().expect("store is configured");
    assert!(info.facts > 0);
    assert_eq!(
        svc.metrics().store_snapshot_writes.load(Ordering::Relaxed),
        1
    );
    let facts = svc.materialized_len();
    svc.join();

    let svc2 = durable_service(&dir);
    assert_eq!(svc2.store_status(), Some(StoreStatus::Ok { facts }));
    assert_eq!(svc2.materialized_len(), facts, "no re-grounding needed");
    let m = svc2.metrics();
    assert_eq!(m.store_recoveries.load(Ordering::Relaxed), 0);
    assert_eq!(m.store_checksum_failures.load(Ordering::Relaxed), 0);
    assert_eq!(m.store_recovered_facts_dropped.load(Ordering::Relaxed), 0);
    let replay = svc2.evaluate(QueryRequest::new(q, 0.001)).unwrap();
    assert_eq!(
        replay.approx.estimate.to_bits(),
        baseline.approx.estimate.to_bits(),
        "restored catalog must answer bit-for-bit"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// One seeded bit flip in the record region of a committed segment:
/// the reopen must recover a prefix, never panic, answer bit-for-bit,
/// and account for the damage in the `store_*` counters exactly.
#[test]
fn seeded_bit_flip_recovers_a_prefix_with_exact_metric_accounting() {
    for seed in seeds() {
        let dir = tempdir(&format!("bitflip-{seed}"));
        let svc = durable_service(&dir);
        svc.warm(0.001).unwrap();
        svc.snapshot().unwrap().unwrap();
        let expected_facts = svc.materialized_len();
        svc.join();

        // flip one seeded bit inside the record region (past the header,
        // before the footer) so at least one record frame is damaged
        let seg = seg_path(&dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let record_region = bytes.len() - HEADER_LEN - FOOTER_LEN;
        assert!(record_region > 0, "warm(0.001) writes real records");
        let mut rng = SplitMix64::new(seed);
        let r = rng.next_u64();
        let byte = HEADER_LEN + (r as usize % record_region);
        let bit = (r >> 32) % 8;
        bytes[byte] ^= 1 << bit;
        std::fs::write(&seg, &bytes).unwrap();

        let svc2 = durable_service(&dir);
        let status = svc2.store_status().expect("store is configured");
        let m = svc2.metrics();
        match &status {
            StoreStatus::Recovered {
                facts_kept,
                facts_dropped,
                checksum_failures,
                eps_floor,
            } => {
                assert!(
                    *facts_dropped > 0,
                    "seed {seed}: a record-region flip loses the damaged tail"
                );
                assert_eq!(*facts_kept, svc2.materialized_len());
                assert_eq!(
                    *facts_kept as u64 + facts_dropped,
                    expected_facts as u64,
                    "seed {seed}: every fact is either kept or accounted as dropped"
                );
                // exact fault ↔ metric accounting
                assert_eq!(m.store_recoveries.load(Ordering::Relaxed), 1);
                assert_eq!(
                    m.store_checksum_failures.load(Ordering::Relaxed),
                    *checksum_failures
                );
                assert_eq!(
                    m.store_recovered_facts_dropped.load(Ordering::Relaxed),
                    *facts_dropped
                );
                // the kept geometric prefix still certifies a tolerance
                if let Some(floor) = eps_floor {
                    assert!(*floor > 0.0 && *floor < 0.5, "seed {seed}: {floor}");
                }
            }
            other => panic!("seed {seed}: expected Recovered, got {other:?}"),
        }

        // answers on the recovered prefix are bit-for-bit what a fresh
        // evaluation produces
        let pdb = geometric_pdb();
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();
        let fresh = approx_prob_boolean(&pdb, &q, 0.01, Engine::Auto).unwrap();
        let resp = svc2.evaluate(QueryRequest::new(q, 0.01)).unwrap();
        assert_eq!(
            resp.approx.estimate.to_bits(),
            fresh.estimate.to_bits(),
            "seed {seed}: recovered prefix diverged"
        );
        svc2.join();
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn sharded_service(dir: &Path, capacity: u64) -> QueryService {
    QueryService::new(
        geometric_pdb(),
        ServiceConfig {
            threads: 1,
            store_dir: Some(dir.to_path_buf()),
            store_shard_capacity: Some(capacity),
            ..ServiceConfig::default()
        },
    )
}

/// The shard file holding the relation's `shard`-th dense-id range,
/// whatever epoch wrote it.
fn shard_path(dir: &Path, shard: u32) -> PathBuf {
    let tag = format!("-s{shard}-");
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.extension().is_some_and(|x| x == "seg")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().contains(&tag))
        })
        .unwrap_or_else(|| panic!("no shard {shard} file in {}", dir.display()))
}

/// A seeded bit flip inside a MIDDLE shard of a multi-shard store:
/// recovery keeps every shard before the damage (the contiguous-prefix
/// rule crosses shard boundaries), drops the rest, and the accounting
/// is exact.
#[test]
fn middle_shard_bit_flip_keeps_earlier_shards() {
    const CAP: u64 = 2;
    for seed in seeds() {
        let dir = tempdir(&format!("midshard-{seed}"));
        let svc = sharded_service(&dir, CAP);
        svc.warm(0.001).unwrap();
        svc.snapshot().unwrap().unwrap();
        let expected_facts = svc.materialized_len();
        svc.join();
        assert!(
            expected_facts as u64 > 3 * CAP,
            "warm(0.001) must span several capacity-{CAP} shards, got {expected_facts}"
        );

        // damage shard 2 (facts [4, 6)) somewhere in its record region
        let seg = shard_path(&dir, 2);
        let mut bytes = std::fs::read(&seg).unwrap();
        let record_region = bytes.len() - HEADER_LEN - FOOTER_LEN;
        let mut rng = SplitMix64::new(seed);
        let r = rng.next_u64();
        let byte = HEADER_LEN + (r as usize % record_region);
        bytes[byte] ^= 1 << ((r >> 32) % 8);
        std::fs::write(&seg, &bytes).unwrap();

        let svc2 = sharded_service(&dir, CAP);
        match svc2.store_status().expect("store is configured") {
            StoreStatus::Recovered {
                facts_kept,
                facts_dropped,
                checksum_failures,
                ..
            } => {
                assert!(
                    (2 * CAP..3 * CAP).contains(&(facts_kept as u64)),
                    "seed {seed}: damage in shard 2 keeps shards 0-1 plus a \
                     prefix of shard 2, got {facts_kept}"
                );
                assert_eq!(facts_kept as u64 + facts_dropped, expected_facts as u64);
                let m = svc2.metrics();
                assert_eq!(m.store_recoveries.load(Ordering::Relaxed), 1);
                assert_eq!(
                    m.store_checksum_failures.load(Ordering::Relaxed),
                    checksum_failures
                );
                assert_eq!(
                    m.store_recovered_facts_dropped.load(Ordering::Relaxed),
                    facts_dropped
                );
            }
            other => panic!("seed {seed}: expected Recovered, got {other:?}"),
        }
        // the service re-grounds the lost tail on demand, bit-for-bit
        let pdb = geometric_pdb();
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();
        let fresh = approx_prob_boolean(&pdb, &q, 0.01, Engine::Auto).unwrap();
        let resp = svc2.evaluate(QueryRequest::new(q, 0.01)).unwrap();
        assert_eq!(resp.approx.estimate.to_bits(), fresh.estimate.to_bits());
        svc2.join();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deleting a middle shard file outright: recovery truncates exactly at
/// the missing shard's boundary and counts every later fact as dropped.
#[test]
fn missing_middle_shard_truncates_at_its_boundary() {
    const CAP: u64 = 2;
    let dir = tempdir("missing-shard");
    let svc = sharded_service(&dir, CAP);
    svc.warm(0.001).unwrap();
    svc.snapshot().unwrap().unwrap();
    let expected_facts = svc.materialized_len();
    svc.join();

    std::fs::remove_file(shard_path(&dir, 2)).unwrap();

    let svc2 = sharded_service(&dir, CAP);
    match svc2.store_status().expect("store is configured") {
        StoreStatus::Recovered {
            facts_kept,
            facts_dropped,
            ..
        } => {
            assert_eq!(
                facts_kept as u64,
                2 * CAP,
                "the prefix ends exactly where the missing shard began"
            );
            assert_eq!(facts_kept as u64 + facts_dropped, expected_facts as u64);
            assert_eq!(
                svc2.metrics()
                    .store_recovered_facts_dropped
                    .load(Ordering::Relaxed),
                facts_dropped
            );
        }
        other => panic!("expected Recovered, got {other:?}"),
    }
    svc2.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Incremental-snapshot accounting end to end: a second snapshot after
/// growing the catalog reuses every untouched full shard, an idle third
/// snapshot is a counted no-op that touches nothing, and a reopen maps
/// (or falls back on) exactly one view per shard.
#[test]
fn incremental_snapshots_reuse_shards_and_idle_ones_noop() {
    const CAP: u64 = 2;
    let dir = tempdir("incremental");
    let svc = sharded_service(&dir, CAP);
    svc.warm(0.01).unwrap();
    let info1 = svc.snapshot().unwrap().unwrap();
    assert!(!info1.unchanged);
    assert_eq!(info1.shards_skipped, 0, "first snapshot writes everything");
    assert!(info1.shards_written >= 2, "warm(0.01) spans several shards");

    // grow the catalog, snapshot again: full leading shards are reused
    svc.warm(0.0005).unwrap();
    let facts2 = svc.materialized_len();
    assert!(facts2 as u64 > info1.facts);
    let info2 = svc.snapshot().unwrap().unwrap();
    assert!(!info2.unchanged);
    assert!(
        info2.shards_skipped >= 1,
        "full leading shards must be reused, got {info2:?}"
    );
    assert!(info2.shards_written >= 1, "the grown tail must be written");
    assert_eq!(info2.facts, facts2 as u64);

    // nothing changed: the third snapshot is a no-op at the same epoch
    let info3 = svc.snapshot().unwrap().unwrap();
    assert!(info3.unchanged);
    assert_eq!(info3.epoch, info2.epoch);
    assert_eq!(info3.shards_written, 0);

    let m = svc.metrics();
    assert_eq!(m.store_snapshot_writes.load(Ordering::Relaxed), 2);
    assert_eq!(m.store_snapshot_noops.load(Ordering::Relaxed), 1);
    assert_eq!(
        m.store_snapshot_bytes_written.load(Ordering::Relaxed),
        info1.bytes + info2.bytes
    );
    assert_eq!(
        m.store_snapshot_shards_written.load(Ordering::Relaxed),
        (info1.shards_written + info2.shards_written) as u64
    );
    assert_eq!(
        m.store_snapshot_shards_skipped.load(Ordering::Relaxed),
        info2.shards_skipped as u64
    );
    let dump = svc.metrics_dump();
    assert!(dump.contains("store_snapshot_noops_total 1"));
    assert!(dump.contains("store_snapshot_shards_written_total"));
    svc.join();

    // a reopen touches exactly one view per committed shard
    let total_shards = (info2.shards_written + info2.shards_skipped) as u64;
    let svc2 = sharded_service(&dir, CAP);
    assert_eq!(svc2.store_status(), Some(StoreStatus::Ok { facts: facts2 }));
    let m2 = svc2.metrics();
    assert_eq!(
        m2.store_mmap_maps.load(Ordering::Relaxed)
            + m2.store_mmap_fallbacks.load(Ordering::Relaxed),
        total_shards
    );
    #[cfg(unix)]
    assert!(
        m2.store_mmap_maps.load(Ordering::Relaxed) > 0,
        "unix reopens map shard files zero-copy"
    );
    svc2.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt manifest (the commit point itself) must degrade loudly —
/// empty catalog, `Degraded` status, recovery counted — and the next
/// snapshot must repair the store in place.
#[test]
fn corrupt_manifest_degrades_and_resnapshot_repairs() {
    let dir = tempdir("manifest");
    let svc = durable_service(&dir);
    svc.warm(0.01).unwrap();
    svc.snapshot().unwrap().unwrap();
    svc.join();

    std::fs::write(dir.join("MANIFEST"), b"{ not json").unwrap();

    let svc2 = durable_service(&dir);
    assert!(
        matches!(svc2.store_status(), Some(StoreStatus::Degraded { .. })),
        "{:?}",
        svc2.store_status()
    );
    assert_eq!(svc2.materialized_len(), 0, "nothing unverified is adopted");
    assert_eq!(
        svc2.metrics().store_recoveries.load(Ordering::Relaxed),
        1,
        "a degraded open counts as a recovery"
    );
    // the service still works: it re-grounds and re-snapshots over the wreck
    svc2.warm(0.01).unwrap();
    svc2.snapshot().unwrap().unwrap();
    let facts = svc2.materialized_len();
    svc2.join();

    let svc3 = durable_service(&dir);
    assert_eq!(svc3.store_status(), Some(StoreStatus::Ok { facts }));
    svc3.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncation at an arbitrary tear point (simulating a crash mid-write
/// of a segment that was never committed cleanly): recovery keeps the
/// longest valid prefix and the service serves from it.
#[test]
fn torn_segment_tail_recovers_longest_prefix() {
    for seed in seeds() {
        let dir = tempdir(&format!("torn-{seed}"));
        let svc = durable_service(&dir);
        svc.warm(0.001).unwrap();
        svc.snapshot().unwrap().unwrap();
        let expected_facts = svc.materialized_len();
        svc.join();

        let seg = seg_path(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        // seeded tear point strictly inside the record region
        let record_region = bytes.len() - HEADER_LEN - FOOTER_LEN;
        let cut = HEADER_LEN + (SplitMix64::new(seed).next_u64() as usize % record_region);
        std::fs::write(&seg, &bytes[..cut]).unwrap();

        let svc2 = durable_service(&dir);
        match svc2.store_status().expect("store is configured") {
            StoreStatus::Recovered {
                facts_kept,
                facts_dropped,
                ..
            } => {
                assert_eq!(facts_kept as u64 + facts_dropped, expected_facts as u64);
                assert_eq!(
                    svc2.metrics()
                        .store_recovered_facts_dropped
                        .load(Ordering::Relaxed),
                    facts_dropped
                );
            }
            other => panic!("seed {seed}: expected Recovered, got {other:?}"),
        }
        // the tail the service re-grounds on demand is identical to fresh
        let pdb = geometric_pdb();
        let q = parse("R(1) \\/ R(3)", pdb.schema()).unwrap();
        let fresh = approx_prob_boolean(&pdb, &q, 0.005, Engine::Auto).unwrap();
        let resp = svc2.evaluate(QueryRequest::new(q, 0.005)).unwrap();
        assert_eq!(resp.approx.estimate.to_bits(), fresh.estimate.to_bits());
        svc2.join();
        std::fs::remove_dir_all(&dir).ok();
    }
}

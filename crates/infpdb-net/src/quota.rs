//! Per-client admission quotas: a token bucket per client identity.
//!
//! Sits *in front of* the serving layer's own protections (bounded
//! queue, overflow shedding, circuit breaker): quotas stop one noisy
//! client from monopolizing the queue, while the downstream layers
//! protect the service as a whole. A client is identified by its
//! `Authorization: Bearer` token when present, else its peer IP, so
//! token-holding tenants are isolated from each other and from
//! anonymous traffic.
//!
//! Buckets refill continuously at `rps` tokens/second up to `burst`;
//! each admitted request spends one token. An empty bucket yields a
//! 429 with a `Retry-After` computed from the refill rate. Time is
//! passed in explicitly so tests are deterministic.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Quota configuration. `None` disables quota enforcement entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Sustained admissions per second per client.
    pub rps: f64,
    /// Bucket capacity: how far a client may burst above the rate.
    pub burst: f64,
}

impl QuotaConfig {
    /// Validates the configuration (both fields must be positive).
    pub fn new(rps: f64, burst: f64) -> Result<Self, String> {
        // spelled so NaN fails validation too
        if rps.is_nan() || burst.is_nan() || rps <= 0.0 || burst < 1.0 {
            return Err(format!(
                "quota needs rps > 0 and burst >= 1, got rps={rps} burst={burst}"
            ));
        }
        Ok(QuotaConfig { rps, burst })
    }
}

/// Verdict of a quota check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// Admit the request.
    Admit,
    /// Refuse with 429; the client should wait this many whole seconds.
    Reject {
        /// Seconds until a token will be available (at least 1).
        retry_after_secs: u64,
    },
}

struct Bucket {
    tokens: f64,
    refilled_at: Instant,
}

/// Token buckets keyed by client identity.
pub struct QuotaRegistry {
    config: QuotaConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

/// Bound on distinct tracked clients; beyond it the registry evicts
/// full (i.e. idle-longest) buckets first, so an address-spraying
/// client cannot grow memory without bound.
const MAX_CLIENTS: usize = 16 * 1024;

impl QuotaRegistry {
    /// A registry where every client starts with a full bucket.
    pub fn new(config: QuotaConfig) -> Self {
        QuotaRegistry {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> QuotaConfig {
        self.config
    }

    /// Checks (and, on admit, spends) one token for `client` at `now`.
    pub fn check(&self, client: &str, now: Instant) -> QuotaDecision {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if buckets.len() >= MAX_CLIENTS && !buckets.contains_key(client) {
            buckets.retain(|_, b| {
                let elapsed = now.duration_since(b.refilled_at).as_secs_f64();
                (b.tokens + elapsed * self.config.rps) < self.config.burst
            });
        }
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens: self.config.burst,
            refilled_at: now,
        });
        // continuous refill since the last touch
        let elapsed = now.duration_since(bucket.refilled_at).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.config.rps).min(self.config.burst);
        bucket.refilled_at = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            QuotaDecision::Admit
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.config.rps).ceil().max(1.0);
            QuotaDecision::Reject {
                retry_after_secs: secs as u64,
            }
        }
    }

    /// Distinct clients currently tracked.
    pub fn clients(&self) -> usize {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Client identity for quota keying: the `Authorization: Bearer` token
/// when present (tenants), else the peer IP without the port
/// (anonymous), so reconnecting from an ephemeral port does not reset
/// the bucket.
pub fn client_identity(authorization: Option<&str>, peer: &std::net::SocketAddr) -> String {
    if let Some(auth) = authorization {
        if let Some(token) = auth.strip_prefix("Bearer ") {
            let token = token.trim();
            if !token.is_empty() {
                return format!("token:{token}");
            }
        }
    }
    format!("ip:{}", peer.ip())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn addr(s: &str) -> std::net::SocketAddr {
        s.parse().unwrap()
    }

    #[test]
    fn burst_then_rate_limit_then_refill() {
        let reg = QuotaRegistry::new(QuotaConfig::new(2.0, 3.0).unwrap());
        let t0 = Instant::now();
        // the full burst admits
        for _ in 0..3 {
            assert_eq!(reg.check("ip:1.2.3.4", t0), QuotaDecision::Admit);
        }
        // the bucket is empty: rejected with a computed Retry-After
        match reg.check("ip:1.2.3.4", t0) {
            QuotaDecision::Reject { retry_after_secs } => assert_eq!(retry_after_secs, 1),
            other => panic!("expected reject, got {other:?}"),
        }
        // half a second refills one token at 2 rps
        let t1 = t0 + Duration::from_millis(500);
        assert_eq!(reg.check("ip:1.2.3.4", t1), QuotaDecision::Admit);
        assert!(matches!(
            reg.check("ip:1.2.3.4", t1),
            QuotaDecision::Reject { .. }
        ));
        // refill never exceeds the burst capacity
        let t2 = t1 + Duration::from_secs(3600);
        for _ in 0..3 {
            assert_eq!(reg.check("ip:1.2.3.4", t2), QuotaDecision::Admit);
        }
        assert!(matches!(
            reg.check("ip:1.2.3.4", t2),
            QuotaDecision::Reject { .. }
        ));
    }

    #[test]
    fn clients_are_isolated_from_each_other() {
        let reg = QuotaRegistry::new(QuotaConfig::new(1.0, 1.0).unwrap());
        let t0 = Instant::now();
        assert_eq!(reg.check("token:alice", t0), QuotaDecision::Admit);
        assert!(matches!(
            reg.check("token:alice", t0),
            QuotaDecision::Reject { .. }
        ));
        // a different tenant is unaffected
        assert_eq!(reg.check("token:bob", t0), QuotaDecision::Admit);
        assert_eq!(reg.clients(), 2);
    }

    #[test]
    fn identity_prefers_bearer_token_and_strips_ports() {
        let a = addr("10.0.0.7:54321");
        let b = addr("10.0.0.7:54999");
        assert_eq!(client_identity(None, &a), "ip:10.0.0.7");
        // same IP, different ephemeral port: same identity
        assert_eq!(client_identity(None, &a), client_identity(None, &b));
        assert_eq!(client_identity(Some("Bearer sekrit"), &a), "token:sekrit");
        // malformed auth headers fall back to the IP
        assert_eq!(client_identity(Some("Basic xyz"), &a), "ip:10.0.0.7");
        assert_eq!(client_identity(Some("Bearer "), &a), "ip:10.0.0.7");
        let v6 = addr("[2001:db8::1]:443");
        assert_eq!(client_identity(None, &v6), "ip:2001:db8::1");
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(QuotaConfig::new(0.0, 5.0).is_err());
        assert!(QuotaConfig::new(-1.0, 5.0).is_err());
        assert!(QuotaConfig::new(1.0, 0.5).is_err());
        assert!(QuotaConfig::new(f64::NAN, 5.0).is_err());
        assert!(QuotaConfig::new(1.0, 1.0).is_ok());
    }
}

//! # infpdb-net — the network front door
//!
//! A std-only HTTP/1.1 server (and matching minimal client) exposing
//! the prepared-query serving layer ([`infpdb_serve::QueryService`])
//! over the wire, so an infinite-PDB instance can be queried by
//! anything that speaks HTTP. No TLS, no HTTP/2, no external crates —
//! hand-rolled request parsing, chunked transfer encoding, and
//! Prometheus text exposition on top of `std::net`.
//!
//! ## Routes
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/query` | POST | one query → certified interval + trace |
//! | `/batch` | POST | many queries → streamed ndjson, input order |
//! | `/warm` | POST | eagerly ground the `n(ε)` prefix |
//! | `/healthz` | GET | liveness + drain state |
//! | `/metrics` | GET | Prometheus text format scrape |
//!
//! The error-code mapping from the serving layer's failure taxonomy
//! lives in [`proto`]; per-client token-bucket quotas in [`quota`];
//! graceful SIGTERM drain in [`signal`] + [`server::HttpServer::shutdown`].
//! The end-to-end load bench ([`loadbench`]) verifies on every
//! response that transport adds **zero** numeric drift: estimates and
//! certified intervals must be bit-for-bit identical to direct
//! library calls.

pub mod client;
pub mod http;
pub mod loadbench;
pub mod promtext;
pub mod proto;
pub mod quota;
pub mod server;
pub mod signal;

pub use client::{BaseUrl, ClientResponse};
pub use loadbench::{NetBenchConfig, NetBenchReport, NetBenchRow};
pub use quota::{QuotaConfig, QuotaDecision, QuotaRegistry};
pub use server::{HttpServer, NetMetrics, ServerConfig};

//! End-to-end load bench for the HTTP front door.
//!
//! Measures request latency (p50/p99) and sustained queries/sec at a
//! matrix of connection levels, and — because the whole point of the
//! front door is that it adds transport without changing semantics —
//! verifies on every single response that the estimate and certified
//! interval are **bit-for-bit identical** to a direct
//! [`QueryService::evaluate`](infpdb_serve::QueryService) call for the
//! same query. Any mismatch or failed request is counted and fails
//! the bench.

use crate::client;
use crate::proto;
use crate::server::HttpServer;
use infpdb_core::json::Json;
use infpdb_logic::parse;
use infpdb_serve::service::QueryRequest;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-bench configuration.
#[derive(Debug, Clone)]
pub struct NetBenchConfig {
    /// Concurrent connection counts to sweep (e.g. `[1, 2, 4, 8]`).
    pub connection_levels: Vec<usize>,
    /// Requests each connection issues per level.
    pub requests_per_connection: usize,
    /// The query matrix; every request round-robins through it.
    pub queries: Vec<String>,
    /// Tolerance sent with every request.
    pub eps: f64,
}

impl NetBenchConfig {
    /// The smoke configuration used by CI: small but still sweeping
    /// four connection levels.
    pub fn smoke(queries: Vec<String>, eps: f64) -> Self {
        NetBenchConfig {
            connection_levels: vec![1, 2, 4, 8],
            requests_per_connection: 25,
            queries,
            eps,
        }
    }
}

/// One row of the artifact: a (connection level, query) cell.
#[derive(Debug, Clone)]
pub struct NetBenchRow {
    /// Concurrent connections during this measurement.
    pub connections: usize,
    /// The query text.
    pub query: String,
    /// Requests issued for this cell.
    pub requests: usize,
    /// Non-200 responses or transport errors.
    pub failed: usize,
    /// Responses whose estimate/interval differed (bitwise) from the
    /// direct library call.
    pub mismatched: usize,
    /// Median request latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
    /// This query's own throughput: requests for this cell over the
    /// level's wall-clock, in queries/sec. (Schema v1 mistakenly
    /// repeated the level aggregate here on every row.)
    pub qps: f64,
    /// Aggregate throughput of the whole connection level (all queries
    /// together), identical on each of the level's rows.
    pub level_qps: f64,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct NetBenchReport {
    /// One row per (connection level, query) cell.
    pub rows: Vec<NetBenchRow>,
    /// Failed requests across the sweep.
    pub total_failed: usize,
    /// Bitwise mismatches across the sweep.
    pub total_mismatched: usize,
}

impl NetBenchReport {
    /// The artifact body (`BENCH_*_net.json`), pretty-printed with the
    /// shared JSON encoder. `date` is an ISO date supplied by the
    /// caller.
    pub fn to_json(&self, date: &str, smoke: bool) -> String {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj([
                    ("connections", Json::Int(r.connections as i64)),
                    ("query", Json::str(r.query.clone())),
                    ("requests", Json::Int(r.requests as i64)),
                    ("failed", Json::Int(r.failed as i64)),
                    ("mismatched", Json::Int(r.mismatched as i64)),
                    ("p50_us", Json::Int(r.p50_us as i64)),
                    ("p99_us", Json::Int(r.p99_us as i64)),
                    ("qps", Json::Float(r.qps)),
                    ("level_qps", Json::Float(r.level_qps)),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::str("infpdb-net-bench/v2")),
            ("date", Json::str(date)),
            ("impl", Json::str("infpdb")),
            ("smoke", Json::Bool(smoke)),
            ("total_failed", Json::Int(self.total_failed as i64)),
            ("total_mismatched", Json::Int(self.total_mismatched as i64)),
            ("rows", Json::Array(rows)),
        ])
        .encode_pretty()
    }

    /// A terminal summary table.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "{:>5}  {:<40}  {:>8}  {:>9}  {:>9}  {:>10}  {:>10}",
            "conns", "query", "reqs", "p50 (us)", "p99 (us)", "qps", "level qps"
        )
        .ok();
        for r in &self.rows {
            let q: String = r.query.chars().take(40).collect();
            writeln!(
                out,
                "{:>5}  {:<40}  {:>8}  {:>9}  {:>9}  {:>10.1}  {:>10.1}",
                r.connections, q, r.requests, r.p50_us, r.p99_us, r.qps, r.level_qps
            )
            .ok();
        }
        writeln!(
            out,
            "failed: {}  bitwise mismatches: {}",
            self.total_failed, self.total_mismatched
        )
        .ok();
        out
    }
}

/// Expected answer for one query, captured from a direct library call.
#[derive(Clone, Copy)]
struct Expected {
    estimate_bits: u64,
    lo_bits: u64,
    hi_bits: u64,
}

/// Runs the sweep against an already-started server, verifying every
/// response against direct `evaluate` calls on the same service.
pub fn run(server: &HttpServer, config: &NetBenchConfig) -> Result<NetBenchReport, String> {
    if config.queries.is_empty() || config.connection_levels.is_empty() {
        return Err("load bench needs at least one query and one connection level".to_string());
    }
    let service = server.service();
    // ground truth: one direct call per query (deterministic, so once
    // is enough)
    let mut expected = Vec::new();
    for q in &config.queries {
        let formula = parse(q, service.pdb().schema())
            .map_err(|e| format!("bench query {q:?} does not parse: {e}"))?;
        let resp = service
            .evaluate(QueryRequest::new(formula, config.eps))
            .map_err(|e| format!("direct evaluation of {q:?} failed: {e}"))?;
        let interval = resp.approx.interval();
        expected.push(Expected {
            estimate_bits: resp.approx.estimate.to_bits(),
            lo_bits: interval.lo().to_bits(),
            hi_bits: interval.hi().to_bits(),
        });
    }
    let addr = server.addr();
    let mut rows = Vec::new();
    let mut total_failed = 0;
    let mut total_mismatched = 0;
    for &level in &config.connection_levels {
        let started = Instant::now();
        let queries = Arc::new(config.queries.clone());
        let expected = Arc::new(expected.clone());
        let mut handles = Vec::new();
        for worker in 0..level {
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            let n = config.requests_per_connection;
            let eps = config.eps;
            handles.push(std::thread::spawn(move || {
                run_worker(addr, worker, n, eps, &queries, &expected)
            }));
        }
        // per-query accumulators for this level
        let mut lat: Vec<Vec<u64>> = vec![Vec::new(); config.queries.len()];
        let mut failed = vec![0usize; config.queries.len()];
        let mut mismatched = vec![0usize; config.queries.len()];
        let mut requests = vec![0usize; config.queries.len()];
        for handle in handles {
            let stats = handle
                .join()
                .map_err(|_| "bench worker panicked".to_string())??;
            for (qi, sample) in stats.samples {
                requests[qi] += 1;
                match sample {
                    SampleOutcome::Ok(us) => lat[qi].push(us),
                    SampleOutcome::Failed => failed[qi] += 1,
                    SampleOutcome::Mismatch(us) => {
                        lat[qi].push(us);
                        mismatched[qi] += 1;
                    }
                }
            }
        }
        let wall = started.elapsed().as_secs_f64().max(1e-9);
        let level_requests: usize = requests.iter().sum();
        let level_qps = level_requests as f64 / wall;
        for (qi, q) in config.queries.iter().enumerate() {
            lat[qi].sort_unstable();
            total_failed += failed[qi];
            total_mismatched += mismatched[qi];
            rows.push(NetBenchRow {
                connections: level,
                query: q.clone(),
                requests: requests[qi],
                failed: failed[qi],
                mismatched: mismatched[qi],
                p50_us: percentile(&lat[qi], 50.0),
                p99_us: percentile(&lat[qi], 99.0),
                // per-row: this query's share of the level's wall-clock
                qps: requests[qi] as f64 / wall,
                level_qps,
            });
        }
    }
    Ok(NetBenchReport {
        rows,
        total_failed,
        total_mismatched,
    })
}

enum SampleOutcome {
    Ok(u64),
    Failed,
    Mismatch(u64),
}

struct WorkerStats {
    samples: Vec<(usize, SampleOutcome)>,
}

fn run_worker(
    addr: std::net::SocketAddr,
    worker: usize,
    requests: usize,
    eps: f64,
    queries: &[String],
    expected: &[Expected],
) -> Result<WorkerStats, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("bench worker connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let authority = addr.to_string();
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        // stagger workers so they don't all hit the same query in
        // lockstep
        let qi = (i + worker) % queries.len();
        let body = Json::obj([
            ("query", Json::str(queries[qi].clone())),
            ("eps", Json::Float(eps)),
        ])
        .encode();
        let t0 = Instant::now();
        let resp = client::request_on(
            &stream,
            &authority,
            "POST",
            "/query",
            &[("content-type", "application/json")],
            body.as_bytes(),
        );
        let us = t0.elapsed().as_micros() as u64;
        let outcome = match resp {
            Err(_) => SampleOutcome::Failed,
            Ok(r) if r.status != 200 => SampleOutcome::Failed,
            Ok(r) => match check_bits(r.body_utf8().unwrap_or(""), &expected[qi]) {
                true => SampleOutcome::Ok(us),
                false => SampleOutcome::Mismatch(us),
            },
        };
        samples.push((qi, outcome));
    }
    Ok(WorkerStats { samples })
}

/// True iff the wire response's estimate and interval endpoints have
/// exactly the bits of the direct library call's.
fn check_bits(body: &str, expected: &Expected) -> bool {
    let Ok(doc) = Json::parse(body) else {
        return false;
    };
    let bits = |j: Option<&Json>| j.and_then(Json::as_f64).map(f64::to_bits);
    bits(doc.get("estimate")) == Some(expected.estimate_bits)
        && doc
            .get("interval")
            .map(|iv| {
                bits(iv.get("lo")) == Some(expected.lo_bits)
                    && bits(iv.get("hi")) == Some(expected.hi_bits)
            })
            .unwrap_or(false)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Default smoke query matrix over the example knowledge-base PDB
/// shipped in `examples/` (see [`crate`] docs); callers with their own
/// PDB pass their own matrix.
pub fn default_eps() -> f64 {
    proto::DEFAULT_EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_sane_indices() {
        let v: Vec<u64> = (1..=100).collect();
        // index round(0.5 * 99) = 50 -> the 51st value
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn report_json_round_trips() {
        let report = NetBenchReport {
            rows: vec![NetBenchRow {
                connections: 4,
                query: "E x (R(x))".to_string(),
                requests: 100,
                failed: 0,
                mismatched: 0,
                p50_us: 120,
                p99_us: 480,
                qps: 203.125,
                level_qps: 812.5,
            }],
            total_failed: 0,
            total_mismatched: 0,
        };
        let text = report.to_json("2026-08-08", true);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("infpdb-net-bench/v2")
        );
        assert_eq!(doc.get("smoke").and_then(Json::as_bool), Some(true));
        let rows = doc.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("connections").and_then(Json::as_i64), Some(4));
        assert_eq!(rows[0].get("qps").and_then(Json::as_f64), Some(203.125));
        assert_eq!(rows[0].get("level_qps").and_then(Json::as_f64), Some(812.5));
        let table = report.summary_table();
        assert!(table.contains("E x (R(x))"));
        assert!(table.contains("bitwise mismatches: 0"));
    }
}

//! A minimal std-only HTTP/1.1 client, just enough for the shell's
//! `--connect` mode, the load bench, and the end-to-end tests.
//!
//! Supports `Content-Length` and chunked response bodies over a fresh
//! connection per request (simple and good enough for a REPL; the load
//! bench keeps connections alive itself).

use crate::http::{self, ParseError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed `http://host:port` base URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseUrl {
    /// `host:port` for `TcpStream::connect`.
    pub authority: String,
}

impl BaseUrl {
    /// Parses `http://host[:port][/]`; HTTPS is intentionally
    /// unsupported (std-only front door).
    pub fn parse(url: &str) -> Result<BaseUrl, String> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| format!("only http:// URLs are supported, got {url:?}"))?;
        let authority = rest.split('/').next().unwrap_or("").trim();
        if authority.is_empty() {
            return Err(format!("missing host in {url:?}"));
        }
        // default the port to 80; a bracketed IPv6 literal carries its
        // port after "]:" rather than at the first ':'
        let has_port = if let Some(v6) = authority.strip_prefix('[') {
            v6.contains("]:")
        } else {
            authority.contains(':')
        };
        let authority = if has_port {
            authority.to_string()
        } else {
            format!("{authority}:80")
        };
        Ok(BaseUrl { authority })
    }
}

/// An HTTP response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// Issues one request over a fresh connection.
///
/// `headers` are extra request headers (e.g. `("Authorization",
/// "Bearer t")`); Host, Content-Length, and Connection are set
/// automatically.
pub fn request(
    base: &BaseUrl,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<ClientResponse, String> {
    let stream = TcpStream::connect(&base.authority)
        .map_err(|e| format!("connect {}: {e}", base.authority))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    request_on(&stream, &base.authority, method, path, headers, body)
}

/// Issues one request over an existing connection (keep-alive); the
/// caller owns connection reuse.
pub fn request_on(
    stream: &TcpStream,
    authority: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<ClientResponse, String> {
    // small head+body segments interact badly with Nagle + delayed
    // ACK (a flat ~40-90 ms per request); disable Nagle and send the
    // whole request in one write
    stream.set_nodelay(true).ok();
    let mut w = stream;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {authority}\r\n");
    for (n, v) in headers {
        head.push_str(n);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    w.write_all(&message)
        .and_then(|_| w.flush())
        .map_err(|e| format!("write request: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    read_response(&mut reader)
}

/// Parses one HTTP/1.1 response (status line, headers, body framed by
/// Content-Length or chunked transfer encoding).
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<ClientResponse, String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status line: {e}"))?;
    if status_line.is_empty() {
        return Err("connection closed before a response arrived".to_string());
    }
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("not an HTTP response: {status_line:?}"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        http::read_chunked_body(reader).map_err(|e| match e {
            ParseError::Io(io) => format!("read chunked body: {io}"),
            other => format!("read chunked body: {other:?}"),
        })?
    } else {
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut buf = vec![0u8; len];
        reader
            .read_exact(&mut buf)
            .map_err(|e| format!("read body: {e}"))?;
        buf
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_url_parsing() {
        assert_eq!(
            BaseUrl::parse("http://localhost:8080").unwrap().authority,
            "localhost:8080"
        );
        assert_eq!(
            BaseUrl::parse("http://localhost:8080/ignored/path")
                .unwrap()
                .authority,
            "localhost:8080"
        );
        assert_eq!(
            BaseUrl::parse("http://example.org").unwrap().authority,
            "example.org:80"
        );
        assert_eq!(
            BaseUrl::parse("http://[::1]:9000").unwrap().authority,
            "[::1]:9000"
        );
        assert!(BaseUrl::parse("https://secure.example").is_err());
        assert!(BaseUrl::parse("http://").is_err());
        assert!(BaseUrl::parse("localhost:8080").is_err());
    }

    #[test]
    fn parses_content_length_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\n\r\n{}";
        let mut reader = std::io::BufReader::new(&raw[..]);
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_utf8().unwrap(), "{}");
    }

    #[test]
    fn parses_chunked_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let mut reader = std::io::BufReader::new(&raw[..]);
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_utf8().unwrap(), "hello world");
    }

    #[test]
    fn rejects_non_http_garbage() {
        let raw = b"SMTP ready\r\n";
        let mut reader = std::io::BufReader::new(&raw[..]);
        assert!(read_response(&mut reader).is_err());
        let mut empty = std::io::BufReader::new(&b""[..]);
        assert!(read_response(&mut empty).is_err());
    }
}

//! Hand-rolled HTTP/1.1 message framing (the workspace is offline and
//! `std`-only, per the `vendor/` no-external-deps pattern).
//!
//! Implements exactly the subset the front door needs: request-line +
//! header parsing, `Content-Length` bodies with a size cap, responses
//! with either a fixed body or `Transfer-Encoding: chunked` streaming
//! (used by `POST /batch` to push per-query results as they finish),
//! and keep-alive semantics (`HTTP/1.1` defaults to persistent,
//! `Connection: close` or `HTTP/1.0` ends the connection).

use std::io::{BufRead, Write};

/// Upper bound on a request head (request line + headers) in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default upper bound on a request body in bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, query string included (e.g. `/query`).
    pub path: String,
    /// `(name, value)` pairs; names are lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if valid.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// Malformed request line, header, or framing.
    Malformed(String),
    /// The head or body exceeded its size cap.
    TooLarge(String),
    /// Reading from the socket failed (timeouts land here).
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::TooLarge(m) => write!(f, "request too large: {m}"),
            ParseError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

/// Reads one line terminated by `\r\n` (or bare `\n`), without the
/// terminator, bounded by [`MAX_HEAD_BYTES`].
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(ParseError::ConnectionClosed);
                }
                return Err(ParseError::Malformed("truncated line".into()));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(ParseError::TooLarge("request head".into()));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| ParseError::Malformed("non-UTF-8 header".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
}

/// Parses one request from the stream. `max_body` caps the
/// `Content-Length` a client may declare.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, ParseError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let http10 = version == "HTTP/1.0";
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(ParseError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte cap"
        )));
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Malformed(
            "chunked request bodies are not supported".into(),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ParseError::Io(e.to_string()))?;
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => !http10,
    };
    Ok(Request {
        method,
        path,
        headers,
        body,
        keep_alive,
    })
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (e.g. 200).
    pub status: u16,
    /// Extra headers beyond the framing ones the writer adds itself.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// A response with a plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; version=0.0.4".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Appends a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// The standard reason phrase for the status codes the front door emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
pub fn write_response(
    stream: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response writer: the head goes out on
/// construction, each [`chunk`](ChunkedWriter::chunk) streams
/// immediately, and [`finish`](ChunkedWriter::finish) writes the final
/// zero-length chunk.
pub struct ChunkedWriter<'a, W: Write> {
    stream: &'a mut W,
    finished: bool,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(
        stream: &'a mut W,
        status: u16,
        content_type: &str,
        keep_alive: bool,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nTransfer-Encoding: chunked\r\nContent-Type: {}\r\nConnection: {}\r\n\r\n",
            status,
            reason(status),
            content_type,
            if keep_alive { "keep-alive" } else { "close" },
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter {
            stream,
            finished: false,
        })
    }

    /// Streams one chunk (non-empty; an empty slice is skipped because a
    /// zero-length chunk would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.finished = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Decodes a chunked body from a buffered reader (the client side of
/// streamed `/batch` responses). Returns the reassembled payload.
pub fn read_chunked_body(reader: &mut impl BufRead) -> Result<Vec<u8>, ParseError> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        reader
            .read_line(&mut size_line)
            .map_err(|e| ParseError::Io(e.to_string()))?;
        let size_str = size_line.trim().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| ParseError::Malformed(format!("bad chunk size {size_str:?}")))?;
        if size == 0 {
            // consume the trailing CRLF (and ignore any trailers)
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader
                    .read_line(&mut line)
                    .map_err(|e| ParseError::Io(e.to_string()))?;
                if n == 0 || line.trim().is_empty() {
                    break;
                }
            }
            return Ok(body);
        }
        let mut chunk = vec![0u8; size];
        reader
            .read_exact(&mut chunk)
            .map_err(|e| ParseError::Io(e.to_string()))?;
        body.extend_from_slice(&chunk);
        let mut crlf = [0u8; 2];
        reader
            .read_exact(&mut crlf)
            .map_err(|e| ParseError::Io(e.to_string()))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn chunked_writer_round_trips_through_the_decoder() {
        let mut buf = Vec::new();
        {
            let mut w = ChunkedWriter::start(&mut buf, 200, "application/x-ndjson", true).unwrap();
            w.chunk(b"{\"a\":1}\n").unwrap();
            w.chunk(b"").unwrap(); // skipped, must not terminate
            w.chunk(b"{\"b\":2}\n").unwrap();
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        // skip the head, decode the chunked body
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        let mut reader = Cursor::new(&buf[body_at..]);
        let body = read_chunked_body(&mut reader).unwrap();
        assert_eq!(body, b"{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn parses_requests_with_bodies_and_keep_alive_rules() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nAuthorization: Bearer tok\r\nContent-Length: 9\r\n\r\n{\"q\":\"a\"}";
        let mut reader = Cursor::new(raw.to_vec());
        let req = read_request(&mut reader, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("authorization"), Some("Bearer tok"));
        assert_eq!(req.body_utf8(), Some("{\"q\":\"a\"}"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");

        let raw = b"GET /healthz HTTP/1.0\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw.to_vec()), 1024).unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");

        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw.to_vec()), 1024).unwrap();
        assert!(!req.keep_alive);

        // declared body beyond the cap is refused up front
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        match read_request(&mut Cursor::new(raw.to_vec()), 10) {
            Err(ParseError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // EOF before any bytes is a clean close, not an error message
        assert_eq!(
            read_request(&mut Cursor::new(Vec::new()), 10),
            Err(ParseError::ConnectionClosed)
        );
        // garbage is malformed
        assert!(matches!(
            read_request(&mut Cursor::new(b"nonsense\r\n\r\n".to_vec()), 10),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_writer_emits_well_formed_head() {
        let mut buf = Vec::new();
        let resp = Response::json(429, "{}").with_header("Retry-After", "2");
        write_response(&mut buf, &resp, false).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn reason_phrases_cover_the_error_mapping() {
        for status in [200, 400, 404, 405, 408, 413, 422, 429, 499, 500, 503, 504] {
            assert_ne!(reason(status), "Unknown", "{status}");
        }
        assert_eq!(reason(418), "Unknown");
    }
}

//! A parser for the Prometheus text exposition format (version
//! 0.0.4), used by the end-to-end tests and the CI smoke job to
//! verify that `/metrics` scrapes are well-formed rather than merely
//! non-empty.

use std::collections::HashMap;

/// Declared metric kind from a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative histogram (`_bucket`/`_sum`/`_count` samples).
    Histogram,
    /// Anything else (`summary`, `untyped`, ...).
    Other,
}

/// One sample line: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The sample name (may carry a `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The parsed value; `+Inf`/`-Inf`/`NaN` map to the f64 equivalents.
    pub value: f64,
}

impl Sample {
    /// The value of label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed scrape.
#[derive(Debug, Default)]
pub struct Scrape {
    /// Declared types by family name.
    pub types: HashMap<String, MetricKind>,
    /// Help strings by family name.
    pub help: HashMap<String, String>,
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// All samples belonging to family `name` (including
    /// `_bucket`/`_sum`/`_count` expansions for histograms).
    pub fn family(&self, name: &str) -> Vec<&Sample> {
        self.samples
            .iter()
            .filter(|s| {
                s.name == name
                    || s.name == format!("{name}_bucket")
                    || s.name == format!("{name}_sum")
                    || s.name == format!("{name}_count")
            })
            .collect()
    }

    /// The single sample with exactly this name and no labels.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }
}

/// Parses a text-format scrape, returning an error naming the first
/// offending line.
pub fn parse_scrape(text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts
                .next()
                .filter(|n| !n.is_empty())
                .ok_or_else(|| format!("line {}: TYPE without a name", lineno + 1))?;
            let kind = match parts.next().unwrap_or("") {
                "counter" => MetricKind::Counter,
                "gauge" => MetricKind::Gauge,
                "histogram" => MetricKind::Histogram,
                _ => MetricKind::Other,
            };
            if scrape.types.insert(name.to_string(), kind).is_some() {
                return Err(format!("line {}: duplicate TYPE for {name}", lineno + 1));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            if let Some(name) = parts.next() {
                scrape
                    .help
                    .insert(name.to_string(), parts.next().unwrap_or("").to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // ordinary comment
        }
        scrape
            .samples
            .push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(scrape)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value_str) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces in {line:?}"))?;
            if close < open {
                return Err(format!("mismatched braces in {line:?}"));
            }
            (
                (&line[..open], Some(&line[open + 1..close])),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            ((name, None), parts.next().unwrap_or("").trim())
        }
    };
    let (name, labels_str) = name_and_labels;
    let name = name.trim();
    if name.is_empty() || !is_valid_name(name) {
        return Err(format!("invalid metric name in {line:?}"));
    }
    let labels = match labels_str {
        None => Vec::new(),
        Some(s) => parse_labels(s)?,
    };
    // the value may be followed by an optional timestamp; take the
    // first token
    let value_token = value_str
        .split_whitespace()
        .next()
        .ok_or_else(|| format!("missing value in {line:?}"))?;
    let value = match value_token {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("non-numeric value {v:?} in {line:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // label name
        let start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i == bytes.len() {
            return Err(format!("label without '=' in {s:?}"));
        }
        let name = s[start..i].trim().to_string();
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(format!("label value must be quoted in {s:?}"));
        }
        i += 1; // opening quote
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err(format!("unterminated label value in {s:?}"));
            }
            match bytes[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'n') => value.push('\n'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        _ => return Err(format!("bad escape in label value in {s:?}")),
                    }
                    i += 1;
                }
                _ => {
                    // advance one full UTF-8 char
                    let ch_len = utf8_len(bytes[i]);
                    value.push_str(&s[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
        labels.push((name, value));
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
    Ok(labels)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Structural checks beyond parsing: every sample's family has a TYPE
/// declaration, histogram buckets are cumulative and end in `+Inf`,
/// and `_count` equals the `+Inf` bucket. Returns the list of
/// violations (empty = clean).
pub fn lint(scrape: &Scrape) -> Vec<String> {
    let mut problems = Vec::new();
    for sample in &scrape.samples {
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| sample.name.strip_suffix(suf))
            .filter(|f| scrape.types.get(*f) == Some(&MetricKind::Histogram))
            .unwrap_or(&sample.name);
        if !scrape.types.contains_key(family) {
            problems.push(format!("sample {} has no TYPE declaration", sample.name));
        }
    }
    for (family, kind) in &scrape.types {
        if *kind != MetricKind::Histogram {
            continue;
        }
        let buckets: Vec<&Sample> = scrape
            .samples
            .iter()
            .filter(|s| s.name == format!("{family}_bucket"))
            .collect();
        if buckets.is_empty() {
            problems.push(format!("histogram {family} has no buckets"));
            continue;
        }
        let mut last = -1.0_f64;
        for b in &buckets {
            match b.label("le") {
                None => problems.push(format!("histogram {family} bucket without le")),
                Some(le) => {
                    if b.value < last {
                        problems.push(format!(
                            "histogram {family} buckets are not cumulative at le={le}"
                        ));
                    }
                    last = b.value;
                }
            }
        }
        match buckets.last().and_then(|b| b.label("le")) {
            Some("+Inf") => {
                let inf = buckets.last().unwrap().value;
                if let Some(count) = scrape.value(&format!("{family}_count")) {
                    if (count - inf).abs() > 0.0 {
                        problems.push(format!(
                            "histogram {family}: _count {count} != +Inf bucket {inf}"
                        ));
                    }
                } else {
                    problems.push(format!("histogram {family} has no _count"));
                }
            }
            _ => problems.push(format!("histogram {family} does not end in le=\"+Inf\"")),
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_histograms() {
        let text = "\
# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total 42
# TYPE depth gauge
depth 3
# TYPE lat histogram
lat_bucket{le=\"1\"} 5
lat_bucket{le=\"2\"} 9
lat_bucket{le=\"+Inf\"} 10
lat_sum 123.5
lat_count 10
";
        let scrape = parse_scrape(text).unwrap();
        assert_eq!(scrape.types["reqs_total"], MetricKind::Counter);
        assert_eq!(scrape.types["lat"], MetricKind::Histogram);
        assert_eq!(scrape.value("reqs_total"), Some(42.0));
        assert_eq!(scrape.value("depth"), Some(3.0));
        assert_eq!(scrape.family("lat").len(), 5);
        assert!(lint(&scrape).is_empty(), "{:?}", lint(&scrape));
    }

    #[test]
    fn parses_labels_with_escapes() {
        let s = parse_sample(r#"m{a="x,y",b="q\"uote",c="back\\slash"} 1"#).unwrap();
        assert_eq!(s.label("a"), Some("x,y"));
        assert_eq!(s.label("b"), Some("q\"uote"));
        assert_eq!(s.label("c"), Some("back\\slash"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_sample("1bad_name 3").is_err());
        assert!(parse_sample("name{unclosed 3").is_err());
        assert!(parse_sample("name{l=unquoted} 3").is_err());
        assert!(parse_sample("name notanumber").is_err());
        assert!(parse_sample("name").is_err());
        assert!(parse_scrape("# TYPE a counter\n# TYPE a counter\na 1\n").is_err());
    }

    #[test]
    fn lint_flags_structural_problems() {
        let scrape = parse_scrape("orphan 3\n").unwrap();
        assert!(lint(&scrape)
            .iter()
            .any(|p| p.contains("no TYPE declaration")));
        let scrape = parse_scrape(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 4\nh_count 4\nh_sum 1\n",
        )
        .unwrap();
        assert!(lint(&scrape).iter().any(|p| p.contains("not cumulative")));
        let scrape =
            parse_scrape("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n").unwrap();
        assert!(lint(&scrape)
            .iter()
            .any(|p| p.contains("does not end in le")));
    }

    #[test]
    fn special_values_parse() {
        assert_eq!(parse_sample("m +Inf").unwrap().value, f64::INFINITY);
        assert_eq!(parse_sample("m -Inf").unwrap().value, f64::NEG_INFINITY);
        assert!(parse_sample("m NaN").unwrap().value.is_nan());
        // optional trailing timestamp is tolerated
        assert_eq!(parse_sample("m 5 1712345678").unwrap().value, 5.0);
    }
}

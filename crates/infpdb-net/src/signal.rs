//! SIGTERM/SIGINT notification without a signal-handling crate.
//!
//! `infpdb serve` needs to notice termination signals so it can drain
//! the service instead of dying mid-query. The container has no libc
//! crate, so on Unix we register a handler through the C `signal(2)`
//! entry point directly; the handler only flips an [`AtomicBool`]
//! (async-signal-safe), and the serve loop polls it. On non-Unix
//! targets the hook is a no-op and the flag never trips.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERMINATION_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // only an atomic store: async-signal-safe
        TERMINATION_REQUESTED.store(true, Ordering::Release);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Registers handlers for SIGTERM and SIGINT (no-op off Unix).
/// Idempotent; call once at serve startup.
pub fn install_termination_handler() {
    imp::install();
}

/// Whether a termination signal has arrived since
/// [`install_termination_handler`] ran.
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::Acquire)
}

/// Test hook: simulate a termination signal.
pub fn request_termination() {
    TERMINATION_REQUESTED.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_trips_on_request() {
        install_termination_handler();
        // NOTE: other tests in this binary could in principle trip the
        // flag, but nothing else calls request_termination here.
        request_termination();
        assert!(termination_requested());
    }
}

//! The HTTP body protocol: JSON request/response shapes and the mapping
//! from the PR-2 failure taxonomy ([`ServeError`]) onto HTTP status
//! codes.
//!
//! # Error-code mapping
//!
//! | `ServeError` | HTTP | `code` | `Retry-After` |
//! |---|---|---|---|
//! | `Rejected` | 422 | `rejected` | — |
//! | `Query` | 400 | `bad_query` | — |
//! | `Overloaded` | 503 | `overloaded` | 1 s |
//! | `Cancelled` | 499 | `cancelled` | — |
//! | `DeadlineExceeded` | 504 | `deadline_exceeded` | 1 s |
//! | `EnginePanic` | 500 | `engine_panic` | 1 s |
//! | `Transient` | 503 | `transient` | 1 s |
//! | `CircuitOpen` | 503 | `circuit_open` | 2 s |
//! | `Shutdown` (drain) | 503 | `shutting_down` | 5 s |
//! | quota exhausted | 429 | `quota_exhausted` | computed |
//!
//! `Cancelled` and `DeadlineExceeded` bodies carry the sound partial
//! certificate (`partial`) when the serving layer produced one — the
//! ε-widening degradation story extends over the wire.

use infpdb_core::json::Json;
use infpdb_finite::engine::EvalTrace;
use infpdb_query::approx::Approximation;
use infpdb_serve::service::QueryResponse;
use infpdb_serve::ServeError;

/// Default tolerance when a request body omits `eps`.
pub const DEFAULT_EPS: f64 = 0.01;

/// One parsed `/query` (or `/batch` element) request.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuery {
    /// The query text (parsed against the service's schema server-side).
    pub query: String,
    /// Additive tolerance ε.
    pub eps: f64,
    /// Optional deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Optional cap on the truncation length `n`.
    pub max_n: Option<usize>,
}

/// A malformed request body: the message goes into a 400 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadBody(pub String);

impl std::fmt::Display for BadBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn wire_query_from_value(doc: &Json, default_eps: f64) -> Result<WireQuery, BadBody> {
    let query = doc
        .get("query")
        .and_then(Json::as_str)
        .ok_or_else(|| BadBody("missing string field \"query\"".into()))?
        .to_string();
    let eps = match doc.get("eps") {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| BadBody("\"eps\" must be a number".into()))?,
        None => default_eps,
    };
    let deadline_ms = match doc.get("deadline_ms") {
        Some(v) => Some(
            u64::try_from(
                v.as_i64()
                    .ok_or_else(|| BadBody("\"deadline_ms\" must be an integer".into()))?,
            )
            .map_err(|_| BadBody("\"deadline_ms\" must be non-negative".into()))?,
        ),
        None => None,
    };
    let max_n = match doc.get("max_n") {
        Some(v) => Some(
            usize::try_from(
                v.as_i64()
                    .ok_or_else(|| BadBody("\"max_n\" must be an integer".into()))?,
            )
            .map_err(|_| BadBody("\"max_n\" must be non-negative".into()))?,
        ),
        None => None,
    };
    Ok(WireQuery {
        query,
        eps,
        deadline_ms,
        max_n,
    })
}

/// Parses a `POST /query` body: `{"query": "...", "eps": 0.01,
/// "deadline_ms": 500, "max_n": 100000}` (all but `query` optional).
pub fn parse_query_body(body: &str, default_eps: f64) -> Result<WireQuery, BadBody> {
    let doc = Json::parse(body).map_err(|e| BadBody(e.to_string()))?;
    wire_query_from_value(&doc, default_eps)
}

/// Parses a `POST /batch` body: `{"queries": ["q1", …], "eps": …}` with
/// shared options, or `{"queries": [{"query": "q1", "eps": …}, …]}` with
/// per-element options overriding the shared ones.
pub fn parse_batch_body(body: &str, default_eps: f64) -> Result<Vec<WireQuery>, BadBody> {
    let doc = Json::parse(body).map_err(|e| BadBody(e.to_string()))?;
    let shared_eps = match doc.get("eps") {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| BadBody("\"eps\" must be a number".into()))?,
        None => default_eps,
    };
    let items = doc
        .get("queries")
        .and_then(Json::as_array)
        .ok_or_else(|| BadBody("missing array field \"queries\"".into()))?;
    if items.is_empty() {
        return Err(BadBody("\"queries\" must not be empty".into()));
    }
    items
        .iter()
        .map(|item| match item {
            Json::Str(q) => Ok(WireQuery {
                query: q.clone(),
                eps: shared_eps,
                deadline_ms: None,
                max_n: None,
            }),
            Json::Object(_) => wire_query_from_value(item, shared_eps),
            _ => Err(BadBody(
                "\"queries\" elements must be strings or objects".into(),
            )),
        })
        .collect()
}

/// Parses a `POST /warm` body: `{"eps": 0.001}`.
pub fn parse_warm_body(body: &str) -> Result<f64, BadBody> {
    let doc = Json::parse(body).map_err(|e| BadBody(e.to_string()))?;
    doc.get("eps")
        .and_then(Json::as_f64)
        .ok_or_else(|| BadBody("missing numeric field \"eps\"".into()))
}

/// Serializes an [`Approximation`] (full answers and partial
/// certificates share the shape).
pub fn approximation_json(a: &Approximation) -> Json {
    let interval = a.interval();
    Json::obj([
        ("estimate", Json::Float(a.estimate)),
        ("eps", Json::Float(a.eps)),
        (
            "interval",
            Json::obj([
                ("lo", Json::Float(interval.lo())),
                ("hi", Json::Float(interval.hi())),
            ]),
        ),
        ("n", Json::Int(a.n as i64)),
        ("tail_mass", Json::Float(a.tail_mass)),
    ])
}

/// Serializes an [`EvalTrace`] summary (absent stages are `null`).
pub fn trace_json(t: &EvalTrace) -> Json {
    Json::obj([
        (
            "shannon",
            t.shannon
                .map(|s| {
                    Json::obj([
                        ("expansions", Json::Int(s.expansions as i64)),
                        ("cache_hits", Json::Int(s.cache_hits as i64)),
                        ("decompositions", Json::Int(s.decompositions as i64)),
                    ])
                })
                .unwrap_or(Json::Null),
        ),
        (
            "arena",
            t.arena
                .map(|a| {
                    Json::obj([
                        ("nodes", Json::Int(a.nodes as i64)),
                        ("intern_hits", Json::Int(a.intern_hits as i64)),
                    ])
                })
                .unwrap_or(Json::Null),
        ),
        (
            "parallel",
            t.parallel
                .map(|p| {
                    Json::obj([
                        ("tasks", Json::Int(p.tasks as i64)),
                        ("fallback_seq", Json::Bool(p.fallback_seq)),
                    ])
                })
                .unwrap_or(Json::Null),
        ),
        (
            "plan",
            t.plan
                .map(|p| {
                    Json::obj([
                        ("lifted", Json::Int(i64::from(p.lifted))),
                        ("shannon", Json::Int(i64::from(p.shannon))),
                        ("mc", Json::Int(i64::from(p.monte_carlo))),
                        ("kl", Json::Int(i64::from(p.karp_luby))),
                        // positive-finite f64 bit patterns have a clear
                        // sign bit, so the cost survives the i64 round-trip
                        ("cost_bits", Json::Int(p.cost_bits as i64)),
                    ])
                })
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Serializes a successful [`QueryResponse`], echoing the query text so
/// streamed batch lines are self-describing.
pub fn response_json(query: &str, r: &QueryResponse) -> Json {
    let mut pairs = vec![("query".to_string(), Json::str(query))];
    if let Json::Object(approx) = approximation_json(&r.approx) {
        pairs.extend(approx);
    }
    pairs.push(("requested_eps".into(), Json::Float(r.requested_eps)));
    pairs.push(("degraded".into(), Json::Bool(r.degraded)));
    pairs.push(("cached".into(), Json::Bool(r.cached)));
    // the planner's strategy verdict (null under explicit engines)
    pairs.push((
        "strategy".into(),
        r.strategy().map(Json::str).unwrap_or(Json::Null),
    ));
    pairs.push((
        "report".into(),
        Json::obj([
            (
                "escape_probability",
                Json::Float(r.report.escape_probability),
            ),
            (
                "expected_size_bound",
                Json::Float(r.report.expected_size_bound),
            ),
        ]),
    ));
    pairs.push(("trace".into(), trace_json(&r.trace)));
    Json::Object(pairs)
}

/// How one error renders on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` header value in seconds, when retrying makes sense.
    pub retry_after: Option<u64>,
    /// The JSON body (an `{"error": {…}}` envelope).
    pub body: Json,
}

impl WireError {
    fn new(status: u16, retry_after: Option<u64>, code: &str, message: String) -> Self {
        WireError::with_fields(status, retry_after, code, message, Vec::new())
    }

    fn with_fields(
        status: u16,
        retry_after: Option<u64>,
        code: &str,
        message: String,
        extra: Vec<(String, Json)>,
    ) -> Self {
        let mut fields = vec![
            ("code".to_string(), Json::str(code)),
            ("message".to_string(), Json::str(message)),
            ("retryable".to_string(), Json::Bool(retry_after.is_some())),
        ];
        fields.extend(extra);
        WireError {
            status,
            retry_after,
            body: Json::obj([("error", Json::Object(fields))]),
        }
    }

    /// A 400 for an unparseable body.
    pub fn bad_body(e: &BadBody) -> Self {
        WireError::new(400, None, "bad_request", e.to_string())
    }

    /// A 429 for an exhausted per-client quota.
    pub fn quota_exhausted(retry_after_secs: u64) -> Self {
        WireError::new(
            429,
            Some(retry_after_secs.max(1)),
            "quota_exhausted",
            "per-client admission quota exhausted".into(),
        )
    }

    /// A 400 for a query that does not parse against the schema.
    pub fn bad_query(message: &str) -> Self {
        WireError::new(400, None, "bad_query", message.to_string())
    }

    /// A routing/framing error; the code follows the status.
    pub fn routing(status: u16, message: &str) -> Self {
        let code = match status {
            404 => "not_found",
            405 => "method_not_allowed",
            408 => "request_timeout",
            413 => "payload_too_large",
            _ => "bad_request",
        };
        WireError::new(status, None, code, message.to_string())
    }

    /// The query string inside `error.code`, for tests and clients.
    pub fn code(&self) -> &str {
        self.body
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("")
    }
}

fn partial_fields(facts: usize, partial: &Option<Approximation>) -> Vec<(String, Json)> {
    vec![
        ("facts_processed".to_string(), Json::Int(facts as i64)),
        (
            "partial".to_string(),
            partial
                .as_ref()
                .map(approximation_json)
                .unwrap_or(Json::Null),
        ),
    ]
}

/// Maps a [`ServeError`] onto its wire rendering (see the module table).
pub fn map_serve_error(e: &ServeError) -> WireError {
    match e {
        ServeError::Rejected {
            requested_eps,
            needed_n,
            max_n,
        } => WireError::with_fields(
            422,
            None,
            "rejected",
            e.to_string(),
            vec![
                ("requested_eps".to_string(), Json::Float(*requested_eps)),
                ("needed_n".to_string(), Json::Int(*needed_n as i64)),
                ("max_n".to_string(), Json::Int(*max_n as i64)),
            ],
        ),
        ServeError::Query(_) => WireError::new(400, None, "bad_query", e.to_string()),
        ServeError::Overloaded { queue_cap } => WireError::with_fields(
            503,
            Some(1),
            "overloaded",
            e.to_string(),
            vec![("queue_cap".to_string(), Json::Int(*queue_cap as i64))],
        ),
        ServeError::Cancelled {
            facts_processed,
            partial,
        } => WireError::with_fields(
            499,
            None,
            "cancelled",
            e.to_string(),
            partial_fields(*facts_processed, partial),
        ),
        ServeError::DeadlineExceeded {
            facts_processed,
            partial,
        } => WireError::with_fields(
            504,
            Some(1),
            "deadline_exceeded",
            e.to_string(),
            partial_fields(*facts_processed, partial),
        ),
        ServeError::EnginePanic { .. } => {
            WireError::new(500, Some(1), "engine_panic", e.to_string())
        }
        ServeError::Transient { .. } => WireError::new(503, Some(1), "transient", e.to_string()),
        ServeError::CircuitOpen { .. } => {
            WireError::new(503, Some(2), "circuit_open", e.to_string())
        }
        ServeError::Shutdown => WireError::new(503, Some(5), "shutting_down", e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_query::QueryError;

    #[test]
    fn query_body_parses_with_defaults_and_options() {
        let q = parse_query_body(r#"{"query": "exists x. R(x)"}"#, 0.05).unwrap();
        assert_eq!(q.query, "exists x. R(x)");
        assert_eq!(q.eps, 0.05);
        assert_eq!(q.deadline_ms, None);
        let q = parse_query_body(
            r#"{"query": "R(1)", "eps": 0.001, "deadline_ms": 250, "max_n": 42}"#,
            0.05,
        )
        .unwrap();
        assert_eq!(q.eps, 0.001);
        assert_eq!(q.deadline_ms, Some(250));
        assert_eq!(q.max_n, Some(42));
        for bad in [
            "",
            "{}",
            r#"{"query": 3}"#,
            r#"{"query": "x", "eps": "big"}"#,
            r#"{"query": "x", "deadline_ms": -1}"#,
        ] {
            assert!(parse_query_body(bad, 0.05).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn batch_body_accepts_strings_and_objects() {
        let qs = parse_batch_body(r#"{"queries": ["a", "b"], "eps": 0.02}"#, 0.05).unwrap();
        assert_eq!(qs.len(), 2);
        assert!(qs.iter().all(|q| q.eps == 0.02));
        let qs = parse_batch_body(
            r#"{"queries": [{"query": "a", "eps": 0.001}, "b"], "eps": 0.02}"#,
            0.05,
        )
        .unwrap();
        assert_eq!(qs[0].eps, 0.001);
        assert_eq!(qs[1].eps, 0.02);
        assert!(parse_batch_body(r#"{"queries": []}"#, 0.05).is_err());
        assert!(parse_batch_body(r#"{"queries": [7]}"#, 0.05).is_err());
        assert!(parse_batch_body(r#"{}"#, 0.05).is_err());
    }

    #[test]
    fn error_mapping_matches_the_documented_table() {
        let cases: Vec<(ServeError, u16, &str, Option<u64>)> = vec![
            (
                ServeError::Rejected {
                    requested_eps: 0.01,
                    needed_n: 100,
                    max_n: 5,
                },
                422,
                "rejected",
                None,
            ),
            (
                ServeError::Query(QueryError::Math(infpdb_math::MathError::BadTolerance(0.9))),
                400,
                "bad_query",
                None,
            ),
            (
                ServeError::Overloaded { queue_cap: 8 },
                503,
                "overloaded",
                Some(1),
            ),
            (
                ServeError::Cancelled {
                    facts_processed: 3,
                    partial: None,
                },
                499,
                "cancelled",
                None,
            ),
            (
                ServeError::DeadlineExceeded {
                    facts_processed: 9,
                    partial: Some(Approximation {
                        estimate: 0.5,
                        eps: 0.2,
                        n: 9,
                        tail_mass: 0.1,
                    }),
                },
                504,
                "deadline_exceeded",
                Some(1),
            ),
            (
                ServeError::EnginePanic {
                    payload: "boom".into(),
                },
                500,
                "engine_panic",
                Some(1),
            ),
            (
                ServeError::Transient { site: "x".into() },
                503,
                "transient",
                Some(1),
            ),
            (
                ServeError::CircuitOpen {
                    consecutive_failures: 4,
                },
                503,
                "circuit_open",
                Some(2),
            ),
            (ServeError::Shutdown, 503, "shutting_down", Some(5)),
        ];
        for (err, status, code, retry) in cases {
            let w = map_serve_error(&err);
            assert_eq!(w.status, status, "{err:?}");
            assert_eq!(w.code(), code, "{err:?}");
            assert_eq!(w.retry_after, retry, "{err:?}");
            // the body is an error envelope that parses back
            let encoded = w.body.encode();
            let doc = Json::parse(&encoded).unwrap();
            assert!(doc.get("error").is_some());
        }
        // the deadline body carries the sound partial certificate
        let w = map_serve_error(&ServeError::DeadlineExceeded {
            facts_processed: 9,
            partial: Some(Approximation {
                estimate: 0.5,
                eps: 0.2,
                n: 9,
                tail_mass: 0.1,
            }),
        });
        let partial = w.body.get("error").unwrap().get("partial").unwrap();
        assert_eq!(partial.get("estimate").unwrap().as_f64(), Some(0.5));
        assert_eq!(partial.get("n").unwrap().as_i64(), Some(9));
    }

    #[test]
    fn quota_error_always_advises_a_retry() {
        let w = WireError::quota_exhausted(0);
        assert_eq!(w.status, 429);
        assert_eq!(w.retry_after, Some(1));
        assert_eq!(w.code(), "quota_exhausted");
    }
}

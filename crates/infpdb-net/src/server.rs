//! The HTTP front door: a thread-per-connection server over
//! [`QueryService`].
//!
//! Routes:
//!
//! * `POST /query` — one query; body `{"query", "eps"?, "deadline_ms"?,
//!   "max_n"?}`; responds with the certified interval, budget report,
//!   and [`EvalTrace`](infpdb_finite::engine::EvalTrace) summary.
//! * `POST /batch` — many queries; the response streams one JSON line
//!   per query (`application/x-ndjson`, chunked transfer encoding) in
//!   input order, each line either a result or an error envelope, so
//!   long batches deliver answers as they finish.
//! * `POST /warm` — eagerly grounds the `n(ε)` prefix.
//! * `GET /healthz` — liveness + drain state.
//! * `GET /metrics` — the serving registry plus the net-layer counters
//!   in Prometheus text exposition format.
//!
//! Per-client token-bucket quotas (keyed by `Authorization: Bearer`
//! token, else peer IP) run before any body parsing; an exhausted
//! bucket yields `429` + `Retry-After` without costing the service
//! anything. Graceful shutdown: [`HttpServer::shutdown`] stops the
//! accept loop, puts the service into drain mode (new submissions are
//! refused with `503 shutting_down`, in-flight tickets finish with
//! their partial certificates), and waits for open connections to
//! complete their current request.

use crate::http::{self, ChunkedWriter, ParseError, Request, Response};
use crate::proto::{self, WireError, WireQuery};
use crate::quota::{client_identity, QuotaConfig, QuotaDecision, QuotaRegistry};
use infpdb_core::json::Json;
use infpdb_logic::parse;
use infpdb_query::StoreStatus;
use infpdb_serve::service::{QueryRequest, QueryService};
use infpdb_serve::CostBudget;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front-door configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Tolerance used when a request body omits `eps`.
    pub default_eps: f64,
    /// Cap on request-body size in bytes.
    pub max_body: usize,
    /// Per-client admission quota; `None` disables quotas.
    pub quota: Option<QuotaConfig>,
    /// Include arena statistics in `/metrics`.
    pub arena_stats: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            default_eps: proto::DEFAULT_EPS,
            max_body: http::DEFAULT_MAX_BODY_BYTES,
            quota: None,
            arena_stats: false,
        }
    }
}

/// Net-layer counters, exposed alongside the serving registry on
/// `/metrics`.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// TCP connections accepted.
    pub connections: AtomicU64,
    /// HTTP requests parsed (any route).
    pub requests: AtomicU64,
    /// Requests refused by a per-client quota.
    pub quota_rejections: AtomicU64,
    /// Requests refused for malformed bodies or framing.
    pub bad_requests: AtomicU64,
    /// Individual results streamed over `/batch` responses.
    pub streamed_results: AtomicU64,
}

impl NetMetrics {
    /// Prometheus text exposition of the net-layer counters.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        for (name, help, v) in [
            (
                "net_connections_total",
                "TCP connections accepted.",
                c(&self.connections),
            ),
            (
                "net_requests_total",
                "HTTP requests parsed.",
                c(&self.requests),
            ),
            (
                "net_quota_rejections_total",
                "Requests refused by a per-client quota.",
                c(&self.quota_rejections),
            ),
            (
                "net_bad_requests_total",
                "Requests refused for malformed bodies or framing.",
                c(&self.bad_requests),
            ),
            (
                "net_streamed_results_total",
                "Individual results streamed over /batch responses.",
                c(&self.streamed_results),
            ),
        ] {
            writeln!(out, "# HELP {name} {help}").ok();
            writeln!(out, "# TYPE {name} counter").ok();
            writeln!(out, "{name} {v}").ok();
        }
        out
    }
}

struct ServerState {
    service: QueryService,
    config: ServerConfig,
    quota: Option<QuotaRegistry>,
    net_metrics: NetMetrics,
    shutdown: AtomicBool,
    active_connections: AtomicU64,
}

/// A running HTTP front door. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) aborts the accept loop without
/// draining.
pub struct HttpServer {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

/// How long [`HttpServer::shutdown`] waits for open connections to
/// finish their current request before giving up on them.
pub const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Socket read timeout; also bounds how long an idle keep-alive
/// connection takes to notice a server shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    pub fn start(
        service: QueryService,
        config: ServerConfig,
        addr: &str,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            service,
            quota: config.quota.map(QuotaRegistry::new),
            config,
            net_metrics: NetMetrics::default(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicU64::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::spawn(move || accept_loop(listener, accept_state));
        Ok(HttpServer {
            state,
            addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The query service behind the front door.
    pub fn service(&self) -> &QueryService {
        &self.state.service
    }

    /// The net-layer counters.
    pub fn net_metrics(&self) -> &NetMetrics {
        &self.state.net_metrics
    }

    /// Open connections right now.
    pub fn active_connections(&self) -> u64 {
        self.state.active_connections.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, drain the service (in-flight
    /// tickets finish, new submissions refuse with `503
    /// shutting_down`), and wait up to [`SHUTDOWN_GRACE`] for open
    /// connections to finish their current request.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.service.begin_drain();
        if let Some(handle) = self.accept_handle.take() {
            handle.join().ok();
        }
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        while self.state.active_connections.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // dropping the state drops the QueryService; its pool drains
        // gracefully on Drop
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().ok();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                state
                    .net_metrics
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                state.active_connections.fetch_add(1, Ordering::Relaxed);
                let conn_state = Arc::clone(&state);
                std::thread::spawn(move || {
                    handle_connection(stream, peer, &conn_state);
                    conn_state
                        .active_connections
                        .fetch_sub(1, Ordering::Release);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(stream: TcpStream, peer: SocketAddr, state: &ServerState) {
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    stream.set_nodelay(true).ok();
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut stream = stream;
    loop {
        let request = match http::read_request(&mut reader, state.config.max_body) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Io(_)) => {
                // read timeout on an idle keep-alive connection: close
                // if shutting down, otherwise keep waiting
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(ParseError::TooLarge(m)) => {
                state
                    .net_metrics
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                let w = WireError::routing(413, &m);
                respond_error(&mut stream, &w, false);
                return;
            }
            Err(ParseError::Malformed(m)) => {
                state
                    .net_metrics
                    .bad_requests
                    .fetch_add(1, Ordering::Relaxed);
                let w = WireError::routing(400, &m);
                respond_error(&mut stream, &w, false);
                return;
            }
        };
        state.net_metrics.requests.fetch_add(1, Ordering::Relaxed);
        // shutting down: answer this request, then close
        let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::Acquire);
        match route(&request, &peer, state, &mut stream, keep_alive) {
            Ok(()) => {}
            Err(_) => return, // broken pipe mid-response
        }
        if !keep_alive {
            return;
        }
    }
}

/// Renders a [`StoreStatus`] as the `/healthz` `store` field:
/// `{"status": "fresh"|"ok"|"recovered"|"degraded", ...detail}`.
fn store_status_json(status: &StoreStatus) -> Json {
    match status {
        StoreStatus::Recovered {
            facts_kept,
            facts_dropped,
            checksum_failures,
            eps_floor,
        } => {
            let mut o = vec![
                ("status".to_string(), Json::str(status.label())),
                ("facts_kept".to_string(), Json::Int(*facts_kept as i64)),
                (
                    "facts_dropped".to_string(),
                    Json::Int(*facts_dropped as i64),
                ),
                (
                    "checksum_failures".to_string(),
                    Json::Int(*checksum_failures as i64),
                ),
            ];
            if let Some(f) = eps_floor {
                o.push(("eps_floor".to_string(), Json::Float(*f)));
            }
            Json::Object(o)
        }
        StoreStatus::Degraded { reason } => Json::obj([
            ("status", Json::str(status.label())),
            ("reason", Json::str(reason.clone())),
        ]),
        StoreStatus::Ok { facts } => Json::obj([
            ("status", Json::str(status.label())),
            ("facts", Json::Int(*facts as i64)),
        ]),
        StoreStatus::Fresh => Json::obj([("status", Json::str(status.label()))]),
    }
}

fn respond_error(stream: &mut TcpStream, w: &WireError, keep_alive: bool) {
    let mut resp = Response::json(w.status, w.body.encode());
    if let Some(secs) = w.retry_after {
        resp = resp.with_header("Retry-After", secs.to_string());
    }
    http::write_response(stream, &resp, keep_alive).ok();
}

/// Builds the service request for one wire query, parsing the text
/// against the service's schema.
fn build_request(state: &ServerState, wq: &WireQuery) -> Result<QueryRequest, WireError> {
    let formula = parse(&wq.query, state.service.pdb().schema())
        .map_err(|e| WireError::bad_query(&format!("query does not parse: {e}")))?;
    let budget = CostBudget {
        max_n: wq.max_n,
        deadline: wq.deadline_ms.map(Duration::from_millis),
    };
    Ok(QueryRequest::new(formula, wq.eps).with_budget(budget))
}

fn check_quota(state: &ServerState, request: &Request, peer: &SocketAddr) -> Option<WireError> {
    let quota = state.quota.as_ref()?;
    let client = client_identity(request.header("authorization"), peer);
    match quota.check(&client, Instant::now()) {
        QuotaDecision::Admit => None,
        QuotaDecision::Reject { retry_after_secs } => {
            state
                .net_metrics
                .quota_rejections
                .fetch_add(1, Ordering::Relaxed);
            Some(WireError::quota_exhausted(retry_after_secs))
        }
    }
}

fn route(
    request: &Request,
    peer: &SocketAddr,
    state: &ServerState,
    stream: &mut TcpStream,
    keep_alive: bool,
) -> std::io::Result<()> {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let mut fields = vec![
                (
                    "status".to_string(),
                    Json::str(if state.service.is_draining() {
                        "draining"
                    } else {
                        "ok"
                    }),
                ),
                (
                    "materialized".to_string(),
                    Json::Int(state.service.materialized_len() as i64),
                ),
                (
                    "queue_depth".to_string(),
                    Json::Int(state.service.queue_depth() as i64),
                ),
                (
                    "threads".to_string(),
                    Json::Int(state.service.threads() as i64),
                ),
            ];
            // the store field is absent when the service runs without
            // a durable store
            if let Some(status) = state.service.store_status() {
                fields.push(("store".to_string(), store_status_json(&status)));
            }
            let body = Json::Object(fields);
            http::write_response(stream, &Response::json(200, body.encode()), keep_alive)
        }
        ("GET", "/metrics") => {
            let mut text = state.service.metrics().prometheus(state.config.arena_stats);
            text.push_str(&state.net_metrics.prometheus());
            http::write_response(stream, &Response::text(200, text), keep_alive)
        }
        ("POST", "/warm") => {
            if let Some(w) = check_quota(state, request, peer) {
                respond_error(stream, &w, keep_alive);
                return Ok(());
            }
            let eps = match proto::parse_warm_body(request.body_utf8().unwrap_or("")) {
                Ok(eps) => eps,
                Err(e) => {
                    state
                        .net_metrics
                        .bad_requests
                        .fetch_add(1, Ordering::Relaxed);
                    respond_error(stream, &WireError::bad_body(&e), keep_alive);
                    return Ok(());
                }
            };
            match state.service.warm(eps) {
                Ok(n) => http::write_response(
                    stream,
                    &Response::json(
                        200,
                        Json::obj([("materialized", Json::Int(n as i64))]).encode(),
                    ),
                    keep_alive,
                ),
                Err(e) => {
                    respond_error(stream, &proto::map_serve_error(&e), keep_alive);
                    Ok(())
                }
            }
        }
        ("POST", "/query") => {
            if let Some(w) = check_quota(state, request, peer) {
                respond_error(stream, &w, keep_alive);
                return Ok(());
            }
            let wq = match proto::parse_query_body(
                request.body_utf8().unwrap_or(""),
                state.config.default_eps,
            ) {
                Ok(wq) => wq,
                Err(e) => {
                    state
                        .net_metrics
                        .bad_requests
                        .fetch_add(1, Ordering::Relaxed);
                    respond_error(stream, &WireError::bad_body(&e), keep_alive);
                    return Ok(());
                }
            };
            let req = match build_request(state, &wq) {
                Ok(r) => r,
                Err(w) => {
                    state
                        .net_metrics
                        .bad_requests
                        .fetch_add(1, Ordering::Relaxed);
                    respond_error(stream, &w, keep_alive);
                    return Ok(());
                }
            };
            match state.service.evaluate(req) {
                Ok(resp) => http::write_response(
                    stream,
                    &Response::json(200, proto::response_json(&wq.query, &resp).encode()),
                    keep_alive,
                ),
                Err(e) => {
                    respond_error(stream, &proto::map_serve_error(&e), keep_alive);
                    Ok(())
                }
            }
        }
        ("POST", "/batch") => {
            if let Some(w) = check_quota(state, request, peer) {
                respond_error(stream, &w, keep_alive);
                return Ok(());
            }
            let wqs = match proto::parse_batch_body(
                request.body_utf8().unwrap_or(""),
                state.config.default_eps,
            ) {
                Ok(wqs) => wqs,
                Err(e) => {
                    state
                        .net_metrics
                        .bad_requests
                        .fetch_add(1, Ordering::Relaxed);
                    respond_error(stream, &WireError::bad_body(&e), keep_alive);
                    return Ok(());
                }
            };
            // parse every query up front; a parse error turns into an
            // error line at its position rather than failing the batch
            let mut requests = Vec::new();
            let mut parse_errors: Vec<Option<WireError>> = Vec::new();
            for wq in &wqs {
                match build_request(state, wq) {
                    Ok(r) => {
                        requests.push(Some(r));
                        parse_errors.push(None);
                    }
                    Err(w) => {
                        requests.push(None);
                        parse_errors.push(Some(w));
                    }
                }
            }
            let tickets = state
                .service
                .submit_batch(requests.iter().flatten().cloned().collect());
            let mut tickets = tickets.into_iter();
            // stream one ndjson line per query, in input order, as
            // each ticket resolves
            let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson", keep_alive)?;
            for (i, wq) in wqs.iter().enumerate() {
                let line = match &parse_errors[i] {
                    Some(w) => {
                        let mut obj = vec![("query".to_string(), Json::str(wq.query.clone()))];
                        if let Json::Object(pairs) = w.body.clone() {
                            obj.extend(pairs);
                        }
                        Json::Object(obj)
                    }
                    None => {
                        let ticket = tickets.next().expect("one ticket per parsed query");
                        match ticket.wait() {
                            Ok(resp) => proto::response_json(&wq.query, &resp),
                            Err(e) => {
                                let w = proto::map_serve_error(&e);
                                let mut obj =
                                    vec![("query".to_string(), Json::str(wq.query.clone()))];
                                if let Json::Object(pairs) = w.body {
                                    obj.extend(pairs);
                                }
                                Json::Object(obj)
                            }
                        }
                    }
                };
                let mut encoded = line.encode();
                encoded.push('\n');
                writer.chunk(encoded.as_bytes())?;
                state
                    .net_metrics
                    .streamed_results
                    .fetch_add(1, Ordering::Relaxed);
            }
            writer.finish()
        }
        (_, "/healthz" | "/metrics" | "/query" | "/batch" | "/warm") => {
            respond_error(
                stream,
                &WireError::routing(405, "method not allowed on this route"),
                keep_alive,
            );
            Ok(())
        }
        _ => {
            respond_error(
                stream,
                &WireError::routing(404, &format!("no route for {path}")),
                keep_alive,
            );
            Ok(())
        }
    }
}

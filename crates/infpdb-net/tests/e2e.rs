//! End-to-end tests: a real `HttpServer` on an ephemeral port, real
//! TCP clients, and bit-for-bit comparison against direct library
//! calls.

use infpdb_core::json::Json;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_net::client::{self, BaseUrl};
use infpdb_net::promtext;
use infpdb_net::server::{HttpServer, ServerConfig};
use infpdb_net::{NetBenchConfig, QuotaConfig};
use infpdb_serve::service::{QueryRequest, QueryService};
use infpdb_serve::{SchedulerKind, ServiceConfig};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use std::time::Duration;

fn pdb() -> CountableTiPdb {
    let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        schema,
        RelId(0),
        GeometricSeries::new(0.5, 0.5).unwrap(),
    ))
    .unwrap()
}

fn service(parallelism: usize) -> QueryService {
    QueryService::new(
        pdb(),
        ServiceConfig {
            threads: 2,
            parallelism,
            ..ServiceConfig::default()
        },
    )
}

fn start(config: ServerConfig, parallelism: usize) -> (HttpServer, BaseUrl) {
    let server = HttpServer::start(service(parallelism), config, "127.0.0.1:0").unwrap();
    let base = BaseUrl::parse(&format!("http://{}", server.addr())).unwrap();
    (server, base)
}

fn post(base: &BaseUrl, path: &str, body: &str) -> client::ClientResponse {
    client::request(
        base,
        "POST",
        path,
        &[("content-type", "application/json")],
        body.as_bytes(),
        Duration::from_secs(30),
    )
    .unwrap()
}

fn get(base: &BaseUrl, path: &str) -> client::ClientResponse {
    client::request(base, "GET", path, &[], b"", Duration::from_secs(30)).unwrap()
}

/// Extracts `error.code` from an error envelope.
fn error_code(doc: &Json) -> Option<&str> {
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

const QUERIES: &[&str] = &[
    "exists x. R(x)",
    "R(1)",
    "exists x, y. R(x) /\\ R(y) /\\ x != y",
];

fn query_body(q: &str, eps: f64) -> String {
    Json::obj([("query", Json::str(q)), ("eps", Json::Float(eps))]).encode()
}

/// The core guarantee: transport adds zero numeric drift. For every
/// query, at parallelism 1 and 2, the HTTP estimate and certified
/// interval are bit-identical to a direct `evaluate` call.
#[test]
fn http_responses_are_bit_identical_to_direct_calls() {
    for parallelism in [1usize, 2] {
        let (server, base) = start(ServerConfig::default(), parallelism);
        for q in QUERIES {
            let direct = server
                .service()
                .evaluate(QueryRequest::new(
                    parse(q, server.service().pdb().schema()).unwrap(),
                    1e-4,
                ))
                .unwrap();
            let resp = post(&base, "/query", &query_body(q, 1e-4));
            assert_eq!(resp.status, 200, "query {q:?}: {:?}", resp.body_utf8());
            let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
            let wire_estimate = doc.get("estimate").and_then(Json::as_f64).unwrap();
            assert_eq!(
                wire_estimate.to_bits(),
                direct.approx.estimate.to_bits(),
                "estimate drift for {q:?} at parallelism {parallelism}"
            );
            let interval = doc.get("interval").unwrap();
            let direct_iv = direct.approx.interval();
            assert_eq!(
                interval.get("lo").and_then(Json::as_f64).unwrap().to_bits(),
                direct_iv.lo().to_bits()
            );
            assert_eq!(
                interval.get("hi").and_then(Json::as_f64).unwrap().to_bits(),
                direct_iv.hi().to_bits()
            );
            // the response carries an evaluation trace and a budget report
            assert!(doc.get("trace").is_some());
            assert!(doc
                .get("report")
                .and_then(|r| r.get("escape_probability"))
                .is_some());
            assert_eq!(doc.get("query").and_then(Json::as_str), Some(*q));
        }
        server.shutdown();
    }
}

/// `/batch` streams one ndjson line per query, in input order, over
/// chunked transfer encoding, and each line is bit-identical to the
/// single-query route.
#[test]
fn batch_streams_ndjson_in_input_order() {
    let (server, base) = start(ServerConfig::default(), 1);
    let batch = Json::obj([
        (
            "queries",
            Json::Array(QUERIES.iter().map(|q| Json::str(*q)).collect()),
        ),
        ("eps", Json::Float(1e-4)),
    ])
    .encode();
    let resp = post(&base, "/batch", &batch);
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("transfer-encoding")
            .map(str::to_ascii_lowercase),
        Some("chunked".to_string())
    );
    assert_eq!(resp.header("content-type"), Some("application/x-ndjson"));
    let body = resp.body_utf8().unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), QUERIES.len());
    for (line, q) in lines.iter().zip(QUERIES) {
        let doc = Json::parse(line).unwrap();
        assert_eq!(doc.get("query").and_then(Json::as_str), Some(*q));
        let single = post(&base, "/query", &query_body(q, 1e-4));
        let single_doc = Json::parse(single.body_utf8().unwrap()).unwrap();
        assert_eq!(
            doc.get("estimate")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            single_doc
                .get("estimate")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            "batch line differs from single-query result for {q:?}"
        );
    }
    // a bad query inside a batch becomes an error line at its position,
    // not a failed batch
    let mixed = Json::obj([
        (
            "queries",
            Json::Array(vec![
                Json::str("R(1)"),
                Json::str("Nonexistent(1)"),
                Json::str("exists x. R(x)"),
            ]),
        ),
        ("eps", Json::Float(1e-3)),
    ])
    .encode();
    let resp = post(&base, "/batch", &mixed);
    assert_eq!(resp.status, 200);
    let lines: Vec<Json> = resp
        .body_utf8()
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].get("estimate").is_some());
    assert_eq!(error_code(&lines[1]), Some("bad_query"));
    assert!(lines[2].get("estimate").is_some());
    server.shutdown();
}

/// Per-client quotas: exhausting the bucket yields 429 + Retry-After,
/// and a different bearer token is unaffected.
#[test]
fn quota_exhaustion_yields_429_with_retry_after() {
    let config = ServerConfig {
        quota: Some(QuotaConfig::new(1.0, 2.0).unwrap()),
        ..ServerConfig::default()
    };
    let (server, base) = start(config, 1);
    let send = |token: &str| {
        client::request(
            &base,
            "POST",
            "/query",
            &[
                ("content-type", "application/json"),
                ("authorization", &format!("Bearer {token}")),
            ],
            query_body("R(1)", 1e-3).as_bytes(),
            Duration::from_secs(30),
        )
        .unwrap()
    };
    assert_eq!(send("alice").status, 200);
    assert_eq!(send("alice").status, 200);
    let rejected = send("alice");
    assert_eq!(rejected.status, 429);
    let retry_after: u64 = rejected.header("retry-after").unwrap().parse().unwrap();
    assert!(retry_after >= 1);
    let doc = Json::parse(rejected.body_utf8().unwrap()).unwrap();
    assert_eq!(error_code(&doc), Some("quota_exhausted"));
    // bob has his own bucket
    assert_eq!(send("bob").status, 200);
    assert!(
        server
            .net_metrics()
            .quota_rejections
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

/// Drain mode: `/healthz` reports it, new queries get `503
/// shutting_down`, and `shutdown()` completes.
#[test]
fn drain_refuses_new_queries_and_reports_in_healthz() {
    let (server, base) = start(ServerConfig::default(), 1);
    let healthy = get(&base, "/healthz");
    assert_eq!(healthy.status, 200);
    let doc = Json::parse(healthy.body_utf8().unwrap()).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    server.service().begin_drain();
    let draining = get(&base, "/healthz");
    let doc = Json::parse(draining.body_utf8().unwrap()).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("draining"));
    let refused = post(&base, "/query", &query_body("R(1)", 1e-3));
    assert_eq!(refused.status, 503);
    let doc = Json::parse(refused.body_utf8().unwrap()).unwrap();
    assert_eq!(error_code(&doc), Some("shutting_down"));
    server.shutdown();
}

/// Chaos-seeded `/metrics`: after a mix of good queries, malformed
/// bodies, unknown routes, wrong methods, and quota rejections, the
/// scrape still parses as clean Prometheus text format.
#[test]
fn metrics_scrape_parses_cleanly_after_chaos() {
    let config = ServerConfig {
        quota: Some(QuotaConfig::new(1.0, 3.0).unwrap()),
        ..ServerConfig::default()
    };
    let (server, base) = start(config, 1);
    // every request gets its own bearer token so the chaos itself is
    // not quota-throttled; the flood at the end shares one token to
    // trip the quota deliberately
    let mut serial = 0;
    let post_as = |token: &str, path: &str, body: &str| {
        client::request(
            &base,
            "POST",
            path,
            &[
                ("content-type", "application/json"),
                ("authorization", &format!("Bearer {token}")),
            ],
            body.as_bytes(),
            Duration::from_secs(30),
        )
        .unwrap()
    };
    let mut post_fresh = |path: &str, body: &str| {
        serial += 1;
        post_as(&format!("chaos-{serial}"), path, body)
    };
    // good traffic
    post_fresh("/query", &query_body("exists x. R(x)", 1e-3));
    post_fresh("/warm", r#"{"eps": 0.001}"#);
    // chaos traffic
    post_fresh("/query", "this is not json");
    post_fresh("/query", r#"{"eps": 0.5}"#); // missing query
    post_fresh("/query", &query_body("Nope(1)", 1e-3)); // unknown relation
    post_fresh("/nowhere", "{}"); // 404
    get(&base, "/query"); // 405
    for _ in 0..5 {
        post_as("flood", "/query", &query_body("R(1)", 1e-3)); // trips the quota
    }
    let scrape = get(&base, "/metrics");
    assert_eq!(scrape.status, 200);
    assert!(scrape
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    let text = scrape.body_utf8().unwrap();
    let parsed = promtext::parse_scrape(text).expect("scrape must parse");
    let problems = promtext::lint(&parsed);
    assert!(problems.is_empty(), "lint problems: {problems:?}");
    // the serving registry and the net layer both show up
    assert!(parsed.value("serve_requests_submitted_total").is_some());
    assert!(parsed.value("net_requests_total").unwrap() >= 10.0);
    assert!(parsed.value("net_bad_requests_total").unwrap() >= 2.0);
    assert!(parsed.value("net_quota_rejections_total").unwrap() >= 1.0);
    assert!(!parsed.family("serve_wait_micros").is_empty());
    server.shutdown();
}

/// A stealing-scheduler service behind the front door: the scheduler
/// counters show up on `/metrics`, the labelled per-worker family
/// passes the exposition linter, and the answers match the fixed
/// scheduler's bit for bit over HTTP.
#[test]
fn stealing_scheduler_metrics_pass_the_linter() {
    let svc = QueryService::new(
        pdb(),
        ServiceConfig {
            threads: 2,
            parallelism: 2,
            scheduler: SchedulerKind::Stealing,
            ..ServiceConfig::default()
        },
    );
    let server = HttpServer::start(svc, ServerConfig::default(), "127.0.0.1:0").unwrap();
    let base = BaseUrl::parse(&format!("http://{}", server.addr())).unwrap();
    let mut estimates = Vec::new();
    for q in QUERIES {
        let resp = post(&base, "/query", &query_body(q, 1e-3));
        assert_eq!(resp.status, 200, "{q}");
        let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
        estimates.push(doc.get("estimate").and_then(Json::as_f64).unwrap());
    }
    let scrape = get(&base, "/metrics");
    let text = scrape.body_utf8().unwrap();
    let parsed = promtext::parse_scrape(text).expect("scrape must parse");
    let problems = promtext::lint(&parsed);
    assert!(problems.is_empty(), "lint problems: {problems:?}");
    assert!(parsed.value("serve_steals_total").is_some());
    assert_eq!(parsed.value("serve_injector_depth"), Some(0.0));
    let workers = parsed.family("serve_worker_tasks_total");
    assert_eq!(workers.len(), 2, "one labelled sample per pool worker");
    server.shutdown();
    // same queries through a fixed-scheduler server: bit-equal answers
    let (fixed_server, fixed_base) = start(ServerConfig::default(), 2);
    for (q, want) in QUERIES.iter().zip(estimates) {
        let resp = post(&fixed_base, "/query", &query_body(q, 1e-3));
        let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
        let got = doc.get("estimate").and_then(Json::as_f64).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "{q}");
    }
    fixed_server.shutdown();
}

/// Cost-based planning over the wire: with the default Auto engine the
/// `/query` envelope names the chosen strategy, the trace carries the
/// per-strategy plan summary, and `/metrics` exposes the
/// `serve_plan_choice_total{strategy=...}` family plus
/// `serve_replans_total` in clean Prometheus text format.
#[test]
fn query_envelope_and_metrics_report_the_chosen_plan() {
    let (server, base) = start(ServerConfig::default(), 1);
    let mut strategies = Vec::new();
    for q in QUERIES {
        let resp = post(&base, "/query", &query_body(q, 1e-3));
        assert_eq!(resp.status, 200, "{q}");
        let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
        let strategy = doc
            .get("strategy")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("Auto response for {q:?} must name a strategy"))
            .to_string();
        assert!(
            ["lifted", "shannon", "mc", "kl", "mixed"].contains(&strategy.as_str()),
            "unknown strategy {strategy:?} for {q:?}"
        );
        // the trace carries the full per-strategy component counts
        let plan = doc
            .get("trace")
            .and_then(|t| t.get("plan"))
            .unwrap_or_else(|| panic!("Auto trace for {q:?} must carry a plan summary"));
        let total: i64 = ["lifted", "shannon", "mc", "kl"]
            .iter()
            .filter_map(|k| plan.get(k).and_then(Json::as_i64))
            .sum();
        assert!(total >= 1, "plan for {q:?} chose no components: {plan:?}");
        strategies.push(strategy);
    }
    // re-asking an answered query is served from the result cache and
    // reports the same strategy
    let resp = post(&base, "/query", &query_body(QUERIES[0], 1e-3));
    let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        doc.get("strategy").and_then(Json::as_str),
        Some(strategies[0].as_str())
    );
    let scrape = get(&base, "/metrics");
    assert_eq!(scrape.status, 200);
    let text = scrape.body_utf8().unwrap();
    let parsed = promtext::parse_scrape(text).expect("scrape must parse");
    let problems = promtext::lint(&parsed);
    assert!(problems.is_empty(), "lint problems: {problems:?}");
    // all four strategy labels are pre-registered, and the choices made
    // above are counted
    let family = parsed.family("serve_plan_choice_total");
    assert_eq!(family.len(), 4, "one sample per strategy label");
    let counted: f64 = family.iter().map(|s| s.value).sum();
    assert!(
        counted >= QUERIES.len() as f64,
        "plan choices missing from /metrics: {counted}"
    );
    // same ε throughout → no re-plans
    assert_eq!(parsed.value("serve_replans_total"), Some(0.0));
    server.shutdown();
}

/// `/warm` grounds the prefix and reports how many facts were
/// materialized; the count then shows in `/healthz`.
#[test]
fn warm_materializes_the_prefix() {
    let (server, base) = start(ServerConfig::default(), 1);
    let resp = post(&base, "/warm", r#"{"eps": 0.01}"#);
    assert_eq!(resp.status, 200);
    let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
    let n = doc.get("materialized").and_then(Json::as_i64).unwrap();
    assert!(n > 0);
    let health = Json::parse(get(&base, "/healthz").body_utf8().unwrap()).unwrap();
    assert_eq!(health.get("materialized").and_then(Json::as_i64), Some(n));
    server.shutdown();
}

/// The in-process load bench: sweeps connection levels against a live
/// server and verifies zero failures and zero bitwise mismatches.
#[test]
fn load_bench_smoke_reports_zero_drift() {
    let (server, _base) = start(ServerConfig::default(), 1);
    let config = NetBenchConfig {
        connection_levels: vec![1, 2],
        requests_per_connection: 5,
        queries: QUERIES.iter().map(|q| q.to_string()).collect(),
        eps: 1e-3,
    };
    let report = infpdb_net::loadbench::run(&server, &config).unwrap();
    assert_eq!(report.total_failed, 0);
    assert_eq!(report.total_mismatched, 0);
    assert_eq!(report.rows.len(), 2 * QUERIES.len());
    let artifact = report.to_json("2026-08-08", true);
    let doc = Json::parse(&artifact).unwrap();
    assert_eq!(doc.get("total_mismatched").and_then(Json::as_i64), Some(0));
    server.shutdown();
}

/// Keep-alive: several requests over one connection work; a request
/// with `Connection: close` ends it.
#[test]
fn keep_alive_reuses_one_connection() {
    let (server, base) = start(ServerConfig::default(), 1);
    let stream = std::net::TcpStream::connect(&base.authority).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    for _ in 0..3 {
        let resp = client::request_on(
            &stream,
            &base.authority,
            "POST",
            "/query",
            &[("content-type", "application/json")],
            query_body("R(1)", 1e-3).as_bytes(),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
    }
    server.shutdown();
}

/// `/healthz` gains a `store` field exactly when durability is
/// configured: absent without `store_dir`, `fresh` on an empty
/// directory, `ok` with the fact count after snapshot and reopen.
#[test]
fn healthz_reports_store_status_when_durable() {
    // no store configured → no store field at all
    let (server, base) = start(ServerConfig::default(), 1);
    let doc = Json::parse(get(&base, "/healthz").body_utf8().unwrap()).unwrap();
    assert!(doc.get("store").is_none());
    server.shutdown();

    let dir = std::env::temp_dir().join(format!("infpdb-e2e-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = |dir: &std::path::Path| {
        QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                store_dir: Some(dir.to_path_buf()),
                ..ServiceConfig::default()
            },
        )
    };

    // empty store directory → fresh
    let server = HttpServer::start(durable(&dir), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let base = BaseUrl::parse(&format!("http://{}", server.addr())).unwrap();
    let doc = Json::parse(get(&base, "/healthz").body_utf8().unwrap()).unwrap();
    assert_eq!(
        doc.get("store")
            .and_then(|s| s.get("status"))
            .and_then(Json::as_str),
        Some("fresh")
    );
    server.service().warm(0.01).unwrap();
    server.service().snapshot().unwrap().unwrap();
    let facts = server.service().materialized_len() as i64;
    server.shutdown();

    // reopen → ok with the persisted fact count
    let server = HttpServer::start(durable(&dir), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let base = BaseUrl::parse(&format!("http://{}", server.addr())).unwrap();
    let doc = Json::parse(get(&base, "/healthz").body_utf8().unwrap()).unwrap();
    let store = doc.get("store").expect("store field present");
    assert_eq!(store.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(store.get("facts").and_then(Json::as_i64), Some(facts));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The sharded-store counters reach `/metrics` as a well-formed scrape:
/// after a full snapshot, an incremental one, and an idle no-op, the
/// `store_snapshot_*` and `store_mmap_*` families carry the exact
/// accounting the `SnapshotInfo`s reported.
#[test]
fn metrics_expose_sharded_store_accounting() {
    let dir = std::env::temp_dir().join(format!("infpdb-e2e-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = |dir: &std::path::Path| {
        QueryService::new(
            pdb(),
            ServiceConfig {
                threads: 1,
                store_dir: Some(dir.to_path_buf()),
                store_shard_capacity: Some(2),
                ..ServiceConfig::default()
            },
        )
    };

    let server = HttpServer::start(durable(&dir), ServerConfig::default(), "127.0.0.1:0").unwrap();
    server.service().warm(0.01).unwrap();
    let full = server.service().snapshot().unwrap().unwrap();
    server.service().warm(0.0005).unwrap();
    let incr = server.service().snapshot().unwrap().unwrap();
    assert!(incr.shards_skipped >= 1, "{incr:?}");
    let noop = server.service().snapshot().unwrap().unwrap();
    assert!(noop.unchanged);
    let facts = server.service().materialized_len();
    server.shutdown();

    // reopen so the mmap counters fire, then scrape
    let server = HttpServer::start(durable(&dir), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let base = BaseUrl::parse(&format!("http://{}", server.addr())).unwrap();
    let health = Json::parse(get(&base, "/healthz").body_utf8().unwrap()).unwrap();
    assert_eq!(
        health
            .get("store")
            .and_then(|s| s.get("facts"))
            .and_then(Json::as_i64),
        Some(facts as i64)
    );
    let scrape = get(&base, "/metrics");
    assert_eq!(scrape.status, 200);
    let text = scrape.body_utf8().unwrap();
    let parsed = promtext::parse_scrape(text).expect("scrape must parse");
    let problems = promtext::lint(&parsed);
    assert!(problems.is_empty(), "lint problems: {problems:?}");
    let sample = |name: &str| -> f64 {
        parsed
            .value(name)
            .unwrap_or_else(|| panic!("missing {name} in scrape:\n{text}"))
    };
    // this fresh service saw no snapshots yet, only the mapped reopen
    assert_eq!(sample("store_snapshot_writes_total"), 0.0);
    assert_eq!(sample("store_snapshot_noops_total"), 0.0);
    assert_eq!(sample("store_snapshot_bytes_written_total"), 0.0);
    let shard_count = (incr.shards_written + incr.shards_skipped) as f64;
    assert_eq!(
        sample("store_mmap_maps_total") + sample("store_mmap_fallbacks_total"),
        shard_count,
        "one view per committed shard"
    );
    server.shutdown();

    // the writer's own registry carried the snapshot-side accounting
    // (scraped here via a third durable service doing the same dance)
    let service = durable(&dir);
    service.warm(0.0005).unwrap();
    let again = service.snapshot().unwrap().unwrap();
    assert!(again.unchanged, "reopened store is already current");
    let server = HttpServer::start(service, ServerConfig::default(), "127.0.0.1:0").unwrap();
    let base = BaseUrl::parse(&format!("http://{}", server.addr())).unwrap();
    let text = get(&base, "/metrics").body_utf8().unwrap().to_string();
    let parsed = promtext::parse_scrape(&text).expect("scrape must parse");
    assert_eq!(parsed.value("store_snapshot_noops_total"), Some(1.0));
    assert_eq!(parsed.value("store_snapshot_writes_total"), Some(0.0));
    let _ = full;
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

//! Property tests for the catalog's incremental fingerprint (ISSUE 10
//! satellite): under ANY interleaving of appends and prefix reads, the
//! running `FactCatalog::fingerprint` stays bit-identical to the batch
//! `TiTable::fingerprint` of the full prefix, prefix reads never
//! perturb the running combine, and the cached per-fact digests combine
//! to the same set-level value the durable store's per-shard
//! skip-checks rely on.

use infpdb_core::fact::Fact;
use infpdb_core::fingerprint::{combine_unordered, fact_fingerprint, Fingerprinter};
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;
use infpdb_ti::catalog::FactCatalog;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
}

/// One interleaving step: append the next enumerated fact (with this
/// probability, alternating relations) or read a prefix table at a
/// fraction of the current length.
#[derive(Debug, Clone)]
enum Op {
    Append(f64),
    Read(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // tag-tuple alternation (the shim has no prop_oneof): tag 0 appends
    // with the given probability, tag 1 reads a prefix at pct% of len
    let op = (0u8..2, 0u64..=1_000_000, 0u8..=100).prop_map(|(tag, prob, pct)| {
        if tag == 0 {
            Op::Append(prob as f64 / 1_000_000.0)
        } else {
            Op::Read(pct)
        }
    });
    prop::collection::vec(op, 0..40)
}

/// The i-th enumerated fact: alternates between `R(i)` and `S(i, "i")`
/// so interleavings cover multi-relation catalogs.
fn nth_fact(i: usize) -> Fact {
    if i.is_multiple_of(2) {
        Fact::new(RelId(0), [Value::int(i as i64)])
    } else {
        Fact::new(RelId(1), [Value::int(i as i64), Value::str(format!("{i}"))])
    }
}

/// The batch reference: what `fingerprint()` must equal, computed the
/// slow way from scratch (schema digest + unordered combine of every
/// fact's content digest).
fn batch_fingerprint(c: &FactCatalog) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write_u64(combine_unordered(c.schema().iter().map(|(_, r)| {
        let mut rf = Fingerprinter::new();
        rf.write_bytes(r.name().as_bytes())
            .write_u64(r.arity() as u64);
        rf.finish()
    })));
    fp.write_u64(combine_unordered(
        c.iter().map(|(_, f, p)| fact_fingerprint(c.schema(), f, p)),
    ));
    fp.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the interleaving, after every step the O(1) running
    /// fingerprint equals both the from-scratch batch combine and the
    /// full-prefix `TiTable::fingerprint`; prefix reads are pure.
    #[test]
    fn incremental_fingerprint_survives_any_interleaving(ops in ops()) {
        let mut c = FactCatalog::new(schema());
        let mut pushed = 0usize;
        for op in &ops {
            match op {
                Op::Append(p) => {
                    c.push(nth_fact(pushed), *p).unwrap();
                    pushed += 1;
                }
                Op::Read(pct) => {
                    let n = c.len() * usize::from(*pct) / 100;
                    let before = c.fingerprint();
                    let table = c.table_prefix(n);
                    prop_assert_eq!(table.len(), n);
                    // a read must not perturb the running combine, even
                    // though table and catalog share backing storage
                    prop_assert_eq!(c.fingerprint(), before);
                }
            }
            prop_assert_eq!(c.len(), pushed);
            // the running combine must stay bit-identical to both the
            // from-scratch batch reference and the table fingerprint
            prop_assert_eq!(c.fingerprint(), batch_fingerprint(&c));
            prop_assert_eq!(c.fingerprint(), c.table_prefix(c.len()).fingerprint());
        }
        // the digest cache is exactly the per-fact content digests, in
        // id order — the slice the store combines per shard subrange
        let digests: Vec<u64> = c
            .iter()
            .map(|(_, f, p)| fact_fingerprint(c.schema(), f, p))
            .collect();
        prop_assert_eq!(c.fact_digests(), digests.as_slice());
    }

    /// Shard-range algebra: the whole-set combine equals feeding the
    /// digest slice shard-chunk by shard-chunk — in ANY chunk order —
    /// into one running combiner. This multiset-union insensitivity is
    /// what lets incremental snapshots rewrite only tail shards while
    /// the manifest's `table_fp` stays equal to the catalog's running
    /// fingerprint, whatever order shards are listed or restored in.
    #[test]
    fn shard_chunked_feeding_reassembles_the_set_combine(probs in prop::collection::vec(0u64..=1_000_000, 0..24), cap in 1usize..8) {
        let mut c = FactCatalog::new(schema());
        for (i, p) in probs.iter().enumerate() {
            c.push(nth_fact(i), *p as f64 / 1_000_000.0).unwrap();
        }
        let digests = c.fact_digests();
        let whole = combine_unordered(digests.iter().copied());
        // in-order chunks, then reverse shard order: same multiset,
        // same combine
        for reversed in [false, true] {
            let chunks: Vec<&[u64]> = if reversed {
                digests.chunks(cap).rev().collect()
            } else {
                digests.chunks(cap).collect()
            };
            let refed = combine_unordered(chunks.iter().flat_map(|s| s.iter().copied()));
            prop_assert_eq!(whole, refed);
        }
        // per-shard combines are each order-insensitive too: reversing
        // records inside a shard leaves the shard fingerprint fixed
        for shard in digests.chunks(cap) {
            prop_assert_eq!(
                combine_unordered(shard.iter().copied()),
                combine_unordered(shard.iter().rev().copied())
            );
        }
    }
}

//! The existence characterization for countable tuple-independent PDBs.
//!
//! **Theorem 4.8**: given `(p_f)` with `p_f ∈ [0,1]`, a tuple-independent
//! PDB with `P(E_f) = p_f` exists **iff** `∑_f p_f` converges.
//!
//! * Sufficiency is the construction of Proposition 4.5 (implemented in
//!   [`crate::construction`]).
//! * Necessity is Lemma 4.6: in a t.i. PDB the events `E_{f_i}` are
//!   independent, and if `∑ P(E_{f_i}) = ∞` the second Borel–Cantelli lemma
//!   (Lemma 2.5) would force almost every instance to contain infinitely
//!   many facts — contradicting the finiteness of instances.
//!
//! [`certify`] decides the dichotomy on a series' own certificates;
//! [`ExistenceCertificate`] records the side taken and the witness. The
//! expected-size consequence (Corollary 4.7: countable t.i. PDBs have
//! finite expected instance size, `E(S_D) = ∑ p_f`) is exposed as
//! [`expected_size_bounds`].

use crate::TiError;
use infpdb_math::borel_cantelli;
use infpdb_math::series::{ProbSeries, TailBound};
use infpdb_math::MathError;

/// The outcome of the Theorem 4.8 dichotomy.
#[derive(Debug, Clone, PartialEq)]
pub enum ExistenceCertificate {
    /// The series converges; a t.i. PDB exists. Carries a certified upper
    /// bound on `∑ p_f` (= the PDB's expected instance size, Cor 4.7).
    Exists {
        /// Certified upper bound on the total mass.
        expected_size_bound: f64,
    },
    /// The series diverges; no t.i. PDB realizes it. Carries a Borel–
    /// Cantelli-style witness when one was computed.
    Impossible {
        /// `(index, partial_sum)` demonstrating unbounded partial sums, if
        /// scanned; `None` when divergence came from the series' own
        /// certificate.
        witness: Option<(usize, f64)>,
    },
}

/// Decides existence for a fact-probability series (Theorem 4.8).
pub fn certify<S: ProbSeries>(series: &S) -> ExistenceCertificate {
    match series.tail_upper(0) {
        TailBound::Finite(b) => ExistenceCertificate::Exists {
            expected_size_bound: b,
        },
        TailBound::Divergent => {
            // the certificate already proves divergence; the scan just
            // produces a concrete partial sum for the error message
            let witness = borel_cantelli::divergence_witness(series, 10.0, 1_000_000);
            ExistenceCertificate::Impossible { witness }
        }
        TailBound::Unknown => {
            // No certificate either way: scan for a divergence witness; if
            // found we can at least certify impossibility.
            match borel_cantelli::divergence_witness(series, 1e6, 10_000_000) {
                Some(w) => ExistenceCertificate::Impossible { witness: Some(w) },
                None => ExistenceCertificate::Impossible { witness: None },
            }
        }
    }
}

/// `Ok(bound)` if a t.i. PDB exists, `Err` (the Theorem 4.8 rejection)
/// otherwise.
pub fn require_exists<S: ProbSeries>(series: &S) -> Result<f64, TiError> {
    match certify(series) {
        ExistenceCertificate::Exists {
            expected_size_bound,
        } => Ok(expected_size_bound),
        ExistenceCertificate::Impossible { witness } => {
            let (witness_index, partial_sum) = witness.unwrap_or((0, f64::INFINITY));
            Err(TiError::Math(MathError::DivergentSeries {
                witness_index,
                partial_sum,
            }))
        }
    }
}

/// Certified enclosure `[lo, hi]` of the expected instance size
/// `E(S_D) = ∑ p_f` (Corollary 4.7), using a prefix of `n` explicit terms
/// plus the tail certificate.
pub fn expected_size_bounds<S: ProbSeries>(
    series: &S,
    prefix: usize,
) -> Result<(f64, f64), TiError> {
    series.total_bounds(prefix).map_err(TiError::Math)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_math::series::{
        FiniteSeries, GeometricSeries, HarmonicSeries, TailBound, ZetaSeries,
    };

    #[test]
    fn convergent_series_certify_existence() {
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        match certify(&g) {
            ExistenceCertificate::Exists {
                expected_size_bound,
            } => {
                assert!(expected_size_bound >= 1.0);
                assert!(expected_size_bound < 1.01);
            }
            other => panic!("{other:?}"),
        }
        assert!(require_exists(&g).is_ok());
        assert!(require_exists(&ZetaSeries::basel()).is_ok());
        assert!(require_exists(&FiniteSeries::new(vec![0.9, 0.9]).unwrap()).is_ok());
    }

    #[test]
    fn divergent_series_are_impossible_with_witness() {
        let h = HarmonicSeries::new(1.0).unwrap();
        match certify(&h) {
            ExistenceCertificate::Impossible { witness } => {
                let (i, s) = witness.expect("harmonic divergence is witnessable");
                assert!(s > 10.0);
                assert!(i < 1_000_000);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            require_exists(&h),
            Err(TiError::Math(MathError::DivergentSeries { .. }))
        ));
    }

    #[test]
    fn unknown_tail_with_fast_divergence_is_witnessed() {
        #[derive(Debug)]
        struct Mystery;
        impl ProbSeries for Mystery {
            fn term(&self, _i: usize) -> f64 {
                0.5
            }
            fn tail_upper(&self, _i: usize) -> TailBound {
                TailBound::Unknown
            }
        }
        match certify(&Mystery) {
            ExistenceCertificate::Impossible {
                witness: Some((_, s)),
            } => {
                assert!(s > 1e6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expected_size_brackets_true_total() {
        // Corollary 4.7: geometric with first=0.5, ratio=0.5 sums to 1.
        let g = GeometricSeries::new(0.5, 0.5).unwrap();
        let (lo, hi) = expected_size_bounds(&g, 30).unwrap();
        assert!(lo <= 1.0 && 1.0 <= hi);
        assert!(hi - lo < 1e-8);
        // diverging: error
        assert!(expected_size_bounds(&HarmonicSeries::new(0.5).unwrap(), 10).is_err());
    }
}

//! Fact enumerations paired with probability series.
//!
//! A [`FactSupply`] is the computational form of the paper's "family
//! `(p_f)_{f ∈ F[τ,U]}`" (Section 4.1) restricted to its countable support
//! `F_ω`, plus the Section 6 oracle access: an algorithm can generate the
//! facts `f₁, f₂, …` in order, query each probability, and bound the
//! remaining mass. Facts not enumerated implicitly have probability 0.

use crate::TiError;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Schema};
use infpdb_core::value::Value;
use infpdb_math::series::{FiniteSeries, ProbSeries, TailBound};
use std::borrow::Cow;
use std::sync::Arc;

/// How a supply produces its facts: a generator function building each
/// fact on demand, or explicit storage that can lend facts by reference.
#[derive(Clone)]
enum Gen {
    /// Facts are built by a closure on every access.
    Fn(Arc<dyn Fn(usize) -> Fact + Send + Sync>),
    /// Facts are stored; accessors can borrow without allocating.
    Vec(Arc<[Fact]>),
}

/// A countable supply of distinct facts with probabilities.
///
/// The enumeration must be injective: `fact(i) ≠ fact(j)` for `i ≠ j`.
/// [`FactSupply::check_injective`] verifies a prefix; constructors from
/// explicit vectors verify fully.
#[derive(Clone)]
pub struct FactSupply {
    schema: Schema,
    gen: Gen,
    series: Arc<dyn ProbSeries + Send + Sync>,
}

impl std::fmt::Debug for FactSupply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactSupply")
            .field("schema", &self.schema)
            .field("tail_upper(0)", &self.series.tail_upper(0))
            .finish()
    }
}

impl FactSupply {
    /// Builds a supply from an enumeration function and a series. The
    /// caller asserts injectivity of `gen`; use
    /// [`check_injective`](Self::check_injective) in tests.
    pub fn from_fn(
        schema: Schema,
        gen: impl Fn(usize) -> Fact + Send + Sync + 'static,
        series: impl ProbSeries + Send + Sync + 'static,
    ) -> Self {
        Self {
            schema,
            gen: Gen::Fn(Arc::new(gen)),
            series: Arc::new(series),
        }
    }

    /// Builds a finite supply from explicit `(fact, probability)` pairs,
    /// verifying distinctness. The facts are stored, not regenerated:
    /// [`fact_at`](Self::fact_at) lends them by reference, and the
    /// duplicate check below borrows instead of cloning every fact into
    /// its map.
    pub fn from_vec(schema: Schema, pairs: Vec<(Fact, f64)>) -> Result<Self, TiError> {
        let mut seen: std::collections::HashMap<&Fact, usize> = Default::default();
        for (i, (f, _)) in pairs.iter().enumerate() {
            if let Some(&j) = seen.get(f) {
                return Err(TiError::DuplicateEnumeration {
                    first: j,
                    second: i,
                });
            }
            seen.insert(f, i);
        }
        drop(seen);
        let series =
            FiniteSeries::new(pairs.iter().map(|(_, p)| *p).collect()).map_err(TiError::Math)?;
        let facts: Arc<[Fact]> = pairs.into_iter().map(|(f, _)| f).collect();
        Ok(Self {
            schema,
            gen: Gen::Vec(facts),
            series: Arc::new(series),
        })
    }

    /// The canonical infinite example: a unary relation over the positive
    /// integers, `fact(i) = R(i+1)` with probability `series.term(i)`.
    pub fn unary_over_naturals(
        schema: Schema,
        rel: RelId,
        series: impl ProbSeries + Send + Sync + 'static,
    ) -> Self {
        Self::from_fn(
            schema,
            move |i| Fact::new(rel, [Value::int(i as i64 + 1)]),
            series,
        )
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The `i`-th fact, owned. Builds a fresh `Fact` for closure-backed
    /// supplies; prefer [`fact_at`](Self::fact_at) in loops that only
    /// inspect the fact.
    pub fn fact(&self, i: usize) -> Fact {
        match &self.gen {
            Gen::Fn(g) => g(i),
            Gen::Vec(facts) => facts.get(i).cloned().unwrap_or_else(|| {
                // indexes past a finite support are never *used* (their
                // probability is 0), but the signature is total
                facts
                    .first()
                    .cloned()
                    .unwrap_or_else(|| Fact::new(RelId(0), []))
            }),
        }
    }

    /// The `i`-th fact, borrowed when the supply stores its facts
    /// ([`from_vec`](Self::from_vec)) and owned only when a generator
    /// closure must run. Probe loops — injectivity checks, enumeration
    /// searches, fingerprinting — use this to avoid a fresh allocation
    /// per fact.
    pub fn fact_at(&self, i: usize) -> Cow<'_, Fact> {
        match &self.gen {
            Gen::Fn(g) => Cow::Owned(g(i)),
            Gen::Vec(facts) => match facts.get(i) {
                Some(f) => Cow::Borrowed(f),
                None => Cow::Owned(self.fact(i)),
            },
        }
    }

    /// The `i`-th probability.
    pub fn prob(&self, i: usize) -> f64 {
        self.series.term(i)
    }

    /// Certified tail bound at `i`.
    pub fn tail_upper(&self, i: usize) -> TailBound {
        self.series.tail_upper(i)
    }

    /// The probability series.
    pub fn series(&self) -> &(dyn ProbSeries + Send + Sync) {
        self.series.as_ref()
    }

    /// `Some(n)` if only the first `n` facts can have positive probability.
    pub fn support_len(&self) -> Option<usize> {
        self.series.support_len()
    }

    /// Verifies injectivity of the first `n` enumerated facts.
    pub fn check_injective(&self, n: usize) -> Result<(), TiError> {
        let mut seen: std::collections::HashMap<Cow<'_, Fact>, usize> = Default::default();
        for i in 0..n {
            let f = self.fact_at(i);
            if let Some(&j) = seen.get(&f) {
                return Err(TiError::DuplicateEnumeration {
                    first: j,
                    second: i,
                });
            }
            seen.insert(f, i);
        }
        Ok(())
    }

    /// Searches the enumeration for a fact, returning its index. Linear
    /// scan bounded by `limit`.
    pub fn locate(&self, fact: &Fact, limit: usize) -> Result<usize, TiError> {
        let cap = self.support_len().unwrap_or(usize::MAX).min(limit);
        for i in 0..cap {
            if &*self.fact_at(i) == fact {
                return Ok(i);
            }
        }
        Err(TiError::FactNotFound {
            fact: fact.display(&self.schema).to_string(),
            searched: cap,
        })
    }
}

/// A series view over a `FactSupply` (delegates to the inner series); lets
/// supplies flow into the `infpdb_math` machinery.
impl ProbSeries for FactSupply {
    fn term(&self, i: usize) -> f64 {
        self.series.term(i)
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        self.series.tail_upper(i)
    }

    fn support_len(&self) -> Option<usize> {
        self.series.support_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::Relation;
    use infpdb_math::series::GeometricSeries;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    #[test]
    fn unary_over_naturals_enumerates_r_of_i() {
        let s = FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        );
        assert_eq!(s.fact(0), rfact(1));
        assert_eq!(s.fact(9), rfact(10));
        assert_eq!(s.prob(0), 0.5);
        assert_eq!(s.prob(2), 0.125);
        assert!(s.support_len().is_none());
        s.check_injective(1000).unwrap();
    }

    #[test]
    fn from_vec_checks_duplicates() {
        let dup = FactSupply::from_vec(schema(), vec![(rfact(1), 0.5), (rfact(1), 0.2)]);
        assert!(matches!(
            dup,
            Err(TiError::DuplicateEnumeration {
                first: 0,
                second: 1
            })
        ));
        let ok = FactSupply::from_vec(schema(), vec![(rfact(1), 0.5), (rfact(2), 0.2)]).unwrap();
        assert_eq!(ok.support_len(), Some(2));
        assert_eq!(ok.prob(5), 0.0); // beyond support
    }

    #[test]
    fn from_vec_rejects_bad_probabilities() {
        assert!(FactSupply::from_vec(schema(), vec![(rfact(1), 1.5)]).is_err());
    }

    #[test]
    fn check_injective_catches_constant_enumerations() {
        let s = FactSupply::from_fn(
            schema(),
            |_| rfact(7),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        );
        assert!(matches!(
            s.check_injective(10),
            Err(TiError::DuplicateEnumeration {
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn locate_finds_and_fails() {
        let s = FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        );
        assert_eq!(s.locate(&rfact(5), 100).unwrap(), 4);
        assert!(matches!(
            s.locate(&rfact(1000), 100),
            Err(TiError::FactNotFound { searched: 100, .. })
        ));
        // finite support caps the scan
        let fin = FactSupply::from_vec(schema(), vec![(rfact(1), 0.5)]).unwrap();
        assert!(matches!(
            fin.locate(&rfact(9), 1_000_000),
            Err(TiError::FactNotFound { searched: 1, .. })
        ));
    }

    #[test]
    fn series_view_delegates() {
        let s = FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        );
        assert_eq!(ProbSeries::term(&s, 1), 0.25);
        assert!(ProbSeries::tail_upper(&s, 0).finite().is_some());
        assert!(s.converges());
    }

    #[test]
    fn fact_at_borrows_from_stored_supplies() {
        let v = FactSupply::from_vec(schema(), vec![(rfact(1), 0.5), (rfact(2), 0.2)]).unwrap();
        assert!(matches!(v.fact_at(0), Cow::Borrowed(_)));
        assert_eq!(&*v.fact_at(1), &rfact(2));
        // past the finite support: the total-signature fallback, owned
        assert!(matches!(v.fact_at(9), Cow::Owned(_)));
        assert_eq!(v.fact(9), rfact(1));
        // closure-backed supplies must build each fact
        let f = FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        );
        assert!(matches!(f.fact_at(0), Cow::Owned(_)));
        assert_eq!(&*f.fact_at(0), &rfact(1));
    }

    #[test]
    fn debug_formatting_does_not_explode() {
        let s = FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        );
        let d = format!("{s:?}");
        assert!(d.contains("FactSupply"));
    }
}

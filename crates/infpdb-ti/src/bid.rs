//! Countably infinite block-independent-disjoint PDBs.
//!
//! Section 4.4: facts are partitioned into blocks; within a block facts are
//! mutually exclusive, across blocks independent. Proposition 4.13
//! constructs a countable b.i.d. PDB from per-block conditional
//! probabilities `(p_f^B)` with `∑_{f∈B} p_f^B ≤ 1`, provided the total
//! mass `∑_B ∑_{f∈B} p_f^B` converges; Theorem 4.15 shows convergence is
//! also necessary (Lemma 4.14, again Borel–Cantelli).
//!
//! A [`BlockSupply`] enumerates blocks (each a finite alternative list)
//! with a certified series of block masses; [`CountableBidPdb`] wraps a
//! convergence-certified supply, mirroring the t.i. construction: interval
//! instance probabilities, exact finite-support event probabilities via
//! truncation to finite [`BidTable`]s, ε-truncated sampling.

use crate::{existence, TiError};
use infpdb_core::fact::Fact;
use infpdb_core::instance::Instance;
use infpdb_core::schema::Schema;
use infpdb_core::space::rand_core::RngCore;
use infpdb_finite::BidTable;
use infpdb_math::series::{ProbSeries, TailBound};
use infpdb_math::{products, KahanSum, ProbInterval};
use std::sync::Arc;

/// A countable enumeration of blocks with certified mass tails.
///
/// `block(i)` returns block `i`'s alternatives `(fact, conditional
/// probability)`; `mass_series.term(i)` must equal (or certifiedly
/// dominate) `∑_f p_f` of block `i`, with valid tail bounds.
#[derive(Clone)]
pub struct BlockSupply {
    schema: Schema,
    gen: Arc<dyn Fn(usize) -> Vec<(Fact, f64)> + Send + Sync>,
    mass_series: Arc<dyn ProbSeries + Send + Sync>,
}

impl std::fmt::Debug for BlockSupply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockSupply")
            .field("schema", &self.schema)
            .field("mass_tail(0)", &self.mass_series.tail_upper(0))
            .finish()
    }
}

impl BlockSupply {
    /// Builds a block supply. The caller asserts that blocks are disjoint
    /// (no fact appears in two blocks) and that `mass_series.term(i)` is
    /// the mass of block `i`.
    pub fn from_fn(
        schema: Schema,
        gen: impl Fn(usize) -> Vec<(Fact, f64)> + Send + Sync + 'static,
        mass_series: impl ProbSeries + Send + Sync + 'static,
    ) -> Self {
        Self {
            schema,
            gen: Arc::new(gen),
            mass_series: Arc::new(mass_series),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Block `i`'s alternatives.
    pub fn block(&self, i: usize) -> Vec<(Fact, f64)> {
        (self.gen)(i)
    }

    /// The declared mass of block `i`.
    pub fn mass(&self, i: usize) -> f64 {
        self.mass_series.term(i)
    }

    /// Certified tail bound on `∑_{j≥i} mass(j)`.
    pub fn mass_tail(&self, i: usize) -> TailBound {
        self.mass_series.tail_upper(i)
    }

    /// `Some(n)` if only the first `n` blocks can carry mass.
    pub fn support_len_hint(&self) -> Option<usize> {
        self.mass_series.support_len()
    }

    /// Verifies block `i`: mass ≤ 1, declared mass matches the alternative
    /// sum, probabilities valid.
    pub fn check_block(&self, i: usize) -> Result<(), TiError> {
        let alts = self.block(i);
        let mut acc = KahanSum::new();
        for (_, p) in &alts {
            infpdb_math::check_probability(*p).map_err(TiError::Math)?;
            acc.add(*p);
        }
        let mass = acc.value();
        if mass > 1.0 + 1e-9 {
            return Err(TiError::BlockMassExceedsOne { block: i, mass });
        }
        let declared = self.mass(i);
        if (declared - mass).abs() > 1e-6 {
            return Err(TiError::Math(infpdb_math::MathError::NotAProbability(
                declared,
            )));
        }
        Ok(())
    }
}

impl ProbSeries for BlockSupply {
    fn term(&self, i: usize) -> f64 {
        // clamp: masses can reach 1 exactly; still a "probability" term
        self.mass_series.term(i)
    }

    fn tail_upper(&self, i: usize) -> TailBound {
        self.mass_series.tail_upper(i)
    }

    fn support_len(&self) -> Option<usize> {
        self.mass_series.support_len()
    }
}

/// A countably infinite b.i.d. PDB (Proposition 4.13 / Theorem 4.15).
#[derive(Debug, Clone)]
pub struct CountableBidPdb {
    supply: BlockSupply,
    expected_size_bound: f64,
}

impl CountableBidPdb {
    /// Certifies convergence of the block-mass series (Theorem 4.15) and
    /// validates the first `validate_blocks` blocks, then constructs the
    /// PDB.
    pub fn new(supply: BlockSupply, validate_blocks: usize) -> Result<Self, TiError> {
        let expected_size_bound = existence::require_exists(&supply)?;
        for i in 0..validate_blocks {
            supply.check_block(i)?;
        }
        Ok(Self {
            supply,
            expected_size_bound,
        })
    }

    /// The supply.
    pub fn supply(&self) -> &BlockSupply {
        &self.supply
    }

    /// Certified upper bound on `E(S_D) = ∑_B ∑_f p_f^B`.
    pub fn expected_size_bound(&self) -> f64 {
        self.expected_size_bound
    }

    /// Truncates to the finite b.i.d. table over the first `n` blocks.
    pub fn truncate(&self, n: usize) -> Result<BidTable, TiError> {
        let cap = self.supply.support_len().unwrap_or(usize::MAX).min(n);
        let blocks: Vec<Vec<(Fact, f64)>> = (0..cap).map(|i| self.supply.block(i)).collect();
        BidTable::from_blocks(self.supply.schema().clone(), blocks)
            .map_err(|e| TiError::Finite(e.to_string()))
    }

    /// `P({D})` for an instance given as `(block index, fact)` choices, as
    /// a certified interval: explicit blocks contribute their chosen
    /// alternative's probability (or are checked good), unlisted blocks
    /// contribute `p_⊥ = 1 − mass`, and the tail
    /// `∏_{i≥cut} (1 − mass_i)` is bracketed by the claim (∗) bounds
    /// applied to the block-mass series.
    pub fn instance_prob(&self, choices: &[(usize, Fact)]) -> Result<ProbInterval, TiError> {
        let mut chosen: std::collections::BTreeMap<usize, &Fact> = Default::default();
        for (b, f) in choices {
            if chosen.insert(*b, f).is_some() {
                // two facts in one block: bad instance (Def 4.11 (1))
                return ProbInterval::exact(0.0).map_err(TiError::Math);
            }
        }
        let min_cut = chosen.keys().next_back().map(|&b| b + 1).unwrap_or(0);
        let safe_cut =
            infpdb_math::truncation::index_with_tail_below(&self.supply, 0.5, usize::MAX)
                .map_err(TiError::Math)?;
        let cut = min_cut.max(safe_cut);
        let mut log_acc = KahanSum::new();
        for i in 0..cut {
            let factor = match chosen.get(&i) {
                Some(f) => {
                    let alts = self.supply.block(i);
                    match alts.iter().find(|(g, _)| &g == f) {
                        Some((_, p)) => *p,
                        None => {
                            return Err(TiError::FactNotFound {
                                fact: f.display(self.supply.schema()).to_string(),
                                searched: i,
                            })
                        }
                    }
                }
                None => 1.0 - self.supply.mass(i),
            };
            if factor <= 0.0 {
                return ProbInterval::exact(0.0).map_err(TiError::Math);
            }
            log_acc.add(factor.ln());
        }
        let explicit = log_acc.value().min(0.0).exp();
        let tail =
            products::tail_product_one_minus(&self.supply, cut, 32).map_err(TiError::Math)?;
        Ok(
            ProbInterval::new(explicit * tail.lo(), explicit * tail.hi())
                .map_err(TiError::Math)?
                .outward(1e-12),
        )
    }

    /// ε-truncated sampling: samples the first `n(ε)` blocks where the
    /// block-mass tail is below `tv_bound`; total-variation distance from
    /// the true distribution is at most that tail mass.
    pub fn sampler(&self, tv_bound: f64) -> Result<BidSampler, TiError> {
        let n = infpdb_math::truncation::index_with_tail_below(&self.supply, tv_bound, usize::MAX)
            .map_err(TiError::Math)?;
        Ok(BidSampler {
            table: self.truncate(n)?,
            tv_bound,
            prefix_blocks: n,
        })
    }
}

/// ε-truncated sampler over block prefixes.
#[derive(Debug)]
pub struct BidSampler {
    table: BidTable,
    tv_bound: f64,
    prefix_blocks: usize,
}

impl BidSampler {
    /// The certified TV bound.
    pub fn tv_bound(&self) -> f64 {
        self.tv_bound
    }

    /// Number of explicit blocks.
    pub fn prefix_blocks(&self) -> usize {
        self.prefix_blocks
    }

    /// The finite table sampled from.
    pub fn table(&self) -> &BidTable {
        &self.table
    }

    /// Draws one instance.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Instance {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation};
    use infpdb_core::value::Value;
    use infpdb_math::series::{GeometricSeries, HarmonicSeries};

    fn schema() -> Schema {
        // Key-value relation: key is the block, value the alternative.
        Schema::from_relations([Relation::new("R", 2)]).unwrap()
    }

    fn kv(k: i64, v: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(k), Value::int(v)])
    }

    /// Block i = { R(i, 0) with p = m_i/2, R(i, 1) with p = m_i/2 },
    /// m_i = 0.5^(i+1): total mass 1, converges.
    fn geometric_blocks() -> BlockSupply {
        BlockSupply::from_fn(
            schema(),
            |i| {
                let m = 0.5f64.powi(i as i32 + 1);
                vec![(kv(i as i64, 0), m / 2.0), (kv(i as i64, 1), m / 2.0)]
            },
            GeometricSeries::new(0.5, 0.5).unwrap(),
        )
    }

    #[test]
    fn construction_accepts_convergent() {
        let pdb = CountableBidPdb::new(geometric_blocks(), 16).unwrap();
        assert!(pdb.expected_size_bound() >= 1.0);
    }

    #[test]
    fn construction_rejects_divergent_masses() {
        // Theorem 4.15 necessity: harmonic block masses diverge.
        let supply = BlockSupply::from_fn(
            schema(),
            |i| vec![(kv(i as i64, 0), 1.0 / (i + 1) as f64)],
            HarmonicSeries::new(1.0).unwrap(),
        );
        assert!(matches!(
            CountableBidPdb::new(supply, 4),
            Err(TiError::Math(_))
        ));
    }

    #[test]
    fn block_validation_catches_overfull_and_mismatched() {
        let overfull = BlockSupply::from_fn(
            schema(),
            |i| vec![(kv(i as i64, 0), 0.7), (kv(i as i64, 1), 0.6)],
            GeometricSeries::new(0.5, 0.5).unwrap(),
        );
        assert!(matches!(
            overfull.check_block(0),
            Err(TiError::BlockMassExceedsOne { block: 0, .. })
        ));
        let mismatched = BlockSupply::from_fn(
            schema(),
            |i| vec![(kv(i as i64, 0), 0.1)],
            GeometricSeries::new(0.5, 0.5).unwrap(), // declares 0.5, actual 0.1
        );
        assert!(mismatched.check_block(0).is_err());
        geometric_blocks().check_block(3).unwrap();
    }

    #[test]
    fn truncation_is_a_finite_bid_table() {
        let pdb = CountableBidPdb::new(geometric_blocks(), 8).unwrap();
        let t = pdb.truncate(3).unwrap();
        assert_eq!(t.blocks().len(), 3);
        assert_eq!(t.len(), 6);
        // block masses: 0.5, 0.25, 0.125 with bottoms 0.5, 0.75, 0.875
        assert!((t.blocks()[0].bottom() - 0.5).abs() < 1e-12);
        assert!((t.blocks()[2].bottom() - 0.875).abs() < 1e-12);
        // marginals recovered
        assert!((t.marginal(&kv(0, 0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instance_prob_good_instances() {
        let pdb = CountableBidPdb::new(geometric_blocks(), 8).unwrap();
        // D = { R(0,1) }: p = 0.25 · ∏_{i≥1} (1 − m_i)
        let enc = pdb.instance_prob(&[(0, kv(0, 1))]).unwrap();
        let mut truth = 0.25;
        for i in 1..500 {
            truth *= 1.0 - 0.5f64.powi(i + 1);
        }
        assert!(enc.contains(truth), "{truth} ∉ {enc}");
        // empty instance: ∏ (1 − m_i)
        let empty = pdb.instance_prob(&[]).unwrap();
        let mut t2 = 1.0;
        for i in 0..500 {
            t2 *= 1.0 - 0.5f64.powi(i + 1);
        }
        assert!(empty.contains(t2));
    }

    #[test]
    fn instance_prob_bad_instances_are_zero() {
        let pdb = CountableBidPdb::new(geometric_blocks(), 8).unwrap();
        // two alternatives of block 0 (Def 4.11 condition (1))
        let enc = pdb.instance_prob(&[(0, kv(0, 0)), (0, kv(0, 1))]).unwrap();
        assert_eq!((enc.lo(), enc.hi()), (0.0, 0.0));
    }

    #[test]
    fn instance_prob_unknown_alternative_errors() {
        let pdb = CountableBidPdb::new(geometric_blocks(), 8).unwrap();
        assert!(matches!(
            pdb.instance_prob(&[(0, kv(0, 9))]),
            Err(TiError::FactNotFound { .. })
        ));
    }

    #[test]
    fn sampler_respects_block_exclusivity_and_marginals() {
        use infpdb_core::space::rand_core::SplitMix64;
        let pdb = CountableBidPdb::new(geometric_blocks(), 8).unwrap();
        let s = pdb.sampler(1e-4).unwrap();
        assert!(s.prefix_blocks() >= 13); // 0.5^n ≤ 1e-4 ⇒ n ≥ 14 for the tail
        let mut rng = SplitMix64::new(31);
        let n = 40_000;
        let (mut a, mut b, mut both) = (0usize, 0usize, 0usize);
        let id_a = s.table().interner().get(&kv(0, 0)).unwrap();
        let id_b = s.table().interner().get(&kv(0, 1)).unwrap();
        for _ in 0..n {
            let d = s.sample(&mut rng);
            let ha = d.contains(id_a);
            let hb = d.contains(id_b);
            assert!(!(ha && hb), "block exclusivity violated");
            a += ha as usize;
            b += hb as usize;
            both += (ha || hb) as usize;
        }
        assert!((a as f64 / n as f64 - 0.25).abs() < 0.01);
        assert!((b as f64 / n as f64 - 0.25).abs() < 0.01);
        assert!((both as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn cross_block_independence_via_truncation() {
        // Definition 4.11 (2) on the truncated table's world space.
        let pdb = CountableBidPdb::new(geometric_blocks(), 8).unwrap();
        let t = pdb.truncate(2).unwrap();
        let worlds = t.worlds().unwrap();
        use infpdb_core::event::Event;
        let e0 = Event::fact(t.interner().get(&kv(0, 0)).unwrap());
        let e1 = Event::fact(t.interner().get(&kv(1, 0)).unwrap());
        let joint = worlds.prob_event(&e0.clone().and(e1.clone()));
        let prod = worlds.prob_event(&e0) * worlds.prob_event(&e1);
        assert!((joint - prod).abs() < 1e-12);
    }

    #[test]
    fn expected_size_bound_is_total_mass() {
        let pdb = CountableBidPdb::new(geometric_blocks(), 4).unwrap();
        // Σ m_i = 1
        assert!((pdb.expected_size_bound() - 1.0).abs() < 1e-9);
    }
}

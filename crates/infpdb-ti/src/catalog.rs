//! Shared fact catalogs: the grounded artifact of the prepared-query
//! pipeline.
//!
//! Proposition 6.1's truncation length `n(ε)` depends only on the PDB's
//! probability series, so the materialized prefix `f₁ … f_n` is a stable,
//! query-independent artifact. A [`FactCatalog`] holds that prefix once —
//! dense fact ids equal to enumeration indexes, aligned probabilities —
//! and hands out [`TiTable`] snapshots *by sharing its backing storage*
//! (`Arc`-cloned interner and probability vector, length-bounded views)
//! instead of re-hashing owned `Fact`s, so repeat evaluations (and
//! ε-refinements that only extend the prefix) skip the grounding cost
//! entirely, at **every** prefix length — not just the full one.
//!
//! The catalog is append-only: extending to a larger `n` never perturbs
//! existing ids, which is what keeps prepared evaluations bit-for-bit
//! identical to the one-shot path — a prefix snapshot at `n` contains
//! exactly the facts, ids, and probability bits the one-shot loop would
//! have produced.
//!
//! Alongside the facts, the catalog keeps each fact's content digest
//! ([`fact_fingerprint`]) and a running [`UnorderedCombiner`], so
//! [`fingerprint`](FactCatalog::fingerprint) is O(1) per call and the
//! durable store's per-shard skip-checks combine cached digests instead
//! of rehashing 10⁷ facts at every snapshot.

use crate::TiError;
use infpdb_core::fact::{Fact, FactId};
use infpdb_core::fingerprint::{
    combine_unordered, fact_fingerprint, Fingerprinter, UnorderedCombiner,
};
use infpdb_core::interner::FactInterner;
use infpdb_core::schema::Schema;
use infpdb_finite::TiTable;
use std::sync::Arc;

/// A materialized enumeration prefix: dense fact ids, probabilities, and
/// the schema they live in. Append-only; snapshot tables via
/// [`table_prefix`](Self::table_prefix).
#[derive(Debug, Clone)]
pub struct FactCatalog {
    schema: Schema,
    interner: Arc<FactInterner>,
    probs: Arc<Vec<f64>>,
    /// `digests[i]` = `fact_fingerprint(schema, fact_i, prob_i)`, cached
    /// at push time so set-level fingerprints never rehash content.
    digests: Vec<u64>,
    /// Running order-insensitive combine of `digests` — kept in
    /// lockstep with every push, bit-identical to batch
    /// `combine_unordered(digests)`.
    combiner: UnorderedCombiner,
}

impl FactCatalog {
    /// An empty catalog over a schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            interner: Arc::new(FactInterner::new()),
            probs: Arc::new(Vec::new()),
            digests: Vec::new(),
            combiner: UnorderedCombiner::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Facts materialized so far (also the next enumeration index).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether nothing has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Appends the next enumerated fact. The id returned equals the
    /// fact's enumeration index; duplicates are rejected (enumerations
    /// are injective) and probabilities validated.
    pub fn push(&mut self, fact: Fact, p: f64) -> Result<FactId, TiError> {
        infpdb_math::check_probability(p).map_err(TiError::Math)?;
        if let Some(prev) = self.interner.get(&fact) {
            return Err(TiError::DuplicateEnumeration {
                first: prev.0 as usize,
                second: self.len(),
            });
        }
        // digest before interning: the fact is moved into the interner
        let digest = fact_fingerprint(&self.schema, &fact, p);
        let id = Arc::make_mut(&mut self.interner).intern(fact);
        debug_assert_eq!(id.0 as usize, self.probs.len());
        Arc::make_mut(&mut self.probs).push(p);
        self.digests.push(digest);
        self.combiner.add(digest);
        Ok(id)
    }

    /// The probability of a materialized fact id.
    pub fn prob(&self, id: FactId) -> f64 {
        self.probs[id.0 as usize]
    }

    /// The materialized fact for an id, borrowed from the catalog.
    pub fn fact(&self, id: FactId) -> &Fact {
        self.interner.resolve(id)
    }

    /// The cached per-fact content digests, aligned with fact ids.
    /// `digests()[i]` is `fact_fingerprint(schema, fact_i, prob_i)` —
    /// exactly what segment footers store, so the durable store computes
    /// a shard's fingerprint by combining a subrange of this slice
    /// without touching fact bytes.
    pub fn fact_digests(&self) -> &[u64] {
        &self.digests
    }

    /// The content fingerprint of the whole catalog, O(1) per call
    /// (amortized: one [`UnorderedCombiner::add`] per push, plus an
    /// O(#relations) schema digest here). Bit-identical to
    /// `self.table_prefix(self.len()).fingerprint()` — asserted by the
    /// property tests — without materializing a table or rehashing any
    /// fact.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u64(combine_unordered(self.schema.iter().map(|(_, r)| {
            let mut rf = Fingerprinter::new();
            rf.write_bytes(r.name().as_bytes())
                .write_u64(r.arity() as u64);
            rf.finish()
        })));
        fp.write_u64(self.combiner.finish());
        fp.finish()
    }

    /// Walks the materialized prefix in id order: `(id, fact, prob)`.
    /// This is the snapshot hook the durable store uses to serialize the
    /// catalog — the iteration order *is* the dense on-disk order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact, f64)> {
        self.interner
            .iter()
            .map(|(id, f)| (id, f, self.probs[id.0 as usize]))
    }

    /// Rebuilds a catalog from `(fact, probability)` pairs in enumeration
    /// order — the restore hook matching [`iter`](Self::iter). Ids are
    /// reassigned densely in input order, so a round trip through
    /// `iter`/`from_parts` is the identity (same ids, same probability
    /// bits). Fails like [`push`](Self::push) on duplicates or invalid
    /// probabilities.
    pub fn from_parts(
        schema: Schema,
        parts: impl IntoIterator<Item = (Fact, f64)>,
    ) -> Result<Self, TiError> {
        let mut c = FactCatalog::new(schema);
        for (fact, p) in parts {
            c.push(fact, p)?;
        }
        Ok(c)
    }

    /// A [`TiTable`] over the first `n` materialized facts — the `Ω_n`
    /// prefix of Proposition 6.1 with ids equal to enumeration indexes.
    ///
    /// Zero-copy at every `n`: the table is a length-`n` view sharing
    /// the catalog's `Arc`-backed interner and probability vector — no
    /// fact is re-hashed or cloned, whether the prefix is full or
    /// partial. Panics if `n` exceeds the materialized length.
    pub fn table_prefix(&self, n: usize) -> TiTable {
        assert!(
            n <= self.len(),
            "prefix {n} exceeds materialized length {}",
            self.len()
        );
        TiTable::from_shared_parts(
            self.schema.clone(),
            Arc::clone(&self.interner),
            Arc::clone(&self.probs),
            n,
        )
        .expect("catalog probabilities are validated on push")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation};
    use infpdb_core::value::Value;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    #[test]
    fn push_assigns_enumeration_indexes() {
        let mut c = FactCatalog::new(schema());
        assert!(c.is_empty());
        assert_eq!(c.push(rfact(1), 0.5).unwrap(), FactId(0));
        assert_eq!(c.push(rfact(2), 0.25).unwrap(), FactId(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.prob(FactId(1)), 0.25);
        assert_eq!(c.fact(FactId(0)), &rfact(1));
    }

    #[test]
    fn push_rejects_duplicates_and_bad_probabilities() {
        let mut c = FactCatalog::new(schema());
        c.push(rfact(1), 0.5).unwrap();
        assert!(matches!(
            c.push(rfact(1), 0.3),
            Err(TiError::DuplicateEnumeration {
                first: 0,
                second: 1
            })
        ));
        assert!(c.push(rfact(2), 1.5).is_err());
        assert_eq!(c.len(), 1, "failed pushes must not grow the catalog");
        assert_eq!(
            c.fact_digests().len(),
            1,
            "failed pushes must not perturb the digest cache"
        );
        assert_eq!(c.fingerprint(), c.table_prefix(1).fingerprint());
    }

    #[test]
    fn table_prefix_matches_incremental_construction() {
        let mut c = FactCatalog::new(schema());
        let probs = [0.5, 0.25, 0.125, 0.0625];
        for (i, &p) in probs.iter().enumerate() {
            c.push(rfact(i as i64 + 1), p).unwrap();
        }
        // full snapshot: shared-backing fast path
        let full = c.table_prefix(4);
        // reference built the one-shot way
        let reference = TiTable::from_facts(
            schema(),
            probs
                .iter()
                .enumerate()
                .map(|(i, &p)| (rfact(i as i64 + 1), p)),
        )
        .unwrap();
        assert_eq!(full.fingerprint(), reference.fingerprint());
        assert_eq!(full.prob(FactId(3)), 0.0625);
        // shorter prefix: same ids, fewer facts, still zero-copy
        let short = c.table_prefix(2);
        assert_eq!(short.len(), 2);
        assert_eq!(short.interner().resolve(FactId(1)), &rfact(2));
        assert_eq!(short.prob(FactId(1)), 0.25);
        assert_eq!(short.marginal(&rfact(3)), 0.0, "closed world at n");
    }

    #[test]
    #[should_panic(expected = "exceeds materialized length")]
    fn table_prefix_beyond_catalog_panics() {
        FactCatalog::new(schema()).table_prefix(1);
    }

    #[test]
    fn iter_from_parts_round_trip_is_identity() {
        let mut c = FactCatalog::new(schema());
        for (i, p) in [0.5, 0.25, 0.125].into_iter().enumerate() {
            c.push(rfact(i as i64 + 1), p).unwrap();
        }
        let rebuilt =
            FactCatalog::from_parts(schema(), c.iter().map(|(_, f, p)| (f.clone(), p))).unwrap();
        assert_eq!(rebuilt.len(), c.len());
        for (id, f, p) in c.iter() {
            assert_eq!(rebuilt.fact(id), f);
            assert_eq!(rebuilt.prob(id).to_bits(), p.to_bits());
        }
        assert_eq!(
            rebuilt.table_prefix(3).fingerprint(),
            c.table_prefix(3).fingerprint()
        );
        assert_eq!(rebuilt.fingerprint(), c.fingerprint());
    }

    #[test]
    fn incremental_fingerprint_equals_batch_table_fingerprint() {
        let mut c = FactCatalog::new(schema());
        assert_eq!(c.fingerprint(), c.table_prefix(0).fingerprint());
        for (i, p) in [0.5, 0.25, 0.125, 0.0625, 0.5].into_iter().enumerate() {
            c.push(rfact(i as i64 + 1), p).unwrap();
            assert_eq!(
                c.fingerprint(),
                c.table_prefix(c.len()).fingerprint(),
                "after push {i}: the running combine must stay bit-identical \
                 to the batch TiTable::fingerprint"
            );
        }
        // cached digests are exactly the per-fact content digests
        for (i, (_, f, p)) in c.iter().enumerate() {
            assert_eq!(c.fact_digests()[i], fact_fingerprint(c.schema(), f, p));
        }
    }
}

//! The countable tuple-independent construction (Proposition 4.5).
//!
//! Given a convergent family of fact probabilities, the paper constructs
//! the probability measure
//!
//! ```text
//! P({D}) = ∏_{f ∈ D} p_f · ∏_{f ∈ F_ω − D} (1 − p_f)
//! ```
//!
//! and proves it is a measure (Lemma 4.3, via Lemma 2.3's distributive law)
//! realizing the marginals independently (Lemma 4.4). A
//! [`CountableTiPdb`] wraps a [`FactSupply`] whose convergence has been
//! certified (Theorem 4.8) and computes:
//!
//! * instance probabilities as certified [`ProbInterval`]s — the infinite
//!   product over the tail is bracketed by the claim (∗) bounds;
//! * **exact** probabilities of finite-support events: by
//!   tuple-independence, an event that inspects only facts `f₁ … f_n` has
//!   the same probability as in the finite prefix table, so the finite
//!   engine answers exactly;
//! * truncations to finite [`TiTable`]s — the `Ω_n` of Proposition 6.1.

use crate::enumerator::FactSupply;
use crate::{existence, TiError};
use infpdb_core::event::Event;
use infpdb_core::fact::Fact;
use infpdb_core::schema::Schema;
use infpdb_finite::TiTable;
use infpdb_math::products;
use infpdb_math::{KahanSum, ProbInterval};

/// Default search limit when locating facts in an enumeration.
pub const DEFAULT_LOCATE_LIMIT: usize = 1_000_000;

/// A countably infinite tuple-independent PDB (Proposition 4.5).
#[derive(Debug, Clone)]
pub struct CountableTiPdb {
    supply: FactSupply,
    expected_size_bound: f64,
}

impl CountableTiPdb {
    /// Certifies convergence (Theorem 4.8) and constructs the PDB.
    /// Divergent supplies are rejected with a witness.
    pub fn new(supply: FactSupply) -> Result<Self, TiError> {
        let expected_size_bound = existence::require_exists(&supply)?;
        Ok(Self {
            supply,
            expected_size_bound,
        })
    }

    /// The underlying supply.
    pub fn supply(&self) -> &FactSupply {
        &self.supply
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.supply.schema()
    }

    /// Certified upper bound on `E(S_D) = ∑ p_f` (Corollary 4.7).
    pub fn expected_size_bound(&self) -> f64 {
        self.expected_size_bound
    }

    /// Certified enclosure of the expected size using `prefix` explicit
    /// terms.
    pub fn expected_size_bounds(&self, prefix: usize) -> Result<(f64, f64), TiError> {
        existence::expected_size_bounds(&self.supply, prefix)
    }

    /// Marginal `P(E_f)` by enumeration index.
    pub fn marginal_at(&self, i: usize) -> f64 {
        self.supply.prob(i)
    }

    /// Marginal `P(E_f)` of a fact, located by scanning at most `limit`
    /// enumeration entries.
    pub fn marginal(&self, fact: &Fact, limit: usize) -> Result<f64, TiError> {
        Ok(self.supply.prob(self.supply.locate(fact, limit)?))
    }

    /// The probability of the empty instance `∏ (1 − p_f)`, as a certified
    /// interval (tighter with larger `refine`).
    pub fn prob_empty(&self, refine: usize) -> Result<ProbInterval, TiError> {
        products::product_one_minus(&self.supply, refine).map_err(TiError::Math)
    }

    /// `P({D})` for an explicit instance `D` given by its facts
    /// (Proposition 4.5's formula), as a certified interval.
    ///
    /// Facts are located within `limit`; `refine` extra tail terms tighten
    /// the enclosure.
    pub fn instance_prob(
        &self,
        facts: &[Fact],
        refine: usize,
        limit: usize,
    ) -> Result<ProbInterval, TiError> {
        let mut idxs: Vec<usize> = facts
            .iter()
            .map(|f| self.supply.locate(f, limit))
            .collect::<Result<_, _>>()?;
        // duplicates collapse set-theoretically: the formula is over the set
        idxs.sort_unstable();
        idxs.dedup();
        // Cut after the last explicit fact, far enough out that the tail
        // product bound applies.
        let min_cut = idxs.last().map(|&i| i + 1).unwrap_or(0);
        let safe_cut =
            infpdb_math::truncation::index_with_tail_below(&self.supply, 0.5, usize::MAX)
                .map_err(TiError::Math)?;
        let cut = min_cut.max(safe_cut);
        // Explicit part: ∏_{i<cut, i∈D} p_i · ∏_{i<cut, i∉D} (1−p_i)
        let mut log_acc = KahanSum::new();
        let mut next = 0usize;
        for i in 0..cut {
            let p = self.supply.prob(i);
            let inside = next < idxs.len() && idxs[next] == i;
            if inside {
                next += 1;
                if p == 0.0 {
                    return ProbInterval::exact(0.0).map_err(TiError::Math);
                }
                log_acc.add(p.ln());
            } else {
                if p == 1.0 {
                    return ProbInterval::exact(0.0).map_err(TiError::Math);
                }
                log_acc.add((-p).ln_1p());
            }
        }
        let explicit = log_acc.value().min(0.0).exp();
        let tail =
            products::tail_product_one_minus(&self.supply, cut, refine).map_err(TiError::Math)?;
        Ok(
            ProbInterval::new(explicit * tail.lo(), explicit * tail.hi())
                .map_err(TiError::Math)?
                .outward(1e-12),
        )
    }

    /// The finite prefix table over facts `f₁ … f_n` — the restriction the
    /// truncation algorithm (Proposition 6.1) evaluates against. Fact ids
    /// in the table equal enumeration indexes.
    pub fn truncate(&self, n: usize) -> Result<TiTable, TiError> {
        let mut t = TiTable::new(self.schema().clone());
        let cap = self.supply.support_len().unwrap_or(usize::MAX).min(n);
        for i in 0..cap {
            t.add_fact(self.supply.fact(i), self.supply.prob(i))
                .map_err(|e| TiError::Finite(e.to_string()))?;
        }
        Ok(t)
    }

    /// **Exact** probability of an event whose support lies within the
    /// first `n` enumerated facts (fact ids = enumeration indexes).
    ///
    /// Correctness: by tuple-independence (Lemma 4.4) the occurrence
    /// indicators of `f₁ … f_n` are independent of everything beyond `n`,
    /// so the event's probability coincides with its probability in the
    /// prefix table — no approximation involved.
    pub fn prob_event_exact(&self, event: &Event, n: usize) -> Result<f64, TiError> {
        match event.support() {
            None => Err(TiError::UnboundedEvent),
            Some(ids) => {
                if ids.iter().any(|id| id.0 as usize >= n) {
                    return Err(TiError::UnboundedEvent);
                }
                let table = self.truncate(n)?;
                infpdb_finite::worlds::prob_event(event, &table)
                    .map_err(|e| TiError::Finite(e.to_string()))
            }
        }
    }

    /// Certified interval for `P(Ω_n)` — the probability that *no* fact
    /// beyond the first `n` occurs, `∏_{i≥n} (1 − p_i)` (the quantity (∗)
    /// bounds in Proposition 6.1's proof).
    pub fn prob_within_prefix(&self, n: usize, refine: usize) -> Result<ProbInterval, TiError> {
        let safe = infpdb_math::truncation::index_with_tail_below(&self.supply, 0.5, usize::MAX)
            .map_err(TiError::Math)?;
        if n >= safe {
            return products::tail_product_one_minus(&self.supply, n, refine)
                .map_err(TiError::Math);
        }
        // explicit factors from n to the safe cut, then the bounded tail
        let mut log_acc = KahanSum::new();
        for i in n..safe {
            let p = self.supply.prob(i);
            if p >= 1.0 {
                return ProbInterval::exact(0.0).map_err(TiError::Math);
            }
            log_acc.add((-p).ln_1p());
        }
        let explicit = log_acc.value().min(0.0).exp();
        let tail =
            products::tail_product_one_minus(&self.supply, safe, refine).map_err(TiError::Math)?;
        Ok(
            ProbInterval::new(explicit * tail.lo(), explicit * tail.hi())
                .map_err(TiError::Math)?
                .outward(1e-12),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::fact::FactId;
    use infpdb_core::schema::{RelId, Relation};
    use infpdb_core::value::Value;
    use infpdb_math::series::{GeometricSeries, HarmonicSeries, ZetaSeries};

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn geometric_pdb() -> CountableTiPdb {
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    #[test]
    fn construction_accepts_convergent_rejects_divergent() {
        assert!(geometric_pdb().expected_size_bound() >= 1.0);
        let divergent =
            FactSupply::unary_over_naturals(schema(), RelId(0), HarmonicSeries::new(1.0).unwrap());
        assert!(matches!(
            CountableTiPdb::new(divergent),
            Err(TiError::Math(_))
        ));
    }

    #[test]
    fn marginals_are_realized() {
        // Lemma 4.4: P(E_f) = p_f.
        let pdb = geometric_pdb();
        assert_eq!(pdb.marginal_at(0), 0.5);
        assert_eq!(pdb.marginal_at(3), 0.0625);
        assert_eq!(pdb.marginal(&rfact(2), 100).unwrap(), 0.25);
        assert!(pdb.marginal(&rfact(-1), 100).is_err());
    }

    #[test]
    fn empty_instance_probability_interval() {
        let pdb = geometric_pdb();
        let enc = pdb.prob_empty(64).unwrap();
        // truth: ∏ (1 − 2^{-i}) for i≥1 ≈ 0.288788...
        let truth = products::prefix_product_one_minus(pdb.supply(), 500).prob();
        assert!(enc.contains(truth), "{truth} ∉ {enc}");
        assert!(enc.width() < 1e-6);
    }

    #[test]
    fn instance_prob_formula() {
        let pdb = geometric_pdb();
        // D = {R(1)}: p₁ · ∏_{i≥2}(1−p_i) = 0.5 · ∏.../(1−0.5)
        let enc = pdb.instance_prob(&[rfact(1)], 64, 100).unwrap();
        let truth = {
            let all = products::prefix_product_one_minus(pdb.supply(), 500).prob();
            0.5 * all / (1.0 - 0.5)
        };
        assert!(enc.contains(truth), "{truth} ∉ {enc}");
        // monotonicity: adding an unlikely fact lowers probability
        let enc2 = pdb.instance_prob(&[rfact(1), rfact(10)], 64, 100).unwrap();
        assert!(enc2.hi() < enc.lo());
    }

    #[test]
    fn instance_prob_empty_matches_prob_empty() {
        let pdb = geometric_pdb();
        let a = pdb.instance_prob(&[], 64, 10).unwrap();
        let b = pdb.prob_empty(64).unwrap();
        assert!(a.intersect(&b).is_ok());
    }

    #[test]
    fn instance_prob_unknown_fact_errors() {
        let pdb = geometric_pdb();
        assert!(matches!(
            pdb.instance_prob(&[rfact(0)], 8, 50),
            Err(TiError::FactNotFound { .. })
        ));
    }

    #[test]
    fn lemma_4_3_mass_sums_to_one_within_tail() {
        // Sum of P({D}) over all D ⊆ {f₁…f_k} should approach 1 as k grows
        // (the mass outside is bounded by the escape probability).
        let pdb = geometric_pdb();
        let k = 10;
        let mut total = 0.0;
        for mask in 0u32..(1 << k) {
            let facts: Vec<Fact> = (0..k)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| rfact(i as i64 + 1))
                .collect();
            total += pdb.instance_prob(&facts, 32, 100).unwrap().midpoint();
        }
        let escape = 1.0 - pdb.prob_within_prefix(k, 32).unwrap().lo();
        assert!(total <= 1.0 + 1e-6);
        assert!(
            total >= 1.0 - escape - 1e-6,
            "total {total}, escape {escape}"
        );
    }

    #[test]
    fn truncation_produces_prefix_table() {
        let pdb = geometric_pdb();
        let t = pdb.truncate(4).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.prob(FactId(2)), 0.125);
        assert_eq!(t.interner().resolve(FactId(0)), &rfact(1));
    }

    #[test]
    fn finite_support_truncation_caps() {
        let supply =
            FactSupply::from_vec(schema(), vec![(rfact(1), 0.5), (rfact(2), 0.25)]).unwrap();
        let pdb = CountableTiPdb::new(supply).unwrap();
        let t = pdb.truncate(100).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn exact_event_probabilities() {
        // Lemma 4.4: events over the first n facts are exact.
        let pdb = geometric_pdb();
        let e = Event::fact(FactId(0)); // R(1), p = 0.5
        assert!((pdb.prob_event_exact(&e, 4).unwrap() - 0.5).abs() < 1e-15);
        let both = Event::fact(FactId(0)).and(Event::fact(FactId(1)));
        assert!((pdb.prob_event_exact(&both, 4).unwrap() - 0.125).abs() < 1e-15);
        let any = Event::any_of([FactId(0), FactId(1)]);
        assert!((pdb.prob_event_exact(&any, 4).unwrap() - 0.625).abs() < 1e-15);
        // independence of E_f (Definition 4.1 / Lemma 4.2)
        let p_joint = pdb.prob_event_exact(&both, 4).unwrap();
        let p0 = pdb.prob_event_exact(&Event::fact(FactId(0)), 4).unwrap();
        let p1 = pdb.prob_event_exact(&Event::fact(FactId(1)), 4).unwrap();
        assert!((p_joint - p0 * p1).abs() < 1e-15);
    }

    #[test]
    fn exact_event_requires_finite_support_within_prefix() {
        let pdb = geometric_pdb();
        assert!(matches!(
            pdb.prob_event_exact(&Event::SizeAtLeast(1), 4),
            Err(TiError::UnboundedEvent)
        ));
        // support beyond the requested prefix
        let e = Event::fact(FactId(10));
        assert!(matches!(
            pdb.prob_event_exact(&e, 4),
            Err(TiError::UnboundedEvent)
        ));
        assert!(pdb.prob_event_exact(&e, 11).is_ok());
    }

    #[test]
    fn prob_within_prefix_brackets_truth() {
        let pdb = geometric_pdb();
        for n in [0usize, 2, 5, 10] {
            let enc = pdb.prob_within_prefix(n, 64).unwrap();
            // truth by long explicit product of terms ≥ n
            let mut acc = 1.0;
            for i in n..600 {
                acc *= 1.0 - pdb.supply().prob(i);
            }
            assert!(enc.contains(acc), "n={n}: {acc} ∉ {enc}");
        }
    }

    #[test]
    fn prob_within_prefix_increases_with_n() {
        let pdb = geometric_pdb();
        let a = pdb.prob_within_prefix(1, 64).unwrap();
        let b = pdb.prob_within_prefix(8, 64).unwrap();
        assert!(b.lo() > a.hi());
    }

    #[test]
    fn zeta_pdb_expected_size() {
        let pdb = CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            ZetaSeries::basel(),
        ))
        .unwrap();
        let (lo, hi) = pdb.expected_size_bounds(100_000).unwrap();
        assert!(lo <= 1.0 && 1.0 <= hi);
    }
}

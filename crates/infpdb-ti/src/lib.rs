#![warn(missing_docs)]
//! Countably infinite tuple-independent (and block-independent-disjoint)
//! probabilistic databases — Section 4 of Grohe & Lindner (PODS 2019).
//!
//! The central objects:
//!
//! * [`enumerator::FactSupply`] — a countable enumeration of distinct facts
//!   paired with a fact-probability series carrying certified tail bounds:
//!   the "given family `(p_f)`" of Section 4.1 plus the oracle access
//!   (i)/(ii) of Section 6.
//! * [`existence`] — Theorem 4.8: a tuple-independent PDB realizing the
//!   probabilities exists **iff** the series converges; divergent inputs
//!   are rejected with a witness (Lemma 4.6 via Borel–Cantelli).
//! * [`construction::CountableTiPdb`] — the constructed PDB of
//!   Proposition 4.5, with instance probabilities
//!   `P({D}) = ∏_{f∈D} p_f · ∏_{f∈F_ω−D} (1−p_f)` returned as certified
//!   intervals, exact probabilities for finite-support events (Lemma 4.4),
//!   and truncations to finite [`infpdb_finite::TiTable`]s.
//! * [`sampler`] — ε-truncated instance sampling with a certified
//!   total-variation bound.
//! * [`bid`] — the countable b.i.d. construction of Proposition 4.13 and
//!   its existence characterization, Theorem 4.15.
//! * [`counterexample`] — Example 3.3 (infinite expected size),
//!   Remark 4.10 (finite mean, infinite higher moments) and the size
//!   envelope machinery behind Proposition 4.9 (not every countable PDB is
//!   FO-definable over a t.i. one).

pub mod bid;
pub mod catalog;
pub mod construction;
pub mod counterexample;
pub mod enumerator;
pub mod existence;
pub mod fingerprint;
pub mod sampler;

pub use construction::CountableTiPdb;
pub use enumerator::FactSupply;

/// Errors of the infinite-PDB layer.
#[derive(Debug, Clone, PartialEq)]
pub enum TiError {
    /// Numeric / convergence error (includes Theorem 4.8 rejections).
    Math(infpdb_math::MathError),
    /// Relational substrate error.
    Core(infpdb_core::CoreError),
    /// Finite-engine error (from truncations).
    Finite(String),
    /// A fact was not found within the enumeration search limit.
    FactNotFound {
        /// Rendered fact.
        fact: String,
        /// How far the enumeration was searched.
        searched: usize,
    },
    /// An operation needs an event with finite support (e.g. exact event
    /// probability), but the event inspects unboundedly many facts.
    UnboundedEvent,
    /// The fact enumeration produced a duplicate (must be injective).
    DuplicateEnumeration {
        /// First index.
        first: usize,
        /// Second index.
        second: usize,
    },
    /// A block's conditional probabilities sum to more than 1
    /// (b.i.d. precondition of Theorem 4.15).
    BlockMassExceedsOne {
        /// Block index.
        block: usize,
        /// Offending mass.
        mass: f64,
    },
}

impl std::fmt::Display for TiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiError::Math(e) => write!(f, "{e}"),
            TiError::Core(e) => write!(f, "{e}"),
            TiError::Finite(e) => write!(f, "{e}"),
            TiError::FactNotFound { fact, searched } => write!(
                f,
                "fact {fact} not found among the first {searched} enumerated facts"
            ),
            TiError::UnboundedEvent => write!(
                f,
                "event inspects unboundedly many facts; only finite-support events have \
                 exact probabilities here"
            ),
            TiError::DuplicateEnumeration { first, second } => write!(
                f,
                "fact enumeration is not injective: indices {first} and {second} coincide"
            ),
            TiError::BlockMassExceedsOne { block, mass } => {
                write!(f, "block {block} has conditional mass {mass} > 1")
            }
        }
    }
}

impl std::error::Error for TiError {}

impl From<infpdb_math::MathError> for TiError {
    fn from(e: infpdb_math::MathError) -> Self {
        TiError::Math(e)
    }
}

impl From<infpdb_core::CoreError> for TiError {
    fn from(e: infpdb_core::CoreError) -> Self {
        TiError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(TiError::UnboundedEvent.to_string().contains("finite"));
        assert!(TiError::FactNotFound {
            fact: "R(1)".into(),
            searched: 100
        }
        .to_string()
        .contains("R(1)"));
        assert!(TiError::DuplicateEnumeration {
            first: 1,
            second: 5
        }
        .to_string()
        .contains("injective"));
        assert!(TiError::BlockMassExceedsOne {
            block: 0,
            mass: 1.2
        }
        .to_string()
        .contains("1.2"));
        let m: TiError = infpdb_math::MathError::UnknownTail.into();
        assert!(m.to_string().contains("tail"));
        let c: TiError = infpdb_core::CoreError::EmptySpace.into();
        assert!(c.to_string().contains("sample space"));
        assert!(TiError::Finite("boom".into()).to_string().contains("boom"));
    }
}

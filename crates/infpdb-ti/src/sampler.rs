//! Sampling instances of countable tuple-independent PDBs.
//!
//! An instance of a countable t.i. PDB is determined by infinitely many
//! independent coins, of which almost surely only finitely many come up
//! heads (Borel–Cantelli, since `∑ p_f < ∞`). Exact simulation would need
//! lazily-refined tail products; we provide the pragmatic variant the rest
//! of the library is built around: **ε-truncated sampling**.
//!
//! [`TruncatedSampler`] flips the first `n(ε)` coins where `n(ε)` is chosen
//! so the tail mass is below `ε`. The sampled distribution then differs
//! from the true one by at most `ε` in total variation: the two measures
//! can be coupled to disagree only when some tail fact occurs, and
//! `P(∃ tail fact) ≤ ∑_{i>n} p_i ≤ ε` (union bound). The bound is carried
//! on the sampler and reported, never silently dropped — see DESIGN.md
//! "Substitutions".

use crate::construction::CountableTiPdb;
use crate::TiError;
use infpdb_core::instance::Instance;
use infpdb_core::space::rand_core::RngCore;
use infpdb_finite::TiTable;

/// An ε-truncated sampler for a countable t.i. PDB.
#[derive(Debug)]
pub struct TruncatedSampler {
    table: TiTable,
    prefix_len: usize,
    tv_bound: f64,
}

impl TruncatedSampler {
    /// Builds a sampler whose output distribution is within `tv_bound`
    /// total-variation distance of the true instance distribution.
    pub fn new(pdb: &CountableTiPdb, tv_bound: f64) -> Result<Self, TiError> {
        let n = infpdb_math::truncation::index_with_tail_below(pdb.supply(), tv_bound, usize::MAX)
            .map_err(TiError::Math)?;
        let table = pdb.truncate(n)?;
        Ok(Self {
            table,
            prefix_len: n,
            tv_bound,
        })
    }

    /// The certified total-variation bound.
    pub fn tv_bound(&self) -> f64 {
        self.tv_bound
    }

    /// Number of explicit coins flipped per sample.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// The finite table being sampled (fact ids = enumeration indexes).
    pub fn table(&self) -> &TiTable {
        &self.table
    }

    /// Draws one instance.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Instance {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::FactSupply;
    use infpdb_core::fact::FactId;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::space::rand_core::SplitMix64;
    use infpdb_math::series::{GeometricSeries, ZetaSeries};

    fn pdb(series: impl infpdb_math::series::ProbSeries + Send + Sync + 'static) -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(schema, RelId(0), series)).unwrap()
    }

    #[test]
    fn sampler_reports_its_certificates() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let s = TruncatedSampler::new(&p, 0.01).unwrap();
        assert_eq!(s.tv_bound(), 0.01);
        // geometric tail 0.5^n ≤ 0.01 first at n = 7
        assert_eq!(s.prefix_len(), 7);
        assert_eq!(s.table().len(), 7);
    }

    #[test]
    fn sampled_marginals_match_fact_probabilities() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let s = TruncatedSampler::new(&p, 1e-4).unwrap();
        let mut rng = SplitMix64::new(21);
        let n = 40_000;
        let mut count0 = 0usize;
        let mut count1 = 0usize;
        for _ in 0..n {
            let d = s.sample(&mut rng);
            count0 += d.contains(FactId(0)) as usize;
            count1 += d.contains(FactId(1)) as usize;
        }
        assert!((count0 as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((count1 as f64 / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn sampled_sizes_have_expected_mean() {
        // E(S_D) = Σ p_i = 1 for the geometric(0.5, 0.5) family
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let s = TruncatedSampler::new(&p, 1e-4).unwrap();
        let mut rng = SplitMix64::new(22);
        let n = 40_000;
        let total: usize = (0..n).map(|_| s.sample(&mut rng).size()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean size {mean}");
    }

    #[test]
    fn empirical_independence_of_two_facts() {
        // Lemma 4.4 observed through the sampler.
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let s = TruncatedSampler::new(&p, 1e-4).unwrap();
        let mut rng = SplitMix64::new(23);
        let n = 60_000;
        let (mut c0, mut c1, mut cboth) = (0usize, 0usize, 0usize);
        for _ in 0..n {
            let d = s.sample(&mut rng);
            let h0 = d.contains(FactId(0));
            let h1 = d.contains(FactId(1));
            c0 += h0 as usize;
            c1 += h1 as usize;
            cboth += (h0 && h1) as usize;
        }
        let (f0, f1, fboth) = (
            c0 as f64 / n as f64,
            c1 as f64 / n as f64,
            cboth as f64 / n as f64,
        );
        assert!((fboth - f0 * f1).abs() < 0.01, "{fboth} vs {}", f0 * f1);
    }

    #[test]
    fn slow_series_need_longer_prefixes() {
        let pg = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let pz = pdb(ZetaSeries::basel());
        let sg = TruncatedSampler::new(&pg, 0.01).unwrap();
        let sz = TruncatedSampler::new(&pz, 0.01).unwrap();
        assert!(sz.prefix_len() > 5 * sg.prefix_len());
    }

    #[test]
    fn tighter_bounds_monotonically_longer_prefixes() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let a = TruncatedSampler::new(&p, 0.1).unwrap();
        let b = TruncatedSampler::new(&p, 0.001).unwrap();
        assert!(b.prefix_len() > a.prefix_len());
    }
}

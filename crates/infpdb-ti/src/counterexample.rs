//! The expressivity counterexamples of Sections 3.2 and 4.3.
//!
//! * **Example 3.3** — a countable PDB with *infinite* expected instance
//!   size: `P({D_n}) = 6/(π² n²)` where `D_n = {R(1), …, R(2ⁿ)}`, so
//!   `E(S_D) = ∑ 6·2ⁿ/(π² n²) = ∞`.
//! * **Proposition 4.9** — that PDB is not FO-definable over *any*
//!   tuple-independent PDB: a t.i. PDB has finite expected size
//!   (Corollary 4.7) and any FO view satisfies the size envelope
//!   `‖V(C)‖ ≤ k·‖C‖ + c` (Fact 2.1), so the image's expected size would
//!   be finite too.
//! * **Remark 4.10** — variants with finite mean but infinite `k`-th
//!   moment: `P({D_n}) ∝ 1/n^{k+2}` with `‖D_n‖ = n`.
//!
//! These are *lazy* PDBs (their supports are infinite), exposed through
//! explicit instance/probability accessors plus truncated materializations
//! for measurement.

use infpdb_core::fact::Fact;
use infpdb_core::instance::Instance;
use infpdb_core::interner::FactInterner;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::space::DiscreteSpace;
use infpdb_core::value::Value;
use infpdb_math::KahanSum;

/// A lazily-enumerated countable PDB with explicit instance sizes:
/// outcome `n ≥ 1` has probability `prob(n)` and instance size `size(n)`.
#[derive(Debug, Clone)]
pub struct LazySizedPdb {
    schema: Schema,
    /// normalization constant of the probability sequence
    norm: f64,
    /// exponent in `P ∝ 1/n^exponent`
    exponent: i32,
    /// whether sizes grow exponentially (`2^n`, Example 3.3) or linearly
    /// (`n`, Remark 4.10)
    exponential_sizes: bool,
}

impl LazySizedPdb {
    /// Example 3.3: `P({D_n}) = 6/(π² n²)`, `‖D_n‖ = 2ⁿ`; `E(S_D) = ∞`.
    pub fn example_3_3() -> Self {
        Self {
            schema: Schema::from_relations([Relation::new("R", 1)]).expect("static schema"),
            norm: 6.0 / (std::f64::consts::PI * std::f64::consts::PI),
            exponent: 2,
            exponential_sizes: true,
        }
    }

    /// Remark 4.10 for moment `k ≥ 1`: `P({D_n}) = c/n^{k+2}`, `‖D_n‖ = n`;
    /// `E(S^j) < ∞` for `j < k` but `E(S^k)` close to the harmonic boundary
    /// — concretely `E(S^k) = c·∑ 1/n` diverges while `E(S^{k-1})`
    /// converges.
    pub fn remark_4_10(k: u32) -> Self {
        let exponent = k as i32 + 1;
        // normalize: c = 1/ζ(k+1); compute numerically
        let mut z = KahanSum::new();
        for n in 1..200_000u64 {
            z.add(1.0 / (n as f64).powi(exponent));
        }
        Self {
            schema: Schema::from_relations([Relation::new("R", 1)]).expect("static schema"),
            norm: 1.0 / z.value(),
            exponent,
            exponential_sizes: false,
        }
    }

    /// The schema (a single unary relation `R`).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// `P({D_n})` for outcome `n ≥ 1`.
    pub fn prob(&self, n: u64) -> f64 {
        self.norm / (n as f64).powi(self.exponent)
    }

    /// `‖D_n‖`.
    pub fn size(&self, n: u64) -> u64 {
        if self.exponential_sizes {
            1u64 << n.min(62)
        } else {
            n
        }
    }

    /// The instance `D_n = {R(1), …, R(size(n))}` (capped for
    /// materialization sanity).
    pub fn instance(&self, n: u64, interner: &mut FactInterner) -> Instance {
        let ids = (1..=self.size(n))
            .map(|i| interner.intern(Fact::new(RelId(0), [Value::int(i as i64)])));
        Instance::from_ids(ids)
    }

    /// Partial expectation `∑_{n≤N} P({D_n})·‖D_n‖^k` — the divergence
    /// diagnostic: for Example 3.3 with `k = 1` this grows without bound.
    pub fn partial_moment(&self, k: u32, upto: u64) -> f64 {
        let mut acc = KahanSum::new();
        for n in 1..=upto {
            acc.add(self.prob(n) * (self.size(n) as f64).powi(k as i32));
        }
        acc.value()
    }

    /// Mass captured by the first `upto` outcomes (approaches 1).
    pub fn partial_mass(&self, upto: u64) -> f64 {
        let mut acc = KahanSum::new();
        for n in 1..=upto {
            acc.add(self.prob(n));
        }
        acc.value()
    }

    /// Materializes the first `upto` outcomes as a (sub-normalized, then
    /// renormalized) finite space — for measurements only; the tail mass is
    /// reported alongside.
    pub fn truncate(&self, upto: u64) -> (DiscreteSpace<Instance>, FactInterner, f64) {
        let mut interner = FactInterner::new();
        let outcomes: Vec<(Instance, f64)> = (1..=upto)
            .map(|n| (self.instance(n, &mut interner), self.prob(n)))
            .collect();
        let tail = 1.0 - self.partial_mass(upto);
        let space = DiscreteSpace::new_unnormalized(outcomes).expect("nonempty truncation");
        (space, interner, tail)
    }
}

/// The size envelope of Fact 2.1 used in the proof of Proposition 4.9: any
/// FO view `V` with a unary target over a source of max arity `k` and `c`
/// constants satisfies `‖V(C)‖ ≤ k·‖C‖ + c`, hence
/// `E(S_{V(C)}) ≤ k·E(S_C) + c`. Returns that bound — always finite for
/// t.i. sources (Corollary 4.7), which is the contradiction.
pub fn fo_view_expected_size_bound(max_arity: usize, constants: usize, e_sc: f64) -> f64 {
    max_arity as f64 * e_sc + constants as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_3_probabilities_sum_to_one() {
        let p = LazySizedPdb::example_3_3();
        let mass = p.partial_mass(100_000);
        assert!(mass < 1.0);
        assert!(mass > 0.9999);
    }

    #[test]
    fn example_3_3_sizes_are_powers_of_two() {
        let p = LazySizedPdb::example_3_3();
        assert_eq!(p.size(1), 2);
        assert_eq!(p.size(5), 32);
    }

    #[test]
    fn example_3_3_expected_size_diverges() {
        // E(S) partial sums grow without bound: term n is 6·2ⁿ/(π²n²) → ∞.
        let p = LazySizedPdb::example_3_3();
        let m10 = p.partial_moment(1, 10);
        let m20 = p.partial_moment(1, 20);
        let m30 = p.partial_moment(1, 30);
        assert!(m20 > 10.0 * m10);
        assert!(m30 > 10.0 * m20);
    }

    #[test]
    fn example_3_3_instances_materialize() {
        let p = LazySizedPdb::example_3_3();
        let mut interner = FactInterner::new();
        let d3 = p.instance(3, &mut interner);
        assert_eq!(d3.size(), 8);
        let (space, _, tail) = p.truncate(8);
        assert_eq!(space.support_size(), 8);
        assert!(tail < 0.08);
        // the paper's E(S) = Σ p_n · 2n... with our exact sizes: expectation
        // over the truncation already exceeds any small constant
        let e = infpdb_core::size::expected_size(&space);
        assert!(e > 3.0);
    }

    #[test]
    fn remark_4_10_moment_dichotomy() {
        // k = 2: E(S) < ∞ (Σ c/n² converges), E(S²) = c·Σ 1/n diverges.
        let p = LazySizedPdb::remark_4_10(2);
        let m1_a = p.partial_moment(1, 10_000);
        let m1_b = p.partial_moment(1, 100_000);
        assert!((m1_b - m1_a) < 0.01, "first moment should converge");
        let m2_a = p.partial_moment(2, 10_000);
        let m2_b = p.partial_moment(2, 100_000);
        assert!(
            m2_b - m2_a > 1.0,
            "second moment should keep growing: {m2_a} → {m2_b}"
        );
    }

    #[test]
    fn remark_4_10_mass_normalized() {
        let p = LazySizedPdb::remark_4_10(2);
        let mass = p.partial_mass(100_000);
        assert!((mass - 1.0).abs() < 1e-4);
    }

    #[test]
    fn proposition_4_9_envelope_is_finite_for_ti_sources() {
        // Any FO view of a t.i. PDB has expected image size ≤ k·E(S_C) + c:
        // finite, while Example 3.3 needs ∞ — the contradiction.
        let bound = fo_view_expected_size_bound(3, 2, 10.0);
        assert_eq!(bound, 32.0);
        assert!(bound.is_finite());
        // while the Example 3.3 partial expectations exceed any such bound
        let p = LazySizedPdb::example_3_3();
        assert!(p.partial_moment(1, 25) > bound);
    }
}

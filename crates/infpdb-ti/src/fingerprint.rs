//! Content fingerprints of countable t.i. PDBs.
//!
//! A countable PDB's identity — for answer caches, plan caches, and the
//! cost-based planner's deterministic seed derivation — is the hash of an
//! enumeration prefix plus the certified tail bound: two supplies that
//! agree on both are indistinguishable to every evaluation the system
//! performs at the tolerances it accepts. The fingerprint lives here (not
//! in the serve layer) so the query-level planner can fold it into its
//! sampling seeds without a dependency inversion.

use crate::construction::CountableTiPdb;
use infpdb_core::fingerprint::Fingerprinter;
use infpdb_core::schema::Schema;

/// Enumeration prefix length hashed by [`countable_pdb_fingerprint`].
pub const PDB_FINGERPRINT_PREFIX: usize = 64;

/// Content fingerprint of a countable t.i. PDB.
///
/// Hashes the schema, the first [`PDB_FINGERPRINT_PREFIX`] enumerated
/// `(fact, probability)` pairs *in enumeration order* (the order is part
/// of the oracle's identity: it decides which prefix `Ω_n` a truncation
/// keeps), and the certified tail bound after the prefix.
pub fn countable_pdb_fingerprint(pdb: &CountableTiPdb) -> u64 {
    let supply = pdb.supply();
    let mut fp = Fingerprinter::new();
    fp.write_u64(combine_schema(pdb.schema()));
    let prefix = supply
        .support_len()
        .unwrap_or(PDB_FINGERPRINT_PREFIX)
        .min(PDB_FINGERPRINT_PREFIX);
    fp.write_u64(prefix as u64);
    for i in 0..prefix {
        fp.write_u64(infpdb_core::fingerprint::fact_fingerprint(
            pdb.schema(),
            &supply.fact(i),
            supply.prob(i),
        ));
    }
    match supply.tail_upper(prefix).finite() {
        Some(bound) => fp.write_f64(bound),
        None => fp.write_u64(u64::MAX),
    };
    fp.finish()
}

fn combine_schema(schema: &Schema) -> u64 {
    infpdb_core::fingerprint::combine_unordered(schema.iter().map(|(_, r)| {
        let mut rf = Fingerprinter::new();
        rf.write_bytes(r.name().as_bytes())
            .write_u64(r.arity() as u64);
        rf.finish()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_math::series::GeometricSeries;

    #[test]
    fn fingerprint_sees_probability_changes() {
        let s = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let make = |first: f64| {
            CountableTiPdb::new(crate::enumerator::FactSupply::unary_over_naturals(
                s.clone(),
                RelId(0),
                GeometricSeries::new(first, 0.5).unwrap(),
            ))
            .unwrap()
        };
        let a = countable_pdb_fingerprint(&make(0.5));
        let b = countable_pdb_fingerprint(&make(0.5));
        let c = countable_pdb_fingerprint(&make(0.25));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! First-order views and their pushforward semantics.
//!
//! A view `V : D[τ,U] → D[τ′,U]` is an FO-view if each target relation is
//! defined by an FO formula over the source schema (Section 2.1). Applied
//! to a PDB, a view induces the pushforward measure
//! `P′({D′}) = P(V⁻¹(D′))` (Section 3.1, equation (3)) — implemented on
//! materialized spaces via [`DiscreteSpace::pushforward`].
//!
//! Views are the tool of Section 4.3: the paper shows (Proposition 4.9)
//! that unlike in the finite case, *not* every countable PDB is an FO-view
//! image of a tuple-independent one. `infpdb-ti::counterexample` exercises
//! exactly the size-growth envelope `‖V(C)‖ ≤ k·‖C‖ + c` (from Fact 2.1)
//! that drives that proof; [`FoView::size_envelope`] computes `(k, c)`.

use crate::ast::Formula;
use crate::eval::Evaluator;
use crate::vars::free_vars;
use crate::LogicError;
use infpdb_core::fact::Fact;
use infpdb_core::instance::Instance;
use infpdb_core::interner::FactInterner;
use infpdb_core::schema::{RelId, Schema};
use infpdb_core::space::DiscreteSpace;
use infpdb_core::storage::InstanceStore;

/// Definition of one target relation by a formula over the source schema.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// Target relation (in the view's target schema).
    pub target: RelId,
    /// Defining formula; its free variables (in sorted order) are the
    /// target relation's columns.
    pub formula: Formula,
}

/// An FO view: one defining formula per target relation.
#[derive(Debug, Clone)]
pub struct FoView {
    source: Schema,
    target: Schema,
    defs: Vec<ViewDef>,
}

impl FoView {
    /// Builds a view, validating that every target relation has exactly one
    /// definition whose free-variable count matches the target arity and
    /// whose atoms are valid over the source schema.
    pub fn new(
        source: Schema,
        target: Schema,
        defs: impl IntoIterator<Item = ViewDef>,
    ) -> Result<Self, LogicError> {
        let defs: Vec<ViewDef> = defs.into_iter().collect();
        for def in &defs {
            def.formula.validate(&source)?;
            let rel = target
                .get(def.target)
                .ok_or_else(|| LogicError::UnknownRelation(format!("{:?}", def.target)))?;
            let fv = free_vars(&def.formula);
            if fv.len() != rel.arity() {
                return Err(LogicError::ArityMismatch {
                    relation: rel.name().to_string(),
                    expected: rel.arity(),
                    got: fv.len(),
                });
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for def in &defs {
            if !seen.insert(def.target) {
                return Err(LogicError::UnsupportedFragment(format!(
                    "two definitions for target relation {:?}",
                    def.target
                )));
            }
        }
        for (id, r) in target.iter() {
            if !seen.contains(&id) {
                return Err(LogicError::UnsupportedFragment(format!(
                    "target relation {} has no definition",
                    r.name()
                )));
            }
        }
        Ok(Self {
            source,
            target,
            defs,
        })
    }

    /// The source schema.
    pub fn source_schema(&self) -> &Schema {
        &self.source
    }

    /// The target schema.
    pub fn target_schema(&self) -> &Schema {
        &self.target
    }

    /// Applies the view to one materialized instance, producing target
    /// facts.
    pub fn apply_store(&self, store: &InstanceStore) -> Vec<Fact> {
        let mut out = Vec::new();
        for def in &self.defs {
            let ev = Evaluator::new(store, &def.formula);
            for tuple in ev.answers(&def.formula) {
                out.push(Fact::new(def.target, tuple));
            }
        }
        out
    }

    /// Applies the view to an instance given its interner, producing target
    /// facts.
    pub fn apply(&self, instance: &Instance, interner: &FactInterner) -> Vec<Fact> {
        let store = InstanceStore::build(instance, interner, &self.source);
        self.apply_store(&store)
    }

    /// Pushforward of a materialized PDB through the view: the image space
    /// with measure `P′ = P ∘ V⁻¹` (equation (3)), plus the interner for
    /// target facts.
    pub fn pushforward(
        &self,
        space: &DiscreteSpace<Instance>,
        interner: &FactInterner,
    ) -> (DiscreteSpace<Instance>, FactInterner) {
        let mut target_interner = FactInterner::new();
        let image = space.pushforward(|d| {
            let facts = self.apply(d, interner);
            Instance::from_ids(facts.into_iter().map(|f| target_interner.intern(f)))
        });
        (image, target_interner)
    }

    /// The size envelope of Fact 2.1 / Proposition 4.9: constants `(k, c)`
    /// such that `‖V(D)‖ ≤ (k·‖D‖·a + c)^m` is crude, but the paper's proof
    /// only needs the unary case: each answer tuple draws its components
    /// from `adom(D) ∪ adom(φ)`, so for a unary target
    /// `‖V(D)‖ ≤ k·‖D‖ + c` with `k` the max source arity and `c` the
    /// number of constants in the defining formulas.
    pub fn size_envelope(&self) -> (usize, usize) {
        let k = self.source.max_arity();
        let c = self
            .defs
            .iter()
            .map(|d| crate::rank::constant_count(&d.formula))
            .sum();
        (k, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use infpdb_core::schema::Relation;
    use infpdb_core::value::Value;

    fn source() -> Schema {
        Schema::from_relations([Relation::new("E", 2)]).unwrap()
    }

    fn target() -> Schema {
        Schema::from_relations([Relation::new("Reach2", 2)]).unwrap()
    }

    fn two_hop_view() -> FoView {
        let src = source();
        let tgt = target();
        let f = parse("exists z. E(x, z) /\\ E(z, y)", &src).unwrap();
        FoView::new(
            src,
            tgt.clone(),
            [ViewDef {
                target: tgt.rel_id("Reach2").unwrap(),
                formula: f,
            }],
        )
        .unwrap()
    }

    fn instance(edges: &[(i64, i64)]) -> (FactInterner, Instance) {
        let src = source();
        let e = src.rel_id("E").unwrap();
        let mut interner = FactInterner::new();
        let ids: Vec<_> = edges
            .iter()
            .map(|&(a, b)| interner.intern(Fact::new(e, [Value::int(a), Value::int(b)])))
            .collect();
        (interner, Instance::from_ids(ids))
    }

    #[test]
    fn view_computes_two_hop_reachability() {
        let v = two_hop_view();
        let (interner, d) = instance(&[(1, 2), (2, 3), (3, 4)]);
        let facts = v.apply(&d, &interner);
        let pairs: std::collections::BTreeSet<(i64, i64)> = facts
            .iter()
            .map(|f| (f.args()[0].as_int().unwrap(), f.args()[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, [(1, 3), (2, 4)].into_iter().collect());
    }

    #[test]
    fn view_validation_rejects_arity_mismatch() {
        let src = source();
        let tgt = target();
        let f = parse("exists z, y. E(x, z) /\\ E(z, y)", &src).unwrap(); // 1 free var
        assert!(matches!(
            FoView::new(
                src,
                tgt.clone(),
                [ViewDef {
                    target: tgt.rel_id("Reach2").unwrap(),
                    formula: f,
                }],
            ),
            Err(LogicError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn view_validation_requires_all_targets_defined_once() {
        let src = source();
        let tgt = target();
        // no definitions at all
        assert!(FoView::new(src.clone(), tgt.clone(), []).is_err());
        // duplicate definitions
        let f = parse("exists z. E(x, z) /\\ E(z, y)", &src).unwrap();
        let def = ViewDef {
            target: tgt.rel_id("Reach2").unwrap(),
            formula: f,
        };
        assert!(FoView::new(src, tgt, [def.clone(), def]).is_err());
    }

    #[test]
    fn view_validation_checks_source_atoms() {
        let src = source();
        let tgt = target();
        // formula over the *target* schema relation is invalid over source
        let bogus = Formula::atom(
            RelId(5),
            [crate::ast::Term::var("x"), crate::ast::Term::var("y")],
        );
        assert!(FoView::new(
            src,
            tgt.clone(),
            [ViewDef {
                target: tgt.rel_id("Reach2").unwrap(),
                formula: bogus,
            }]
        )
        .is_err());
    }

    #[test]
    fn pushforward_merges_preimages() {
        // Two distinct source worlds with the same 2-hop image must merge.
        let v = two_hop_view();
        let (mut interner, d1) = instance(&[(1, 2), (2, 3)]);
        let e = v.source_schema().rel_id("E").unwrap();
        // d2: same 2-hop pairs {(1,3)} via different middle vertex
        let extra = [
            interner.intern(Fact::new(e, [Value::int(1), Value::int(9)])),
            interner.intern(Fact::new(e, [Value::int(9), Value::int(3)])),
        ];
        let d2 = Instance::from_ids(extra);
        let space = DiscreteSpace::new([(d1, 0.5), (d2, 0.5)]).unwrap();
        let (image, tgt_interner) = v.pushforward(&space, &interner);
        // both worlds map to {Reach2(1,3)}
        assert_eq!(image.support_size(), 1);
        assert_eq!(tgt_interner.len(), 1);
        let (only, p) = &image.outcomes()[0];
        assert_eq!(only.size(), 1);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pushforward_preserves_distinct_images() {
        let v = two_hop_view();
        let (interner, d1) = instance(&[(1, 2), (2, 3)]);
        let empty = Instance::empty();
        let space = DiscreteSpace::new([(d1, 0.3), (empty, 0.7)]).unwrap();
        let (image, _) = v.pushforward(&space, &interner);
        assert_eq!(image.support_size(), 2);
        assert!((image.prob_where(|d| d.is_empty()) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn size_envelope_constants() {
        let v = two_hop_view();
        let (k, c) = v.size_envelope();
        assert_eq!(k, 2); // max source arity
        assert_eq!(c, 0); // no constants in the defining formula
    }

    #[test]
    fn boolean_view_targets() {
        // 0-ary target: "has an edge" flag relation
        let src = source();
        let tgt = Schema::from_relations([Relation::new("NonEmpty", 0)]).unwrap();
        let f = parse("exists x, y. E(x, y)", &src).unwrap();
        let v = FoView::new(
            src,
            tgt.clone(),
            [ViewDef {
                target: tgt.rel_id("NonEmpty").unwrap(),
                formula: f,
            }],
        )
        .unwrap();
        let (interner, d) = instance(&[(1, 2)]);
        assert_eq!(v.apply(&d, &interner).len(), 1);
        let empty = Instance::empty();
        assert!(v.apply(&empty, &interner).is_empty());
    }
}

//! A small named-column relational algebra with hash joins.
//!
//! The generic FO [`crate::eval::Evaluator`] enumerates the active domain
//! per quantifier — fine for small instances, quadratic pain for joins on
//! large ones. The existential-conjunctive fragment instead compiles to a
//! join tree evaluated bottom-up with hash joins ([`eval_cq`]); the result
//! is the same answer relation (a cross-validation test asserts this).

use crate::ast::Term;
use crate::normal::{ConjunctiveQuery, CqAtom};
use infpdb_core::storage::InstanceStore;
use infpdb_core::value::Value;
use std::collections::{BTreeSet, HashMap};

/// A materialized relation with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    /// Column names (variable names for query evaluation).
    pub cols: Vec<String>,
    /// Row-major tuples, each of length `cols.len()`.
    pub data: Vec<Vec<Value>>,
}

impl Rows {
    /// The relation with no columns and a single empty row — the unit of
    /// natural join (Boolean "true").
    pub fn unit() -> Rows {
        Rows {
            cols: vec![],
            data: vec![vec![]],
        }
    }

    /// The relation with no columns and no rows (Boolean "false").
    pub fn empty_unit() -> Rows {
        Rows {
            cols: vec![],
            data: vec![],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Projects to the named columns (which must exist), deduplicating.
    pub fn project(&self, cols: &[String]) -> Rows {
        let idx: Vec<usize> = cols
            .iter()
            .map(|c| {
                self.cols
                    .iter()
                    .position(|d| d == c)
                    .unwrap_or_else(|| panic!("unknown column {c}"))
            })
            .collect();
        let mut seen = BTreeSet::new();
        let mut data = Vec::new();
        for row in &self.data {
            let proj: Vec<Value> = idx.iter().map(|&i| row[i].clone()).collect();
            if seen.insert(proj.clone()) {
                data.push(proj);
            }
        }
        Rows {
            cols: cols.to_vec(),
            data,
        }
    }

    /// Natural join on shared column names (hash join, smaller side
    /// builds).
    pub fn natural_join(&self, other: &Rows) -> Rows {
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let shared: Vec<String> = build
            .cols
            .iter()
            .filter(|c| probe.cols.contains(c))
            .cloned()
            .collect();
        let build_key_idx: Vec<usize> = shared
            .iter()
            .map(|c| build.cols.iter().position(|d| d == c).expect("shared col"))
            .collect();
        let probe_key_idx: Vec<usize> = shared
            .iter()
            .map(|c| probe.cols.iter().position(|d| d == c).expect("shared col"))
            .collect();
        // output columns: build's, then probe's non-shared
        let probe_extra_idx: Vec<usize> = probe
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| !shared.contains(c))
            .map(|(i, _)| i)
            .collect();
        let mut out_cols = build.cols.clone();
        out_cols.extend(probe_extra_idx.iter().map(|&i| probe.cols[i].clone()));

        let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
        for row in &build.data {
            let key: Vec<Value> = build_key_idx.iter().map(|&i| row[i].clone()).collect();
            table.entry(key).or_default().push(row);
        }
        let mut data = Vec::new();
        for prow in &probe.data {
            let key: Vec<Value> = probe_key_idx.iter().map(|&i| prow[i].clone()).collect();
            if let Some(matches) = table.get(&key) {
                for brow in matches {
                    let mut row: Vec<Value> = (*brow).clone();
                    row.extend(probe_extra_idx.iter().map(|&i| prow[i].clone()));
                    data.push(row);
                }
            }
        }
        Rows {
            cols: out_cols,
            data,
        }
    }

    /// Union of two relations with identical column sets (reordering the
    /// right side as needed), deduplicated.
    pub fn union(&self, other: &Rows) -> Rows {
        assert_eq!(
            self.cols.iter().collect::<BTreeSet<_>>(),
            other.cols.iter().collect::<BTreeSet<_>>(),
            "union requires identical column sets"
        );
        let reorder: Vec<usize> = self
            .cols
            .iter()
            .map(|c| other.cols.iter().position(|d| d == c).expect("same cols"))
            .collect();
        let mut seen: BTreeSet<Vec<Value>> = self.data.iter().cloned().collect();
        let mut data: Vec<Vec<Value>> = seen.iter().cloned().collect();
        for row in &other.data {
            let r: Vec<Value> = reorder.iter().map(|&i| row[i].clone()).collect();
            if seen.insert(r.clone()) {
                data.push(r);
            }
        }
        Rows {
            cols: self.cols.clone(),
            data,
        }
    }

    /// Difference `self − other` over identical column sets.
    pub fn difference(&self, other: &Rows) -> Rows {
        let reorder: Vec<usize> = self
            .cols
            .iter()
            .map(|c| other.cols.iter().position(|d| d == c).expect("same cols"))
            .collect();
        let exclude: BTreeSet<Vec<Value>> = other
            .data
            .iter()
            .map(|row| reorder.iter().map(|&i| row[i].clone()).collect())
            .collect();
        Rows {
            cols: self.cols.clone(),
            data: self
                .data
                .iter()
                .filter(|r| !exclude.contains(*r))
                .cloned()
                .collect(),
        }
    }
}

/// Scans one atom against the store: rows over the atom's *variable*
/// columns, with constant positions used as filters and repeated variables
/// as equality constraints.
pub fn scan_atom(atom: &CqAtom, store: &InstanceStore) -> Rows {
    // variable columns in first-occurrence order
    let mut cols: Vec<String> = Vec::new();
    for t in &atom.args {
        if let Term::Var(v) = t {
            if !cols.contains(v) {
                cols.push(v.clone());
            }
        }
    }
    let mut data: Vec<Vec<Value>> = Vec::new();
    'rows: for tuple in store.rows(atom.rel) {
        let mut binding: HashMap<&str, &Value> = HashMap::new();
        for (t, v) in atom.args.iter().zip(tuple.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        continue 'rows;
                    }
                }
                Term::Var(name) => match binding.get(name.as_str()) {
                    Some(&bound) if bound != v => continue 'rows,
                    _ => {
                        binding.insert(name, v);
                    }
                },
            }
        }
        data.push(
            cols.iter()
                .map(|c| (*binding.get(c.as_str()).expect("var bound by scan")).clone())
                .collect(),
        );
    }
    let mut seen = BTreeSet::new();
    data.retain(|r| seen.insert(r.clone()));
    Rows { cols, data }
}

/// Evaluates a conjunctive query by joining its atom scans and projecting
/// the head variables: returns the answer relation over `cq.head_vars`.
pub fn eval_cq(cq: &ConjunctiveQuery, store: &InstanceStore) -> Rows {
    let mut acc = Rows::unit();
    for atom in &cq.atoms {
        let scan = scan_atom(atom, store);
        acc = acc.natural_join(&scan);
        if acc.is_empty() {
            // join of anything with the empty relation stays empty
            return Rows {
                cols: cq.head_vars.clone(),
                data: vec![],
            };
        }
    }
    acc.project(&cq.head_vars)
}

/// Evaluates a union of conjunctive queries: the union of the per-CQ
/// answer relations over the shared head variables (which must coincide —
/// UCQs produced by [`crate::normal::as_ucq`] always satisfy this).
pub fn eval_ucq(cqs: &[ConjunctiveQuery], store: &InstanceStore) -> Rows {
    assert!(!cqs.is_empty(), "a UCQ has at least one disjunct");
    let head = &cqs[0].head_vars;
    assert!(
        cqs.iter().all(|c| &c.head_vars == head),
        "all UCQ disjuncts must share the head variables"
    );
    let mut acc = eval_cq(&cqs[0], store);
    for cq in &cqs[1..] {
        acc = acc.union(&eval_cq(cq, store));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::normal::as_cq;
    use crate::parser::parse;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{Relation, Schema};

    fn setup() -> (Schema, InstanceStore) {
        let schema =
            Schema::from_relations([Relation::new("E", 2), Relation::new("N", 1)]).unwrap();
        let e = schema.rel_id("E").unwrap();
        let n = schema.rel_id("N").unwrap();
        let facts = [
            Fact::new(e, [Value::int(1), Value::int(2)]),
            Fact::new(e, [Value::int(2), Value::int(3)]),
            Fact::new(e, [Value::int(3), Value::int(3)]),
            Fact::new(n, [Value::int(2)]),
            Fact::new(n, [Value::int(3)]),
        ];
        (
            schema.clone(),
            InstanceStore::from_facts(facts.iter(), &schema),
        )
    }

    #[test]
    fn scan_plain_atom() {
        let (s, st) = setup();
        let cq = as_cq(&parse("E(x, y)", &s).unwrap()).unwrap();
        let rows = scan_atom(&cq.atoms[0], &st);
        assert_eq!(rows.cols, vec!["x", "y"]);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn scan_with_constant_filters() {
        let (s, st) = setup();
        let cq = as_cq(&parse("E(x, 3)", &s).unwrap()).unwrap();
        let rows = scan_atom(&cq.atoms[0], &st);
        assert_eq!(rows.cols, vec!["x"]);
        assert_eq!(rows.len(), 2); // (2,3) and (3,3)
    }

    #[test]
    fn scan_with_repeated_variable_enforces_equality() {
        let (s, st) = setup();
        let cq = as_cq(&parse("E(x, x)", &s).unwrap()).unwrap();
        let rows = scan_atom(&cq.atoms[0], &st);
        assert_eq!(rows.cols, vec!["x"]);
        assert_eq!(rows.data, vec![vec![Value::int(3)]]);
    }

    #[test]
    fn natural_join_on_shared_column() {
        let (s, st) = setup();
        let e = as_cq(&parse("E(x, y)", &s).unwrap()).unwrap();
        let n = as_cq(&parse("N(y)", &s).unwrap()).unwrap();
        let joined = scan_atom(&e.atoms[0], &st).natural_join(&scan_atom(&n.atoms[0], &st));
        // E(1,2),E(2,3),E(3,3) joined with N(2),N(3): all three survive
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.cols.len(), 2);
    }

    #[test]
    fn join_with_unit_is_identity() {
        let (s, st) = setup();
        let e = as_cq(&parse("E(x, y)", &s).unwrap()).unwrap();
        let rows = scan_atom(&e.atoms[0], &st);
        let j = Rows::unit().natural_join(&rows);
        assert_eq!(j.len(), rows.len());
        let j2 = rows.natural_join(&Rows::empty_unit());
        assert!(j2.is_empty());
    }

    #[test]
    fn cross_product_when_no_shared_columns() {
        let (s, st) = setup();
        let n1 = as_cq(&parse("N(a)", &s).unwrap()).unwrap();
        let n2 = as_cq(&parse("N(b)", &s).unwrap()).unwrap();
        let prod = scan_atom(&n1.atoms[0], &st).natural_join(&scan_atom(&n2.atoms[0], &st));
        assert_eq!(prod.len(), 4);
    }

    #[test]
    fn project_dedups() {
        let (s, st) = setup();
        let e = as_cq(&parse("E(x, y)", &s).unwrap()).unwrap();
        let rows = scan_atom(&e.atoms[0], &st);
        let p = rows.project(&["y".to_string()]);
        assert_eq!(p.len(), 2); // {2, 3}
    }

    #[test]
    fn union_and_difference() {
        let a = Rows {
            cols: vec!["x".into()],
            data: vec![vec![Value::int(1)], vec![Value::int(2)]],
        };
        let b = Rows {
            cols: vec!["x".into()],
            data: vec![vec![Value::int(2)], vec![Value::int(3)]],
        };
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b).data, vec![vec![Value::int(1)]]);
        assert_eq!(b.difference(&a).data, vec![vec![Value::int(3)]]);
    }

    #[test]
    fn union_reorders_columns() {
        let a = Rows {
            cols: vec!["x".into(), "y".into()],
            data: vec![vec![Value::int(1), Value::int(2)]],
        };
        let b = Rows {
            cols: vec!["y".into(), "x".into()],
            data: vec![vec![Value::int(2), Value::int(1)]],
        };
        // same tuple up to column order: union has 1 row
        assert_eq!(a.union(&b).len(), 1);
    }

    #[test]
    fn eval_cq_matches_naive_evaluator() {
        let (s, st) = setup();
        for q in [
            "exists x. E(x, y) /\\ N(y)",
            "E(x, y)",
            "exists y. E(x, y) /\\ E(y, z)",
            "N(x) /\\ exists y. E(y, x)",
        ] {
            let f = parse(q, &s).unwrap();
            let cq = as_cq(&f).unwrap();
            let fast: BTreeSet<Vec<Value>> = eval_cq(&cq, &st).data.into_iter().collect();
            let slow = Evaluator::new(&st, &f).answers(&f);
            // head_vars is sorted (free_vars is a BTreeSet), matching the
            // evaluator's variable order
            assert_eq!(fast, slow, "mismatch on {q}");
        }
    }

    #[test]
    fn eval_cq_boolean_queries() {
        let (s, st) = setup();
        let t = as_cq(&parse("exists x. N(x)", &s).unwrap()).unwrap();
        assert_eq!(eval_cq(&t, &st).len(), 1);
        let f = as_cq(&parse("exists x. E(x, 5)", &s).unwrap()).unwrap();
        assert!(eval_cq(&f, &st).is_empty());
    }

    #[test]
    fn eval_ucq_unions_disjunct_answers() {
        let (s, st) = setup();
        let f = parse("E(x, 2) \\/ E(x, 3)", &s).unwrap();
        let cqs = crate::normal::as_ucq(&f).unwrap();
        let rows = eval_ucq(&cqs, &st);
        let vals: std::collections::BTreeSet<i64> =
            rows.data.iter().map(|r| r[0].as_int().unwrap()).collect();
        // E(1,2), E(2,3), E(3,3): x ∈ {1, 2, 3}
        assert_eq!(vals, [1i64, 2, 3].into_iter().collect());
        // boolean UCQ
        let g = parse("(exists x. N(x)) \\/ (exists y. E(y, 9))", &s).unwrap();
        let gcqs = crate::normal::as_ucq(&g).unwrap();
        assert_eq!(eval_ucq(&gcqs, &st).len(), 1);
    }

    #[test]
    fn eval_cq_short_circuits_on_empty_scan() {
        let (s, st) = setup();
        let cq = as_cq(&parse("exists x, y. E(x, 9) /\\ N(y)", &s).unwrap()).unwrap();
        let r = eval_cq(&cq, &st);
        assert!(r.is_empty());
        assert_eq!(r.cols, Vec::<String>::new());
    }
}

//! Hierarchical queries and safe plans.
//!
//! The classic dichotomy for Boolean self-join-free conjunctive queries on
//! tuple-independent PDBs (Dalvi–Suciu; surveyed in the paper's main
//! reference \[37\]): a query is computable in polynomial time *extensionally*
//! iff it is **hierarchical** — for any two variables `x, y`, the sets of
//! atoms containing them are nested or disjoint. Hierarchical queries admit
//! a [`SafePlan`] built from independent joins (conjunction of queries on
//! disjoint fact sets) and independent projects (a "root" variable occurring
//! in every atom of its connected component).
//!
//! The paper lifts "a traditional closed-world query evaluation algorithm
//! for finite tuple-independent PDBs" (proof of Proposition 6.1); safe plans
//! are the efficient such algorithm, implemented by `infpdb-finite`'s
//! `lifted` module against these plans.

use crate::ast::{Term, Var};
use crate::normal::{ConjunctiveQuery, CqAtom};
use crate::LogicError;
use std::collections::BTreeSet;

/// An extensional evaluation plan for a hierarchical Boolean self-join-free
/// CQ.
#[derive(Debug, Clone, PartialEq)]
pub enum SafePlan {
    /// A single atom, possibly with unresolved variables that enclosing
    /// projects will substitute.
    Atom(CqAtom),
    /// Conjunction of sub-plans over disjoint relation sets:
    /// `P(⋀ᵢ planᵢ) = ∏ᵢ P(planᵢ)`.
    IndependentJoin(Vec<SafePlan>),
    /// Projection over a root variable occurring in every atom below:
    /// `P(∃x. φ) = 1 − ∏_{a ∈ domain} (1 − P(φ[x ↦ a]))`.
    IndependentProject {
        /// The root variable.
        var: Var,
        /// The plan for the body with `var` still symbolic.
        plan: Box<SafePlan>,
    },
}

impl SafePlan {
    /// Depth of nested independent projects (cost indicator: the domain is
    /// enumerated once per level).
    pub fn project_depth(&self) -> usize {
        match self {
            SafePlan::Atom(_) => 0,
            SafePlan::IndependentJoin(ps) => {
                ps.iter().map(SafePlan::project_depth).max().unwrap_or(0)
            }
            SafePlan::IndependentProject { plan, .. } => 1 + plan.project_depth(),
        }
    }
}

/// Whether a Boolean self-join-free CQ is hierarchical: for all variables
/// `x ≠ y`, `at(x) ⊆ at(y)`, `at(y) ⊆ at(x)`, or `at(x) ∩ at(y) = ∅`.
pub fn is_hierarchical(cq: &ConjunctiveQuery) -> bool {
    let vars: Vec<Var> = cq.variables().into_iter().collect();
    let at = |v: &Var| -> BTreeSet<usize> {
        cq.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.variables().contains(v))
            .map(|(i, _)| i)
            .collect()
    };
    for (i, x) in vars.iter().enumerate() {
        let ax = at(x);
        for y in vars.iter().skip(i + 1) {
            let ay = at(y);
            let nested = ax.is_subset(&ay) || ay.is_subset(&ax);
            let disjoint = ax.is_disjoint(&ay);
            if !nested && !disjoint {
                return false;
            }
        }
    }
    true
}

/// Builds the safe plan of a hierarchical Boolean self-join-free CQ.
///
/// Errors with [`LogicError::UnsupportedFragment`] if the query has free
/// variables, self-joins, or is not hierarchical (the intensional engine
/// must be used instead).
pub fn safe_plan(cq: &ConjunctiveQuery) -> Result<SafePlan, LogicError> {
    if !cq.is_boolean() {
        return Err(LogicError::UnsupportedFragment(
            "safe plans require a Boolean query".into(),
        ));
    }
    if !cq.is_self_join_free() {
        return Err(LogicError::UnsupportedFragment(
            "safe plans require a self-join-free query".into(),
        ));
    }
    if !is_hierarchical(cq) {
        return Err(LogicError::UnsupportedFragment(
            "query is not hierarchical; no safe plan exists (Dalvi–Suciu dichotomy)".into(),
        ));
    }
    Ok(build(cq.atoms.clone(), &cq.variables()))
}

/// Recursive plan construction on a set of atoms and the variables still
/// symbolic in them.
fn build(atoms: Vec<CqAtom>, live_vars: &BTreeSet<Var>) -> SafePlan {
    if atoms.len() == 1 && atoms[0].variables().intersection(live_vars).count() == 0 {
        return SafePlan::Atom(atoms.into_iter().next().expect("len checked"));
    }
    // Partition atoms into connected components via shared live variables.
    let components = connected_components(&atoms, live_vars);
    if components.len() > 1 {
        let plans = components
            .into_iter()
            .map(|c| build(c, live_vars))
            .collect();
        return SafePlan::IndependentJoin(plans);
    }
    // Single component: find a root variable occurring in all atoms.
    let root = live_vars
        .iter()
        .find(|v| atoms.iter().all(|a| a.variables().contains(*v)))
        .cloned();
    match root {
        Some(var) => {
            let mut remaining = live_vars.clone();
            remaining.remove(&var);
            let sub = build(atoms, &remaining);
            SafePlan::IndependentProject {
                var,
                plan: Box::new(sub),
            }
        }
        None => {
            // Hierarchical queries always have a root per component once
            // outer variables are substituted; a single variable-free atom
            // set lands here only when atoms.len() == 1 handled above, or
            // several ground atoms form one "component" (no shared live
            // vars means they'd be separate components). Unreachable for
            // hierarchical inputs, but keep a safe fallback.
            SafePlan::IndependentJoin(atoms.into_iter().map(SafePlan::Atom).collect())
        }
    }
}

/// Groups atoms into connected components of the "shares a live variable"
/// graph. Atoms with no live variables become singleton components.
fn connected_components(atoms: &[CqAtom], live_vars: &BTreeSet<Var>) -> Vec<Vec<CqAtom>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let live_var_sets: Vec<BTreeSet<Var>> = atoms
        .iter()
        .map(|a| a.variables().intersection(live_vars).cloned().collect())
        .collect();
    #[allow(clippy::needless_range_loop)] // union-find needs raw indexes
    for i in 0..n {
        for j in (i + 1)..n {
            let shares = atoms[j]
                .variables()
                .iter()
                .any(|v| live_var_sets[i].contains(v));
            if shares {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<CqAtom>> = Default::default();
    for (i, atom) in atoms.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(atom.clone());
    }
    groups.into_values().collect()
}

/// Substitutes a value for a variable in a plan's atoms (used by the lifted
/// evaluator when expanding an independent project).
pub fn substitute_in_plan(
    plan: &SafePlan,
    var: &str,
    value: &infpdb_core::value::Value,
) -> SafePlan {
    match plan {
        SafePlan::Atom(a) => SafePlan::Atom(CqAtom {
            rel: a.rel,
            args: a
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) if v == var => Term::Const(value.clone()),
                    other => other.clone(),
                })
                .collect(),
        }),
        SafePlan::IndependentJoin(ps) => SafePlan::IndependentJoin(
            ps.iter()
                .map(|p| substitute_in_plan(p, var, value))
                .collect(),
        ),
        SafePlan::IndependentProject { var: v, plan: p } if v == var => {
            // `var` is bound here; occurrences below refer to this binder,
            // not the one being substituted (shadowing).
            SafePlan::IndependentProject {
                var: v.clone(),
                plan: p.clone(),
            }
        }
        SafePlan::IndependentProject { var: v, plan: p } => SafePlan::IndependentProject {
            var: v.clone(),
            plan: Box::new(substitute_in_plan(p, var, value)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::as_cq;
    use crate::parser::parse;
    use infpdb_core::schema::{Relation, Schema};
    use infpdb_core::value::Value;

    fn schema() -> Schema {
        Schema::from_relations([
            Relation::new("R", 1),
            Relation::new("S", 2),
            Relation::new("T", 1),
            Relation::new("U", 2),
        ])
        .unwrap()
    }

    fn cq(q: &str) -> ConjunctiveQuery {
        as_cq(&parse(q, &schema()).unwrap()).unwrap()
    }

    #[test]
    fn single_atom_queries_are_hierarchical() {
        assert!(is_hierarchical(&cq("exists x. R(x)")));
        assert!(is_hierarchical(&cq("R(1)")));
        let p = safe_plan(&cq("exists x. R(x)")).unwrap();
        assert!(matches!(p, SafePlan::IndependentProject { .. }));
        assert_eq!(p.project_depth(), 1);
    }

    #[test]
    fn chain_query_rx_sxy_ty_is_hierarchical() {
        // ∃x∃y R(x) ∧ S(x,y): at(x) = {R,S} ⊇ at(y) = {S} — hierarchical
        let q = cq("exists x, y. R(x) /\\ S(x, y)");
        assert!(is_hierarchical(&q));
        let p = safe_plan(&q).unwrap();
        // root x, then y
        match &p {
            SafePlan::IndependentProject { var, .. } => assert_eq!(var, "x"),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.project_depth(), 2);
    }

    #[test]
    fn the_canonical_unsafe_query_h0_is_not_hierarchical() {
        // H₀ = ∃x∃y R(x) ∧ S(x,y) ∧ T(y): at(x) = {R,S}, at(y) = {S,T} —
        // overlapping but not nested.
        let q = cq("exists x, y. R(x) /\\ S(x, y) /\\ T(y)");
        assert!(!is_hierarchical(&q));
        assert!(matches!(
            safe_plan(&q),
            Err(LogicError::UnsupportedFragment(_))
        ));
    }

    #[test]
    fn disconnected_queries_become_independent_joins() {
        let q = cq("exists x, y. R(x) /\\ T(y)");
        assert!(is_hierarchical(&q));
        let p = safe_plan(&q).unwrap();
        match p {
            SafePlan::IndependentJoin(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts
                    .iter()
                    .all(|p| matches!(p, SafePlan::IndependentProject { .. })));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ground_atoms_are_leaf_plans() {
        let q = cq("R(1) /\\ T(2)");
        let p = safe_plan(&q).unwrap();
        match p {
            SafePlan::IndependentJoin(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(parts.iter().all(|p| matches!(p, SafePlan::Atom(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn safe_plan_rejects_non_boolean_and_self_joins() {
        let s = schema();
        let free = as_cq(&parse("exists y. S(x, y)", &s).unwrap()).unwrap();
        assert!(safe_plan(&free).is_err());
        let sj = as_cq(&parse("exists x, y. R(x) /\\ R(y)", &s).unwrap()).unwrap();
        assert!(safe_plan(&sj).is_err());
    }

    #[test]
    fn constants_do_not_break_hierarchy() {
        let q = cq("exists x. S(x, 3) /\\ R(x)");
        assert!(is_hierarchical(&q));
        let p = safe_plan(&q).unwrap();
        assert_eq!(p.project_depth(), 1);
    }

    #[test]
    fn substitute_in_plan_grounds_atoms() {
        let q = cq("exists x, y. R(x) /\\ S(x, y)");
        let p = safe_plan(&q).unwrap();
        // the evaluator expands the outer project over x by substituting
        // into its *body*
        let body = match &p {
            SafePlan::IndependentProject { var, plan } => {
                assert_eq!(var, "x");
                plan.as_ref()
            }
            other => panic!("{other:?}"),
        };
        let g = substitute_in_plan(body, "x", &Value::int(7));
        fn find_const(p: &SafePlan) -> usize {
            match p {
                SafePlan::Atom(a) => a
                    .args
                    .iter()
                    .filter(|t| t.as_const() == Some(&Value::int(7)))
                    .count(),
                SafePlan::IndependentJoin(ps) => ps.iter().map(find_const).sum(),
                SafePlan::IndependentProject { plan, .. } => find_const(plan),
            }
        }
        // x occurred in both R(x) and S(x, y)
        assert_eq!(find_const(&g), 2);
    }

    #[test]
    fn shadowed_project_substitution_stops_at_binder() {
        // substituting a variable that a project itself binds leaves the
        // project untouched (the binder shadows the substitution)
        let q = cq("exists x. R(x)");
        let p = safe_plan(&q).unwrap();
        let g = substitute_in_plan(&p, "x", &Value::int(1));
        assert_eq!(g, p);
    }

    #[test]
    fn two_component_hierarchy_with_shared_structure() {
        // (R(x) ∧ S(x,y)) and U(z,w): three-level mixed plan
        let q = cq("exists x, y, z, w. R(x) /\\ S(x, y) /\\ U(z, w)");
        assert!(is_hierarchical(&q));
        let p = safe_plan(&q).unwrap();
        assert!(matches!(p, SafePlan::IndependentJoin(_)));
    }
}

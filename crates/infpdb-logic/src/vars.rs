//! Free variables, constants, and substitution.
//!
//! `adom(φ)` — the constants occurring in a formula — appears in Fact 2.1:
//! answers of an FO query on instance `D` are contained in
//! `(adom(D) ∪ adom(φ))^k`. Grounding free variables by constants
//! ([`substitute`]) is how Proposition 6.1 lifts Boolean evaluation to
//! queries with free variables: `Q(~a)` for all `~a ∈ adom(Ω_n)^k`.

use crate::ast::{Formula, Term, Var};
use infpdb_core::value::Value;
use std::collections::BTreeSet;

/// The free variables of a formula, sorted.
pub fn free_vars(f: &Formula) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    collect_free(f, &mut BTreeSet::new(), &mut out);
    out
}

fn collect_free(f: &Formula, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom { args, .. } => {
            for t in args {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(v.clone());
                    }
                }
            }
        }
        Formula::Eq(a, b) => {
            for t in [a, b] {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(v.clone());
                    }
                }
            }
        }
        Formula::Not(g) => collect_free(g, bound, out),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_free(g, bound, out);
            }
        }
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            let newly = bound.insert(v.clone());
            collect_free(g, bound, out);
            if newly {
                bound.remove(v);
            }
        }
    }
}

/// Whether the formula is a sentence (no free variables) — the Boolean
/// queries of Section 6.
pub fn is_sentence(f: &Formula) -> bool {
    free_vars(f).is_empty()
}

/// The constants `adom(φ)` occurring in the formula, sorted.
pub fn constants(f: &Formula) -> BTreeSet<Value> {
    let mut out = BTreeSet::new();
    collect_constants(f, &mut out);
    out
}

fn collect_constants(f: &Formula, out: &mut BTreeSet<Value>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom { args, .. } => {
            for t in args {
                if let Term::Const(c) = t {
                    out.insert(c.clone());
                }
            }
        }
        Formula::Eq(a, b) => {
            for t in [a, b] {
                if let Term::Const(c) = t {
                    out.insert(c.clone());
                }
            }
        }
        Formula::Not(g) => collect_constants(g, out),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_constants(g, out);
            }
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => collect_constants(g, out),
    }
}

/// Substitutes the constant `value` for every *free* occurrence of `var`.
pub fn substitute(f: &Formula, var: &str, value: &Value) -> Formula {
    let subst_term = |t: &Term| -> Term {
        match t {
            Term::Var(v) if v == var => Term::Const(value.clone()),
            other => other.clone(),
        }
    };
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom { rel, args } => Formula::Atom {
            rel: *rel,
            args: args.iter().map(subst_term).collect(),
        },
        Formula::Eq(a, b) => Formula::Eq(subst_term(a), subst_term(b)),
        Formula::Not(g) => substitute(g, var, value).not(),
        Formula::And(gs) => Formula::And(gs.iter().map(|g| substitute(g, var, value)).collect()),
        Formula::Or(gs) => Formula::Or(gs.iter().map(|g| substitute(g, var, value)).collect()),
        Formula::Exists(v, g) if v == var => Formula::Exists(v.clone(), g.clone()),
        Formula::Forall(v, g) if v == var => Formula::Forall(v.clone(), g.clone()),
        Formula::Exists(v, g) => Formula::Exists(v.clone(), Box::new(substitute(g, var, value))),
        Formula::Forall(v, g) => Formula::Forall(v.clone(), Box::new(substitute(g, var, value))),
    }
}

/// Grounds a formula with a full assignment for its free variables (in the
/// order given). Returns a sentence.
pub fn ground(f: &Formula, assignment: &[(Var, Value)]) -> Formula {
    assignment
        .iter()
        .fold(f.clone(), |acc, (v, val)| substitute(&acc, v, val))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::RelId;

    fn atom(args: Vec<Term>) -> Formula {
        Formula::Atom {
            rel: RelId(0),
            args,
        }
    }

    #[test]
    fn free_vars_basic() {
        let f = atom(vec![Term::var("x"), Term::var("y")]);
        let fv = free_vars(&f);
        assert_eq!(fv.len(), 2);
        assert!(fv.contains("x") && fv.contains("y"));
    }

    #[test]
    fn quantifier_binds() {
        let f = Formula::exists("x", atom(vec![Term::var("x"), Term::var("y")]));
        let fv = free_vars(&f);
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["y".to_string()]);
        assert!(!is_sentence(&f));
        let g = Formula::forall("y", f);
        assert!(is_sentence(&g));
    }

    #[test]
    fn shadowing_inner_binder_does_not_unbind_outer_occurrences() {
        // exists x. (R(x) /\ exists x. R(x)) — no free x
        let f = Formula::exists(
            "x",
            atom(vec![Term::var("x")]).and(Formula::exists("x", atom(vec![Term::var("x")]))),
        );
        assert!(is_sentence(&f));
        // R(x) /\ exists x. R(x) — x free in the left conjunct
        let g = atom(vec![Term::var("x")]).and(Formula::exists("x", atom(vec![Term::var("x")])));
        assert!(free_vars(&g).contains("x"));
    }

    #[test]
    fn eq_atom_variables() {
        let f = Formula::Eq(Term::var("a"), Term::cnst(1i64));
        assert!(free_vars(&f).contains("a"));
        assert_eq!(constants(&f).len(), 1);
    }

    #[test]
    fn constants_collected_across_structure() {
        let f = Formula::exists(
            "x",
            atom(vec![Term::var("x"), Term::cnst(7i64)]).or(Formula::Eq(
                Term::cnst("s"),
                Term::var("x"),
            )
            .not()),
        );
        let cs = constants(&f);
        assert_eq!(cs.len(), 2);
        assert!(cs.contains(&Value::int(7)));
        assert!(cs.contains(&Value::str("s")));
    }

    #[test]
    fn substitute_replaces_free_occurrences_only() {
        // x free in left conjunct, bound in right
        let f = atom(vec![Term::var("x")]).and(Formula::exists("x", atom(vec![Term::var("x")])));
        let g = substitute(&f, "x", &Value::int(5));
        match &g {
            Formula::And(parts) => {
                assert_eq!(parts[0], atom(vec![Term::cnst(5i64)]));
                // bound occurrence untouched
                assert_eq!(parts[1], Formula::exists("x", atom(vec![Term::var("x")])));
            }
            other => panic!("{other:?}"),
        }
        assert!(is_sentence(&g));
    }

    #[test]
    fn substitute_covers_all_node_kinds() {
        let f = Formula::forall(
            "y",
            Formula::Eq(Term::var("x"), Term::var("y"))
                .or(Formula::True)
                .or(Formula::False)
                .and(atom(vec![Term::var("x")]).not()),
        );
        let g = substitute(&f, "x", &Value::int(1));
        assert!(is_sentence(&g));
    }

    #[test]
    fn ground_applies_full_assignment() {
        let f = atom(vec![Term::var("x"), Term::var("y")]);
        let g = ground(
            &f,
            &[
                ("x".to_string(), Value::int(1)),
                ("y".to_string(), Value::int(2)),
            ],
        );
        assert_eq!(g, atom(vec![Term::cnst(1i64), Term::cnst(2i64)]));
    }
}

//! Active-domain evaluation of first-order formulas on finite instances.
//!
//! Quantifiers range over `adom(D) ∪ adom(φ)` — by Fact 2.1 of the paper
//! this is complete for queries with finite answers, and it is the standard
//! active-domain semantics of relational calculus. The evaluator optionally
//! takes *extra* domain elements: Proposition 6.1 evaluates queries
//! relativized to `Ω_n`, whose active domain `adom(Ω_n)` can exceed the
//! single instance's.

use crate::ast::{Formula, Term, Var};
use crate::vars::{constants, free_vars};
use crate::LogicError;
use infpdb_core::storage::InstanceStore;
use infpdb_core::value::Value;
use std::collections::BTreeSet;

/// An FO evaluator bound to one materialized instance.
#[derive(Debug)]
pub struct Evaluator<'a> {
    store: &'a InstanceStore,
    domain: Vec<Value>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator whose quantifier domain is
    /// `adom(D) ∪ adom(φ)` for the given formula.
    pub fn new(store: &'a InstanceStore, formula: &Formula) -> Self {
        Self::with_extra_domain(store, formula, std::iter::empty())
    }

    /// Creates an evaluator whose domain additionally includes `extra`
    /// (e.g. `adom(Ω_n)` in the truncation algorithm).
    pub fn with_extra_domain(
        store: &'a InstanceStore,
        formula: &Formula,
        extra: impl IntoIterator<Item = Value>,
    ) -> Self {
        let mut dom: BTreeSet<Value> = store.active_domain().clone();
        dom.extend(constants(formula));
        dom.extend(extra);
        Self {
            store,
            domain: dom.into_iter().collect(),
        }
    }

    /// The quantifier domain in use.
    pub fn domain(&self) -> &[Value] {
        &self.domain
    }

    /// Evaluates a sentence. Errors if the formula has free variables.
    pub fn eval_sentence(&self, f: &Formula) -> Result<bool, LogicError> {
        let fv = free_vars(f);
        if !fv.is_empty() {
            return Err(LogicError::NotASentence(fv.into_iter().collect()));
        }
        let mut env = Vec::new();
        Ok(self.eval(f, &mut env))
    }

    /// The answer relation `φ(D)`: all assignments of the free variables
    /// (in sorted variable order) making the formula true, drawn from the
    /// evaluator's domain (complete by Fact 2.1).
    pub fn answers(&self, f: &Formula) -> BTreeSet<Vec<Value>> {
        let fv: Vec<Var> = free_vars(f).into_iter().collect();
        let mut out = BTreeSet::new();
        let mut env: Vec<(Var, Value)> = Vec::with_capacity(fv.len());
        self.answers_rec(f, &fv, 0, &mut env, &mut out);
        out
    }

    fn answers_rec(
        &self,
        f: &Formula,
        fv: &[Var],
        i: usize,
        env: &mut Vec<(Var, Value)>,
        out: &mut BTreeSet<Vec<Value>>,
    ) {
        if i == fv.len() {
            if self.eval(f, env) {
                out.insert(env.iter().map(|(_, v)| v.clone()).collect());
            }
            return;
        }
        for v in &self.domain {
            env.push((fv[i].clone(), v.clone()));
            self.answers_rec(f, fv, i + 1, env, out);
            env.pop();
        }
    }

    fn resolve(&self, t: &Term, env: &[(Var, Value)]) -> Value {
        match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => env
                .iter()
                .rev()
                .find(|(name, _)| name == v)
                .map(|(_, val)| val.clone())
                .unwrap_or_else(|| panic!("unbound variable {v} during evaluation")),
        }
    }

    fn eval(&self, f: &Formula, env: &mut Vec<(Var, Value)>) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom { rel, args } => {
                let tuple: Vec<Value> = args.iter().map(|t| self.resolve(t, env)).collect();
                self.store.contains_tuple(*rel, &tuple)
            }
            Formula::Eq(a, b) => self.resolve(a, env) == self.resolve(b, env),
            Formula::Not(g) => !self.eval(g, env),
            Formula::And(gs) => gs.iter().all(|g| self.eval(g, env)),
            Formula::Or(gs) => gs.iter().any(|g| self.eval(g, env)),
            Formula::Exists(v, g) => self.domain.iter().any(|val| {
                env.push((v.clone(), val.clone()));
                let r = self.eval(g, env);
                env.pop();
                r
            }),
            Formula::Forall(v, g) => self.domain.iter().all(|val| {
                env.push((v.clone(), val.clone()));
                let r = self.eval(g, env);
                env.pop();
                r
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{Relation, Schema};

    fn setup() -> (Schema, InstanceStore) {
        let schema =
            Schema::from_relations([Relation::new("Edge", 2), Relation::new("Node", 1)]).unwrap();
        let e = schema.rel_id("Edge").unwrap();
        let n = schema.rel_id("Node").unwrap();
        let facts = [
            Fact::new(e, [Value::int(1), Value::int(2)]),
            Fact::new(e, [Value::int(2), Value::int(3)]),
            Fact::new(n, [Value::int(1)]),
            Fact::new(n, [Value::int(2)]),
            Fact::new(n, [Value::int(3)]),
        ];
        let store = InstanceStore::from_facts(facts.iter(), &schema);
        (schema, store)
    }

    fn holds(q: &str, schema: &Schema, store: &InstanceStore) -> bool {
        let f = parse(q, schema).unwrap();
        Evaluator::new(store, &f).eval_sentence(&f).unwrap()
    }

    #[test]
    fn ground_atoms() {
        let (s, st) = setup();
        assert!(holds("Edge(1, 2)", &s, &st));
        assert!(!holds("Edge(2, 1)", &s, &st));
    }

    #[test]
    fn existentials_and_conjunction() {
        let (s, st) = setup();
        assert!(holds("exists x. Edge(1, x)", &s, &st));
        assert!(holds("exists x, y, z. Edge(x, y) /\\ Edge(y, z)", &s, &st));
        assert!(!holds("exists x. Edge(x, x)", &s, &st));
    }

    #[test]
    fn universals() {
        let (s, st) = setup();
        // every node with an outgoing edge points at a node
        assert!(holds("forall x, y. (Edge(x, y) -> Node(y))", &s, &st));
        // not every node has an outgoing edge (3 doesn't)
        assert!(!holds(
            "forall x. (Node(x) -> exists y. Edge(x, y))",
            &s,
            &st
        ));
    }

    #[test]
    fn negation_and_equality() {
        let (s, st) = setup();
        assert!(holds(
            "exists x. Node(x) /\\ !(exists y. Edge(x, y))",
            &s,
            &st
        ));
        assert!(holds("exists x, y. Edge(x, y) /\\ x != y", &s, &st));
        assert!(!holds("exists x, y. Edge(x, y) /\\ x = y", &s, &st));
    }

    #[test]
    fn constants_extend_the_domain() {
        let (s, st) = setup();
        // 9 is not in adom(D) but appears in the formula; Fact 2.1 domain
        // includes it, and the query is (vacuously) satisfied on it.
        assert!(holds("exists x. x = 9", &s, &st));
        assert!(!holds("Node(9)", &s, &st));
    }

    #[test]
    fn extra_domain_elements_participate() {
        let (s, st) = setup();
        let f = parse("exists x. !Node(x)", &s).unwrap();
        // with only adom(D): all of 1,2,3 are nodes, so false
        assert!(!Evaluator::new(&st, &f).eval_sentence(&f).unwrap());
        // with an extra element 4: true
        let ev = Evaluator::with_extra_domain(&st, &f, [Value::int(4)]);
        assert!(ev.eval_sentence(&f).unwrap());
        assert_eq!(ev.domain().len(), 4);
    }

    #[test]
    fn eval_sentence_rejects_free_variables() {
        let (s, st) = setup();
        let f = parse("Edge(x, 2)", &s).unwrap();
        assert!(matches!(
            Evaluator::new(&st, &f).eval_sentence(&f),
            Err(LogicError::NotASentence(_))
        ));
    }

    #[test]
    fn answers_of_unary_query() {
        let (s, st) = setup();
        // nodes with an outgoing edge
        let f = parse("Node(x) /\\ exists y. Edge(x, y)", &s).unwrap();
        let ans = Evaluator::new(&st, &f).answers(&f);
        let vals: Vec<i64> = ans.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn answers_of_binary_query_in_sorted_var_order() {
        let (s, st) = setup();
        // free vars sorted: (x, y)
        let f = parse("Edge(x, y)", &s).unwrap();
        let ans = Evaluator::new(&st, &f).answers(&f);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Value::int(1), Value::int(2)]));
        assert!(ans.contains(&vec![Value::int(2), Value::int(3)]));
    }

    #[test]
    fn answers_of_sentence_is_nullary() {
        let (s, st) = setup();
        let t = parse("exists x. Node(x)", &s).unwrap();
        let ans = Evaluator::new(&st, &t).answers(&t);
        // Boolean true = {()}
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![]));
        let f = parse("exists x. Edge(x, x)", &s).unwrap();
        let ans = Evaluator::new(&st, &f).answers(&f);
        // Boolean false = ∅
        assert!(ans.is_empty());
    }

    #[test]
    fn empty_instance_semantics() {
        let (s, _) = setup();
        let store = InstanceStore::from_facts(std::iter::empty(), &s);
        let f = parse("exists x. Node(x)", &s).unwrap();
        assert!(!Evaluator::new(&store, &f).eval_sentence(&f).unwrap());
        // vacuous universal over empty domain
        let g = parse("forall x. Node(x)", &s).unwrap();
        assert!(Evaluator::new(&store, &g).eval_sentence(&g).unwrap());
    }

    #[test]
    fn variable_shadowing_resolves_innermost() {
        let (s, st) = setup();
        // inner x shadows outer x: exists x.(Node(x) /\ exists x. Edge(x, 3))
        assert!(holds(
            "exists x. (Node(x) /\\ exists x. Edge(x, 3))",
            &s,
            &st
        ));
    }
}

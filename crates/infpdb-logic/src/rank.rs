//! Quantifier rank and formula statistics.
//!
//! The proof of Proposition 6.1 relativizes evaluation to structures of size
//! `O(n + r + s)` where `r` is the quantifier rank of the query and `s` the
//! number of constants appearing in it. This module computes both, plus a
//! node count used for cost estimates.

use crate::ast::Formula;

/// The quantifier rank (maximum nesting depth of quantifiers).
pub fn quantifier_rank(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 0,
        Formula::Not(g) => quantifier_rank(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().map(quantifier_rank).max().unwrap_or(0),
        Formula::Exists(_, g) | Formula::Forall(_, g) => 1 + quantifier_rank(g),
    }
}

/// The number of distinct constants (`s` in Proposition 6.1).
pub fn constant_count(f: &Formula) -> usize {
    crate::vars::constants(f).len()
}

/// Number of AST nodes (terms not counted).
pub fn node_count(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 1,
        Formula::Not(g) => 1 + node_count(g),
        Formula::And(gs) | Formula::Or(gs) => 1 + gs.iter().map(node_count).sum::<usize>(),
        Formula::Exists(_, g) | Formula::Forall(_, g) => 1 + node_count(g),
    }
}

/// Number of relational atoms.
pub fn atom_count(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Eq(..) => 0,
        Formula::Atom { .. } => 1,
        Formula::Not(g) => atom_count(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().map(atom_count).sum(),
        Formula::Exists(_, g) | Formula::Forall(_, g) => atom_count(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use infpdb_core::schema::RelId;

    fn atom(n: i64) -> Formula {
        Formula::Atom {
            rel: RelId(0),
            args: vec![Term::var("x"), Term::cnst(n)],
        }
    }

    #[test]
    fn rank_of_quantifier_free_is_zero() {
        assert_eq!(quantifier_rank(&Formula::True), 0);
        assert_eq!(quantifier_rank(&atom(1).and(atom(2)).not()), 0);
    }

    #[test]
    fn rank_counts_nesting_not_total() {
        // (∃x φ) ∧ (∃y ψ) has rank 1, not 2
        let f = Formula::exists("x", atom(1)).and(Formula::exists("y", atom(2)));
        assert_eq!(quantifier_rank(&f), 1);
        // ∃x ∀y φ has rank 2
        let g = Formula::exists("x", Formula::forall("y", atom(1)));
        assert_eq!(quantifier_rank(&g), 2);
        // negation is transparent
        assert_eq!(quantifier_rank(&g.not()), 2);
    }

    #[test]
    fn constant_count_distinct() {
        let f = atom(1).and(atom(1)).and(atom(2));
        assert_eq!(constant_count(&f), 2);
        assert_eq!(constant_count(&Formula::True), 0);
    }

    #[test]
    fn node_and_atom_counts() {
        let f = Formula::exists("x", atom(1).and(atom(2)).not());
        // Exists + Not + And + 2 atoms
        assert_eq!(node_count(&f), 5);
        assert_eq!(atom_count(&f), 2);
        assert_eq!(atom_count(&Formula::Eq(Term::var("x"), Term::var("y"))), 0);
        assert_eq!(node_count(&Formula::Or(vec![])), 1);
    }
}

//! Normal forms and fragment extraction.
//!
//! * [`to_nnf`] — negation normal form (negations pushed to atoms,
//!   implication sugar already eliminated by the parser).
//! * [`ConjunctiveQuery`] — the existential-conjunctive fragment
//!   `∃x₁…x_m. A₁ ∧ … ∧ A_n` of positive relational atoms, the fragment for
//!   which extensional ("safe plan") inference is possible on
//!   tuple-independent PDBs; [`as_cq`] recognizes it.
//! * [`as_ucq`] — unions of conjunctive queries (top-level disjunction of
//!   CQs).

use crate::ast::{Formula, Term, Var};
use crate::LogicError;
use infpdb_core::schema::RelId;
use std::collections::BTreeSet;

/// Converts a formula to negation normal form: negations apply only to
/// atoms, `¬∃ → ∀¬`, `¬∀ → ∃¬`, `¬¬φ → φ`, and De Morgan on `∧`/`∨`.
pub fn to_nnf(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => f.clone(),
        Formula::And(gs) => Formula::And(gs.iter().map(to_nnf).collect()),
        Formula::Or(gs) => Formula::Or(gs.iter().map(to_nnf).collect()),
        Formula::Exists(v, g) => Formula::Exists(v.clone(), Box::new(to_nnf(g))),
        Formula::Forall(v, g) => Formula::Forall(v.clone(), Box::new(to_nnf(g))),
        Formula::Not(g) => negate_nnf(g),
    }
}

fn negate_nnf(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Atom { .. } | Formula::Eq(..) => f.clone().not(),
        Formula::Not(g) => to_nnf(g),
        Formula::And(gs) => Formula::Or(gs.iter().map(negate_nnf).collect()),
        Formula::Or(gs) => Formula::And(gs.iter().map(negate_nnf).collect()),
        Formula::Exists(v, g) => Formula::Forall(v.clone(), Box::new(negate_nnf(g))),
        Formula::Forall(v, g) => Formula::Exists(v.clone(), Box::new(negate_nnf(g))),
    }
}

/// One positive relational atom of a conjunctive query.
#[derive(Debug, Clone, PartialEq)]
pub struct CqAtom {
    /// The relation symbol.
    pub rel: RelId,
    /// Argument terms (variables or constants).
    pub args: Vec<Term>,
}

impl CqAtom {
    /// Variables occurring in the atom, sorted.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.args
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }
}

/// A conjunctive query `∃ vars. atoms` (Boolean if all variables are
/// quantified; free variables are the query's head).
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// Existentially quantified variables.
    pub exists_vars: Vec<Var>,
    /// Free (head) variables, sorted.
    pub head_vars: Vec<Var>,
    /// The positive atoms.
    pub atoms: Vec<CqAtom>,
}

impl ConjunctiveQuery {
    /// Whether the query is Boolean (no free variables).
    pub fn is_boolean(&self) -> bool {
        self.head_vars.is_empty()
    }

    /// Whether the query is self-join-free (every relation symbol occurs in
    /// at most one atom) — the precondition of the hierarchical safe-plan
    /// dichotomy.
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms.iter().all(|a| seen.insert(a.rel))
    }

    /// All variables, sorted.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.variables()).collect()
    }
}

/// Recognizes the existential-conjunctive fragment: a prefix of `∃`
/// quantifiers over a conjunction (arbitrarily nested `And`s; nested `∃` is
/// also accepted inside) of positive relational atoms. Equality atoms,
/// negation, disjunction and `∀` are outside the fragment.
pub fn as_cq(f: &Formula) -> Result<ConjunctiveQuery, LogicError> {
    let mut exists_vars = Vec::new();
    let mut atoms = Vec::new();
    collect_cq(f, &mut exists_vars, &mut atoms)?;
    let head_vars: Vec<Var> = crate::vars::free_vars(f).into_iter().collect();
    Ok(ConjunctiveQuery {
        exists_vars,
        head_vars,
        atoms,
    })
}

fn collect_cq(
    f: &Formula,
    exists_vars: &mut Vec<Var>,
    atoms: &mut Vec<CqAtom>,
) -> Result<(), LogicError> {
    match f {
        Formula::True => Ok(()),
        Formula::Atom { rel, args } => {
            atoms.push(CqAtom {
                rel: *rel,
                args: args.clone(),
            });
            Ok(())
        }
        Formula::And(gs) => gs
            .iter()
            .try_for_each(|g| collect_cq(g, exists_vars, atoms)),
        Formula::Exists(v, g) => {
            if exists_vars.contains(v) {
                return Err(LogicError::UnsupportedFragment(format!(
                    "variable {v} quantified twice; rectify the formula first"
                )));
            }
            exists_vars.push(v.clone());
            collect_cq(g, exists_vars, atoms)
        }
        other => Err(LogicError::UnsupportedFragment(format!(
            "not in the existential-conjunctive fragment: {other:?}"
        ))),
    }
}

/// Recognizes a union of conjunctive queries: either a single CQ or a
/// top-level disjunction of CQs (possibly under a shared `∃` prefix, which
/// is distributed into the disjuncts).
pub fn as_ucq(f: &Formula) -> Result<Vec<ConjunctiveQuery>, LogicError> {
    // Peel a shared exists-prefix.
    let mut prefix: Vec<Var> = Vec::new();
    let mut cur = f;
    while let Formula::Exists(v, g) = cur {
        prefix.push(v.clone());
        cur = g;
    }
    let disjuncts: Vec<&Formula> = match cur {
        Formula::Or(gs) => gs.iter().collect(),
        other => vec![other],
    };
    disjuncts
        .into_iter()
        .map(|d| {
            let wrapped = Formula::exists_many(prefix.clone(), d.clone());
            as_cq(&wrapped)
        })
        .collect()
}

/// Renames bound variables so that every quantifier binds a distinct
/// variable, also distinct from all free variables ("rectification") —
/// the precondition for prenex conversion.
pub fn rectify(f: &Formula) -> Formula {
    let mut used: BTreeSet<Var> = crate::vars::free_vars(f);
    let mut counter = 0usize;
    rectify_rec(f, &mut Vec::new(), &mut used, &mut counter)
}

fn fresh(base: &str, used: &mut BTreeSet<Var>, counter: &mut usize) -> Var {
    if used.insert(base.to_string()) {
        return base.to_string();
    }
    loop {
        *counter += 1;
        let candidate = format!("{base}_{counter}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
    }
}

fn rectify_rec(
    f: &Formula,
    renames: &mut Vec<(Var, Var)>,
    used: &mut BTreeSet<Var>,
    counter: &mut usize,
) -> Formula {
    let rename_term = |t: &Term, renames: &[(Var, Var)]| -> Term {
        match t {
            Term::Var(v) => {
                for (from, to) in renames.iter().rev() {
                    if from == v {
                        return Term::Var(to.clone());
                    }
                }
                t.clone()
            }
            c => c.clone(),
        }
    };
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom { rel, args } => Formula::Atom {
            rel: *rel,
            args: args.iter().map(|t| rename_term(t, renames)).collect(),
        },
        Formula::Eq(a, b) => Formula::Eq(rename_term(a, renames), rename_term(b, renames)),
        Formula::Not(g) => rectify_rec(g, renames, used, counter).not(),
        Formula::And(gs) => Formula::And(
            gs.iter()
                .map(|g| rectify_rec(g, renames, used, counter))
                .collect(),
        ),
        Formula::Or(gs) => Formula::Or(
            gs.iter()
                .map(|g| rectify_rec(g, renames, used, counter))
                .collect(),
        ),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            let nv = fresh(v, used, counter);
            renames.push((v.clone(), nv.clone()));
            let body = rectify_rec(g, renames, used, counter);
            renames.pop();
            if matches!(f, Formula::Exists(..)) {
                Formula::Exists(nv, Box::new(body))
            } else {
                Formula::Forall(nv, Box::new(body))
            }
        }
    }
}

/// One step of a prenex quantifier prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Quantifier {
    /// `∃ v`.
    Exists(Var),
    /// `∀ v`.
    Forall(Var),
}

/// Converts to prenex normal form: returns the quantifier prefix (outermost
/// first) and the quantifier-free matrix. The input is rectified and put in
/// NNF first, so quantifier extraction is sound without capture.
pub fn to_prenex(f: &Formula) -> (Vec<Quantifier>, Formula) {
    let g = to_nnf(&rectify(f));
    let mut prefix = Vec::new();
    let matrix = pull(&g, &mut prefix);
    (prefix, matrix)
}

fn pull(f: &Formula, prefix: &mut Vec<Quantifier>) -> Formula {
    match f {
        Formula::Exists(v, g) => {
            prefix.push(Quantifier::Exists(v.clone()));
            pull(g, prefix)
        }
        Formula::Forall(v, g) => {
            prefix.push(Quantifier::Forall(v.clone()));
            pull(g, prefix)
        }
        Formula::And(gs) => Formula::And(gs.iter().map(|g| pull(g, prefix)).collect()),
        Formula::Or(gs) => Formula::Or(gs.iter().map(|g| pull(g, prefix)).collect()),
        // NNF: negation only wraps atoms — no quantifiers below
        other => other.clone(),
    }
}

/// Reassembles a prenex pair into a formula.
pub fn from_prenex(prefix: &[Quantifier], matrix: Formula) -> Formula {
    prefix.iter().rev().fold(matrix, |acc, q| match q {
        Quantifier::Exists(v) => Formula::Exists(v.clone(), Box::new(acc)),
        Quantifier::Forall(v) => Formula::Forall(v.clone(), Box::new(acc)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use infpdb_core::schema::{Relation, Schema};

    fn schema() -> Schema {
        Schema::from_relations([
            Relation::new("R", 2),
            Relation::new("S", 1),
            Relation::new("T", 1),
        ])
        .unwrap()
    }

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let s = schema();
        let f = parse("!(S(1) /\\ exists x. R(x, x))", &s).unwrap();
        let n = to_nnf(&f);
        // expect: !S(1) \/ forall x. !R(x, x)
        match n {
            Formula::Or(parts) => {
                assert!(matches!(parts[0], Formula::Not(_)));
                match &parts[1] {
                    Formula::Forall(v, inner) => {
                        assert_eq!(v, "x");
                        assert!(matches!(**inner, Formula::Not(_)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nnf_eliminates_double_negation() {
        let s = schema();
        let f = parse("!!S(1)", &s).unwrap();
        assert_eq!(to_nnf(&f), parse("S(1)", &s).unwrap());
        let g = parse("!(!S(1) \\/ !(S(2)))", &s).unwrap();
        let n = to_nnf(&g);
        assert_eq!(n, parse("S(1) /\\ S(2)", &s).unwrap());
    }

    #[test]
    fn nnf_negates_constants_and_forall() {
        let s = schema();
        assert_eq!(to_nnf(&parse("!true", &s).unwrap()), Formula::False);
        assert_eq!(to_nnf(&parse("!false", &s).unwrap()), Formula::True);
        let f = parse("!(forall x. S(x))", &s).unwrap();
        assert!(matches!(to_nnf(&f), Formula::Exists(_, _)));
    }

    #[test]
    fn cq_extraction_accepts_fragment() {
        let s = schema();
        let f = parse("exists x, y. R(x, y) /\\ S(x) /\\ T(3)", &s).unwrap();
        let cq = as_cq(&f).unwrap();
        assert_eq!(cq.exists_vars, vec!["x", "y"]);
        assert!(cq.is_boolean());
        assert_eq!(cq.atoms.len(), 3);
        assert!(cq.is_self_join_free());
        assert_eq!(
            cq.variables().into_iter().collect::<Vec<_>>(),
            vec!["x", "y"]
        );
    }

    #[test]
    fn cq_with_free_variables_has_head() {
        let s = schema();
        let f = parse("exists y. R(x, y)", &s).unwrap();
        let cq = as_cq(&f).unwrap();
        assert!(!cq.is_boolean());
        assert_eq!(cq.head_vars, vec!["x"]);
    }

    #[test]
    fn cq_rejects_negation_disjunction_equality() {
        let s = schema();
        for q in [
            "exists x. !S(x)",
            "S(1) \\/ S(2)",
            "exists x. x = 1",
            "forall x. S(x)",
        ] {
            let f = parse(q, &s).unwrap();
            assert!(
                matches!(as_cq(&f), Err(LogicError::UnsupportedFragment(_))),
                "should reject {q}"
            );
        }
    }

    #[test]
    fn cq_detects_self_joins() {
        let s = schema();
        let f = parse("exists x, y. S(x) /\\ S(y)", &s).unwrap();
        let cq = as_cq(&f).unwrap();
        assert!(!cq.is_self_join_free());
    }

    #[test]
    fn cq_rejects_duplicate_quantifier() {
        let s = schema();
        let f = Formula::exists("x", Formula::exists("x", parse("S(x)", &s).unwrap()));
        assert!(as_cq(&f).is_err());
    }

    #[test]
    fn rectify_makes_binders_distinct() {
        let s = schema();
        // same variable bound twice and also free occurrence elsewhere
        let f = parse("(exists x. S(x)) /\\ (exists x. T(x)) /\\ S(y)", &s).unwrap();
        let r = rectify(&f);
        fn binders(f: &Formula, out: &mut Vec<String>) {
            match f {
                Formula::Exists(v, g) | Formula::Forall(v, g) => {
                    out.push(v.clone());
                    binders(g, out);
                }
                Formula::Not(g) => binders(g, out),
                Formula::And(gs) | Formula::Or(gs) => gs.iter().for_each(|g| binders(g, out)),
                _ => {}
            }
        }
        let mut bs = Vec::new();
        binders(&r, &mut bs);
        let set: std::collections::BTreeSet<_> = bs.iter().collect();
        assert_eq!(set.len(), bs.len(), "binders must be distinct: {bs:?}");
        assert!(
            !bs.contains(&"y".to_string()),
            "must not capture the free y"
        );
        // free variables unchanged
        assert_eq!(crate::vars::free_vars(&r), crate::vars::free_vars(&f));
    }

    #[test]
    fn prenex_extracts_all_quantifiers() {
        let s = schema();
        let f = parse("(exists x. S(x)) /\\ !(forall y. T(y))", &s).unwrap();
        let (prefix, matrix) = to_prenex(&f);
        assert_eq!(prefix.len(), 2);
        // ¬∀ became ∃ under NNF
        assert!(prefix.iter().all(|q| matches!(q, Quantifier::Exists(_))));
        assert_eq!(crate::rank::quantifier_rank(&matrix), 0);
    }

    #[test]
    fn prenex_preserves_semantics_on_instances() {
        use infpdb_core::fact::Fact;
        use infpdb_core::storage::InstanceStore;
        use infpdb_core::value::Value;
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let u = s.rel_id("S").unwrap();
        let facts = [
            Fact::new(r, [Value::int(1), Value::int(2)]),
            Fact::new(r, [Value::int(2), Value::int(2)]),
            Fact::new(u, [Value::int(2)]),
        ];
        let store = InstanceStore::from_facts(facts.iter(), &s);
        for qs in [
            "exists x. (S(x) /\\ forall y. (R(y, x) -> S(x)))",
            "(exists x. S(x)) /\\ !(exists y. R(y, y))",
            "forall x. (S(x) -> exists y. R(y, x))",
        ] {
            let f = parse(qs, &s).unwrap();
            let (prefix, matrix) = to_prenex(&f);
            let p = from_prenex(&prefix, matrix);
            let ev_f = crate::eval::Evaluator::new(&store, &f);
            let ev_p = crate::eval::Evaluator::new(&store, &p);
            assert_eq!(
                ev_f.eval_sentence(&f).unwrap(),
                ev_p.eval_sentence(&p).unwrap(),
                "prenex changed semantics of {qs}"
            );
        }
    }

    #[test]
    fn ucq_splits_top_level_disjunction() {
        let s = schema();
        let f = parse("(exists x. S(x)) \\/ (exists y. T(y))", &s).unwrap();
        let cqs = as_ucq(&f).unwrap();
        assert_eq!(cqs.len(), 2);
        assert_eq!(cqs[0].atoms[0].rel, s.rel_id("S").unwrap());
        assert_eq!(cqs[1].atoms[0].rel, s.rel_id("T").unwrap());
    }

    #[test]
    fn ucq_distributes_shared_exists_prefix() {
        let s = schema();
        let f = parse("exists x. (S(x) \\/ T(x))", &s).unwrap();
        let cqs = as_ucq(&f).unwrap();
        assert_eq!(cqs.len(), 2);
        assert_eq!(cqs[0].exists_vars, vec!["x"]);
        assert_eq!(cqs[1].exists_vars, vec!["x"]);
    }

    #[test]
    fn ucq_single_cq_degenerates() {
        let s = schema();
        let f = parse("exists x. S(x)", &s).unwrap();
        assert_eq!(as_ucq(&f).unwrap().len(), 1);
        // non-UCQ rejected
        let g = parse("exists x. !S(x)", &s).unwrap();
        assert!(as_ucq(&g).is_err());
    }
}

//! Abstract syntax of first-order formulas over a relational vocabulary.
//!
//! Following the paper's `FO[τ, U]` (Section 2.1): atoms are relation
//! symbols applied to terms, terms are variables or constants from the
//! universe, and formulas are closed under `¬, ∧, ∨, ∃, ∀` plus equality
//! atoms. Constants *are* universe elements (the paper does not distinguish
//! an element from its constant symbol).

use infpdb_core::schema::{RelId, Schema};
use infpdb_core::value::Value;
use std::fmt;

/// A variable name.
pub type Var = String;

/// A term: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant — an element of the universe.
    Const(Value),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn cnst(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A first-order formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A relational atom `R(t₁, …, t_k)`.
    Atom {
        /// Relation symbol.
        rel: RelId,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// An equality atom `t₁ = t₂`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (n-ary; empty conjunction is `true`).
    And(Vec<Formula>),
    /// Disjunction (n-ary; empty disjunction is `false`).
    Or(Vec<Formula>),
    /// Existential quantification of one variable.
    Exists(Var, Box<Formula>),
    /// Universal quantification of one variable.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// A relational atom.
    pub fn atom(rel: RelId, args: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Atom {
            rel,
            args: args.into_iter().collect(),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // builder vocabulary, consuming self
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Binary conjunction (flattens nested `And`s).
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), g) => {
                a.push(g);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (f, g) => Formula::And(vec![f, g]),
        }
    }

    /// Binary disjunction (flattens nested `Or`s).
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), g) => {
                a.push(g);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (f, g) => Formula::Or(vec![f, g]),
        }
    }

    /// `∃ v. self`.
    pub fn exists(v: impl Into<String>, body: Formula) -> Formula {
        Formula::Exists(v.into(), Box::new(body))
    }

    /// `∀ v. self`.
    pub fn forall(v: impl Into<String>, body: Formula) -> Formula {
        Formula::Forall(v.into(), Box::new(body))
    }

    /// `∃ v₁ … v_n. body`, right-nested.
    pub fn exists_many(vars: impl IntoIterator<Item = Var>, body: Formula) -> Formula {
        let vars: Vec<Var> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Formula::Exists(v, Box::new(acc)))
    }

    /// Validates all atoms against a schema: relations exist and arities
    /// match.
    pub fn validate(&self, schema: &Schema) -> Result<(), crate::LogicError> {
        match self {
            Formula::True | Formula::False | Formula::Eq(..) => Ok(()),
            Formula::Atom { rel, args } => {
                let r = schema
                    .get(*rel)
                    .ok_or_else(|| crate::LogicError::UnknownRelation(format!("{rel:?}")))?;
                if r.arity() != args.len() {
                    return Err(crate::LogicError::ArityMismatch {
                        relation: r.name().to_string(),
                        expected: r.arity(),
                        got: args.len(),
                    });
                }
                Ok(())
            }
            Formula::Not(f) => f.validate(schema),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().try_for_each(|f| f.validate(schema)),
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.validate(schema),
        }
    }

    /// Renders the formula with relation names from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FormulaDisplay<'a> {
        FormulaDisplay {
            formula: self,
            schema,
        }
    }
}

/// `Display` helper rendering relation names through a schema.
pub struct FormulaDisplay<'a> {
    formula: &'a Formula,
    schema: &'a Schema,
}

impl FormulaDisplay<'_> {
    fn fmt_rec(&self, f: &Formula, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match f {
            Formula::True => write!(out, "true"),
            Formula::False => write!(out, "false"),
            Formula::Atom { rel, args } => {
                let name = self.schema.get(*rel).map(|r| r.name()).unwrap_or("?");
                write!(out, "{name}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    write!(out, "{t}")?;
                }
                write!(out, ")")
            }
            Formula::Eq(a, b) => write!(out, "{a} = {b}"),
            Formula::Not(g) => {
                write!(out, "!(")?;
                self.fmt_rec(g, out)?;
                write!(out, ")")
            }
            Formula::And(gs) => self.fmt_nary(gs, "/\\", "true", out),
            Formula::Or(gs) => self.fmt_nary(gs, "\\/", "false", out),
            // quantifiers are wrapped in outer parens: their bodies extend
            // maximally to the right in the grammar, so an unparenthesized
            // `exists x. φ /\ ψ` would re-parse with ψ inside the scope
            Formula::Exists(v, g) => {
                write!(out, "(exists {v}. (")?;
                self.fmt_rec(g, out)?;
                write!(out, "))")
            }
            Formula::Forall(v, g) => {
                write!(out, "(forall {v}. (")?;
                self.fmt_rec(g, out)?;
                write!(out, "))")
            }
        }
    }

    fn fmt_nary(
        &self,
        gs: &[Formula],
        op: &str,
        empty: &str,
        out: &mut fmt::Formatter<'_>,
    ) -> fmt::Result {
        if gs.is_empty() {
            return write!(out, "{empty}");
        }
        write!(out, "(")?;
        for (i, g) in gs.iter().enumerate() {
            if i > 0 {
                write!(out, " {op} ")?;
            }
            self.fmt_rec(g, out)?;
        }
        write!(out, ")")
    }
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_rec(self.formula, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::Relation;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 2), Relation::new("S", 1)]).unwrap()
    }

    #[test]
    fn term_constructors() {
        assert_eq!(Term::var("x").as_var(), Some("x"));
        assert_eq!(Term::cnst(5i64).as_const(), Some(&Value::int(5)));
        assert_eq!(Term::var("x").as_const(), None);
        assert_eq!(Term::cnst("a").as_var(), None);
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::cnst(3i64).to_string(), "3");
    }

    #[test]
    fn and_or_flatten() {
        let a = Formula::True.and(Formula::False).and(Formula::True);
        match a {
            Formula::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
        let o = Formula::True.or(Formula::False.or(Formula::True));
        match o {
            Formula::Or(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flattened Or, got {other:?}"),
        }
    }

    #[test]
    fn exists_many_nests_left_to_right() {
        let f = Formula::exists_many(vec!["x".to_string(), "y".to_string()], Formula::True);
        match f {
            Formula::Exists(x, inner) => {
                assert_eq!(x, "x");
                assert!(matches!(*inner, Formula::Exists(ref y, _) if y == "y"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn validate_checks_arity_and_relation() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let good = Formula::atom(r, [Term::var("x"), Term::cnst(1i64)]);
        assert!(good.validate(&s).is_ok());
        let bad = Formula::atom(r, [Term::var("x")]);
        assert!(matches!(
            bad.validate(&s),
            Err(crate::LogicError::ArityMismatch { .. })
        ));
        let unknown = Formula::atom(RelId(9), [Term::var("x")]);
        assert!(matches!(
            unknown.validate(&s),
            Err(crate::LogicError::UnknownRelation(_))
        ));
        // validation recurses
        let nested = Formula::exists("x", bad.clone().not().or(Formula::True));
        assert!(nested.validate(&s).is_err());
    }

    #[test]
    fn display_round_trips_shape() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let f = Formula::exists(
            "x",
            Formula::atom(r, [Term::var("x"), Term::var("y")])
                .and(Formula::Eq(Term::var("y"), Term::cnst(3i64)).not()),
        );
        let text = f.display(&s).to_string();
        assert!(text.contains("exists x."));
        assert!(text.contains("R(x, y)"));
        assert!(text.contains("!(y = 3)"));
        assert_eq!(Formula::And(vec![]).display(&s).to_string(), "true");
        assert_eq!(Formula::Or(vec![]).display(&s).to_string(), "false");
        assert!(Formula::forall("z", Formula::True)
            .display(&s)
            .to_string()
            .contains("forall z."));
    }
}

//! Query compilation: the prepare-once artifact of the prepared-query
//! pipeline.
//!
//! Proposition 6.1 splits evaluation into work that depends only on the
//! query (parsing, normalization, safety analysis, ranking) and work that
//! depends on the PDB and the tolerance (truncation, grounding,
//! inference). [`CompiledQuery`] captures the query-only half so a serving
//! layer can do it once per distinct query and replay it across requests:
//!
//! * the **normal form** `nnf(rectify(Q))` used by downstream analyses,
//! * a stable **fingerprint** of that normal form with bound variables
//!   hashed as de Bruijn indices, so α-equivalent queries
//!   (`∃x. R(x)` vs `∃y. R(y)`) and double negations share an identity —
//!   this is the plan-cache key `infpdb-serve` uses,
//! * the **rank profile** (`r` and `s` of Proposition 6.1's `O(n + r + s)`
//!   bound, plus node/atom counts for cost estimates), and
//! * the extensional **safe plan** when the query is a hierarchical
//!   self-join-free CQ (`None` otherwise — the lineage engine handles it).
//!
//! Compilation is total: every well-formed formula compiles; safety is
//! recorded, not required.

use crate::ast::{Formula, Term};
use crate::normal::{as_cq, rectify, to_nnf};
use crate::safety::{safe_plan, SafePlan};
use crate::LogicError;
use infpdb_core::fingerprint::Fingerprinter;
use infpdb_core::schema::{RelId, Schema};

/// The query-shape statistics of a compiled query: the parameters of
/// Proposition 6.1's relativization bound plus size counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryProfile {
    /// Quantifier rank `r` (maximum quantifier nesting depth).
    pub quantifier_rank: usize,
    /// Number of distinct constants `s`.
    pub constants: usize,
    /// Number of relational atoms.
    pub atoms: usize,
    /// Number of AST nodes.
    pub nodes: usize,
}

/// How the [`QueryComponent`]s of a compiled query combine back into the
/// whole query's probability on a tuple-independent table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connective {
    /// One component that *is* the whole (normalized) query.
    Single,
    /// `P(Q) = ∏ P(φᵢ)` — the components are a top-level conjunction.
    And,
    /// `P(Q) = 1 − ∏ (1 − P(φᵢ))` — a top-level disjunction.
    Or,
}

/// One relation-disjoint subformula of the normalized query, carrying its
/// own safety/shape analysis so a planner can pick a strategy per
/// component.
///
/// Components partition the top-level `And`/`Or` children of the
/// normalized sentence by shared relation symbols. Two components never
/// mention a common relation, so on a tuple-independent table their
/// lineages are over disjoint fact variables and their probabilities are
/// independent — the [`Connective`] combination rules are exact.
#[derive(Debug, Clone)]
pub struct QueryComponent {
    formula: Formula,
    profile: QueryProfile,
    safe_plan: Option<SafePlan>,
    monotone: bool,
}

impl QueryComponent {
    fn analyze(formula: Formula) -> Self {
        let profile = QueryProfile {
            quantifier_rank: crate::rank::quantifier_rank(&formula),
            constants: crate::rank::constant_count(&formula),
            atoms: crate::rank::atom_count(&formula),
            nodes: crate::rank::node_count(&formula),
        };
        let safe_plan = as_cq(&formula).ok().and_then(|cq| safe_plan(&cq).ok());
        let monotone = is_monotone_nnf(&formula);
        QueryComponent {
            formula,
            profile,
            safe_plan,
            monotone,
        }
    }

    /// The component's (normalized, NNF) subformula — a sentence whenever
    /// the compiled query is one.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The component's own rank profile.
    pub fn profile(&self) -> QueryProfile {
        self.profile
    }

    /// The component's extensional safe plan, when it is a hierarchical
    /// self-join-free CQ on its own.
    pub fn safe_plan(&self) -> Option<&SafePlan> {
        self.safe_plan.as_ref()
    }

    /// Whether this component has an extensional safe plan.
    pub fn is_safe(&self) -> bool {
        self.safe_plan.is_some()
    }

    /// Whether the component is syntactically monotone (no negation, no
    /// universal quantifier in its NNF) — a sufficient condition for its
    /// lineage to be a monotone DNF, the fragment Karp–Luby handles.
    pub fn is_monotone(&self) -> bool {
        self.monotone
    }
}

/// A query compiled once: original formula, normal form, fingerprint,
/// rank profile, relation-disjoint components, and (when one exists)
/// extensional safe plan.
///
/// The original formula is retained verbatim because the execute phase
/// evaluates *it* — not the normal form — to stay bit-for-bit identical
/// to the one-shot evaluation path.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    original: Formula,
    normalized: Formula,
    fingerprint: u64,
    profile: QueryProfile,
    safe_plan: Option<SafePlan>,
    connective: Connective,
    components: Vec<QueryComponent>,
}

impl CompiledQuery {
    /// Compiles a formula: rectify → NNF → fingerprint → rank profile →
    /// safety analysis. Never fails; unsafe or non-CQ queries simply get
    /// no [`SafePlan`].
    pub fn compile(schema: &Schema, query: &Formula) -> Self {
        let normalized = to_nnf(&rectify(query));
        let fingerprint = fingerprint_normalized(schema, &normalized);
        let profile = QueryProfile {
            quantifier_rank: crate::rank::quantifier_rank(query),
            constants: crate::rank::constant_count(query),
            atoms: crate::rank::atom_count(query),
            nodes: crate::rank::node_count(query),
        };
        let safe_plan = as_cq(&normalized).ok().and_then(|cq| safe_plan(&cq).ok());
        let (connective, components) = decompose(&normalized);
        CompiledQuery {
            original: query.clone(),
            normalized,
            fingerprint,
            profile,
            safe_plan,
            connective,
            components,
        }
    }

    /// Parses and compiles query text in one step.
    pub fn compile_text(schema: &Schema, text: &str) -> Result<Self, LogicError> {
        Ok(Self::compile(schema, &crate::parse(text, schema)?))
    }

    /// The formula exactly as submitted (what the execute phase runs).
    pub fn original(&self) -> &Formula {
        &self.original
    }

    /// The rectified negation normal form.
    pub fn normalized(&self) -> &Formula {
        &self.normalized
    }

    /// The α-invariant structural fingerprint (the plan-cache key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The rank profile.
    pub fn profile(&self) -> QueryProfile {
        self.profile
    }

    /// The extensional safe plan, when the normalized query is a
    /// hierarchical self-join-free CQ.
    pub fn safe_plan(&self) -> Option<&SafePlan> {
        self.safe_plan.as_ref()
    }

    /// Whether an extensional safe plan exists.
    pub fn is_safe(&self) -> bool {
        self.safe_plan.is_some()
    }

    /// How [`components`](Self::components) combine back into `P(Q)`.
    pub fn connective(&self) -> Connective {
        self.connective
    }

    /// The relation-disjoint components of the normalized query, in
    /// first-appearance order of their relations. Always non-empty; a
    /// query that does not decompose is its own single component.
    pub fn components(&self) -> &[QueryComponent] {
        &self.components
    }
}

/// Splits the normalized sentence into relation-disjoint components.
///
/// Only a top-level `And`/`Or` decomposes: its children are grouped by
/// shared relation symbols (transitively), each group becoming one
/// component under the same connective. Groups are emitted in the order
/// their first child appears, children keep their original order, so the
/// decomposition is deterministic and α-invariant.
fn decompose(normalized: &Formula) -> (Connective, Vec<QueryComponent>) {
    let (connective, children): (Connective, &[Formula]) = match normalized {
        Formula::And(gs) if gs.len() >= 2 => (Connective::And, gs),
        Formula::Or(gs) if gs.len() >= 2 => (Connective::Or, gs),
        _ => {
            return (
                Connective::Single,
                vec![QueryComponent::analyze(normalized.clone())],
            )
        }
    };
    // union-find over child indexes, keyed by shared relation symbols
    let rels: Vec<Vec<RelId>> = children.iter().map(relations).collect();
    let mut parent: Vec<usize> = (0..children.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut r = i;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = i;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    let mut owner: std::collections::HashMap<RelId, usize> = std::collections::HashMap::new();
    for (i, rs) in rels.iter().enumerate() {
        for &r in rs {
            match owner.get(&r) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        // union toward the smaller root: groups keep the
                        // index of their earliest member
                        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                        parent[hi] = lo;
                    }
                }
                None => {
                    owner.insert(r, i);
                }
            }
        }
    }
    let mut groups: Vec<(usize, Vec<Formula>)> = Vec::new();
    for (i, child) in children.iter().enumerate() {
        let root = find(&mut parent, i);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, members)) => members.push(child.clone()),
            None => groups.push((root, vec![child.clone()])),
        }
    }
    if groups.len() < 2 {
        return (
            Connective::Single,
            vec![QueryComponent::analyze(normalized.clone())],
        );
    }
    let components = groups
        .into_iter()
        .map(|(_, mut members)| {
            let f = if members.len() == 1 {
                members.pop().expect("non-empty group")
            } else if connective == Connective::And {
                Formula::And(members)
            } else {
                Formula::Or(members)
            };
            QueryComponent::analyze(f)
        })
        .collect();
    (connective, components)
}

/// Relation symbols of a formula, in first-appearance order.
fn relations(f: &Formula) -> Vec<RelId> {
    fn walk(f: &Formula, out: &mut Vec<RelId>) {
        match f {
            Formula::Atom { rel, .. } => {
                if !out.contains(rel) {
                    out.push(*rel);
                }
            }
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => walk(g, out),
            Formula::And(gs) | Formula::Or(gs) => gs.iter().for_each(|g| walk(g, out)),
            Formula::True | Formula::False | Formula::Eq(..) => {}
        }
    }
    let mut out = Vec::new();
    walk(f, &mut out);
    out
}

/// Syntactic monotonicity of an NNF formula: no `Not`, no `Forall`.
fn is_monotone_nnf(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => true,
        Formula::Not(_) | Formula::Forall(..) => false,
        Formula::Exists(_, g) => is_monotone_nnf(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().all(is_monotone_nnf),
    }
}

/// Fingerprint of a query modulo normalization.
///
/// Rectification plus NNF is the normal form [`crate::normal`] provides;
/// hashing bound variables as de Bruijn indices on top makes the digest
/// independent of the names rectification happened to pick, so
/// α-equivalent queries share a fingerprint while genuinely different
/// queries do not. Atoms hash by relation *name* (schema-declaration
/// order does not matter).
pub fn query_fingerprint(schema: &Schema, query: &Formula) -> u64 {
    fingerprint_normalized(schema, &to_nnf(&rectify(query)))
}

fn fingerprint_normalized(schema: &Schema, normalized: &Formula) -> u64 {
    let mut fp = Fingerprinter::new();
    let mut binders: Vec<String> = Vec::new();
    hash_formula(&mut fp, schema, normalized, &mut binders);
    fp.finish()
}

fn hash_term(fp: &mut Fingerprinter, t: &Term, binders: &[String]) {
    match t {
        Term::Var(v) => {
            // innermost binder first: de Bruijn index
            match binders.iter().rev().position(|b| b == v) {
                Some(i) => fp.write_u64(1).write_u64(i as u64),
                // free variable: identity is its name
                None => fp.write_u64(2).write_bytes(v.as_bytes()),
            };
        }
        Term::Const(v) => {
            fp.write_u64(3).write_value(v);
        }
    }
}

fn hash_formula(fp: &mut Fingerprinter, schema: &Schema, f: &Formula, binders: &mut Vec<String>) {
    match f {
        Formula::True => {
            fp.write_u64(10);
        }
        Formula::False => {
            fp.write_u64(11);
        }
        Formula::Atom { rel, args } => {
            fp.write_u64(12);
            let name = schema.get(*rel).map(|r| r.name()).unwrap_or("?");
            fp.write_bytes(name.as_bytes());
            fp.write_u64(args.len() as u64);
            for a in args {
                hash_term(fp, a, binders);
            }
        }
        Formula::Eq(a, b) => {
            fp.write_u64(13);
            hash_term(fp, a, binders);
            hash_term(fp, b, binders);
        }
        Formula::Not(g) => {
            fp.write_u64(14);
            hash_formula(fp, schema, g, binders);
        }
        Formula::And(gs) => {
            fp.write_u64(15).write_u64(gs.len() as u64);
            for g in gs {
                hash_formula(fp, schema, g, binders);
            }
        }
        Formula::Or(gs) => {
            fp.write_u64(16).write_u64(gs.len() as u64);
            for g in gs {
                hash_formula(fp, schema, g, binders);
            }
        }
        Formula::Exists(v, g) => {
            fp.write_u64(17);
            binders.push(v.clone());
            hash_formula(fp, schema, g, binders);
            binders.pop();
        }
        Formula::Forall(v, g) => {
            fp.write_u64(18);
            binders.push(v.clone());
            hash_formula(fp, schema, g, binders);
            binders.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use infpdb_core::schema::Relation;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
    }

    fn compile(q: &str) -> CompiledQuery {
        let s = schema();
        CompiledQuery::compile(&s, &parse(q, &s).unwrap())
    }

    #[test]
    fn compile_preserves_the_original_formula() {
        let s = schema();
        let q = parse("!(!R(1))", &s).unwrap();
        let cq = CompiledQuery::compile(&s, &q);
        assert_eq!(cq.original(), &q);
        // while the normal form collapses the double negation
        assert_eq!(cq.normalized(), &parse("R(1)", &s).unwrap());
    }

    #[test]
    fn alpha_equivalent_queries_compile_to_equal_fingerprints() {
        assert_eq!(
            compile("exists x. R(x)").fingerprint(),
            compile("exists y. R(y)").fingerprint()
        );
        assert_eq!(
            compile("exists x. exists y. S(x, y)").fingerprint(),
            compile("exists a. exists b. S(a, b)").fingerprint()
        );
        // swapped roles are NOT α-equivalent
        assert_ne!(
            compile("exists x. exists y. S(x, y)").fingerprint(),
            compile("exists x. exists y. S(y, x)").fingerprint()
        );
        // distinct queries stay distinct
        assert_ne!(compile("R(1)").fingerprint(), compile("R(2)").fingerprint());
    }

    #[test]
    fn profile_reports_prop_6_1_parameters() {
        let cq = compile("exists x. exists y. S(x, y) /\\ R(1)");
        let p = cq.profile();
        assert_eq!(p.quantifier_rank, 2);
        assert_eq!(p.constants, 1);
        assert_eq!(p.atoms, 2);
        assert!(p.nodes >= 4);
    }

    #[test]
    fn safe_plan_recorded_for_hierarchical_cqs_only() {
        assert!(compile("exists x. R(x)").is_safe());
        assert!(compile("exists x. exists y. S(x, y)").is_safe());
        // a self-join is not safe-plannable
        let unsafe_q = compile("exists x. exists y. R(x) /\\ R(y)");
        assert!(unsafe_q.safe_plan().is_none());
        // non-CQ shapes compile fine without a plan
        assert!(!compile("forall x. R(x)").is_safe());
    }

    #[test]
    fn relation_disjoint_conjuncts_decompose() {
        let s = Schema::from_relations([
            Relation::new("R", 1),
            Relation::new("S", 2),
            Relation::new("T", 1),
        ])
        .unwrap();
        let c = |q: &str| CompiledQuery::compile(&s, &parse(q, &s).unwrap());
        // R-part and T-part share no relation: two components
        let cq = c("(exists x. R(x)) /\\ (exists y. T(y))");
        assert_eq!(cq.connective(), Connective::And);
        assert_eq!(cq.components().len(), 2);
        assert!(cq.components().iter().all(|k| k.is_safe()));
        assert!(cq.components().iter().all(|k| k.is_monotone()));
        // shared relation R joins the first and third conjunct
        let cq2 = c("(exists x. R(x) /\\ S(x, x)) /\\ (exists y. T(y)) /\\ R(1)");
        assert_eq!(cq2.components().len(), 2);
        // disjunction decomposes the same way
        let cq3 = c("(exists x. R(x)) \\/ (exists y. T(y))");
        assert_eq!(cq3.connective(), Connective::Or);
        assert_eq!(cq3.components().len(), 2);
        // no top-level And/Or: single component equal to the normal form
        let cq4 = c("exists x. R(x) /\\ T(x)");
        assert_eq!(cq4.connective(), Connective::Single);
        assert_eq!(cq4.components().len(), 1);
        assert_eq!(cq4.components()[0].formula(), cq4.normalized());
        // negation kills monotonicity but not decomposition
        let cq5 = c("(!R(1)) /\\ (exists y. T(y))");
        assert_eq!(cq5.components().len(), 2);
        assert!(!cq5.components()[0].is_monotone());
        assert!(cq5.components()[1].is_monotone());
    }

    #[test]
    fn decomposition_is_alpha_invariant() {
        let s = Schema::from_relations([Relation::new("R", 1), Relation::new("T", 1)]).unwrap();
        let c = |q: &str| CompiledQuery::compile(&s, &parse(q, &s).unwrap());
        let a = c("(exists x. R(x)) /\\ (exists y. T(y))");
        let b = c("(exists u. R(u)) /\\ (exists v. T(v))");
        assert_eq!(a.components().len(), b.components().len());
        for (ka, kb) in a.components().iter().zip(b.components()) {
            assert_eq!(ka.profile(), kb.profile());
            assert_eq!(ka.is_safe(), kb.is_safe());
            assert_eq!(ka.is_monotone(), kb.is_monotone());
        }
    }

    #[test]
    fn compile_text_round_trip_and_errors() {
        let s = schema();
        let cq = CompiledQuery::compile_text(&s, "exists x. R(x)").unwrap();
        assert_eq!(cq.fingerprint(), compile("exists x. R(x)").fingerprint());
        assert!(CompiledQuery::compile_text(&s, "exists x. R(x").is_err());
    }
}

//! Query compilation: the prepare-once artifact of the prepared-query
//! pipeline.
//!
//! Proposition 6.1 splits evaluation into work that depends only on the
//! query (parsing, normalization, safety analysis, ranking) and work that
//! depends on the PDB and the tolerance (truncation, grounding,
//! inference). [`CompiledQuery`] captures the query-only half so a serving
//! layer can do it once per distinct query and replay it across requests:
//!
//! * the **normal form** `nnf(rectify(Q))` used by downstream analyses,
//! * a stable **fingerprint** of that normal form with bound variables
//!   hashed as de Bruijn indices, so α-equivalent queries
//!   (`∃x. R(x)` vs `∃y. R(y)`) and double negations share an identity —
//!   this is the plan-cache key `infpdb-serve` uses,
//! * the **rank profile** (`r` and `s` of Proposition 6.1's `O(n + r + s)`
//!   bound, plus node/atom counts for cost estimates), and
//! * the extensional **safe plan** when the query is a hierarchical
//!   self-join-free CQ (`None` otherwise — the lineage engine handles it).
//!
//! Compilation is total: every well-formed formula compiles; safety is
//! recorded, not required.

use crate::ast::{Formula, Term};
use crate::normal::{as_cq, rectify, to_nnf};
use crate::safety::{safe_plan, SafePlan};
use crate::LogicError;
use infpdb_core::fingerprint::Fingerprinter;
use infpdb_core::schema::Schema;

/// The query-shape statistics of a compiled query: the parameters of
/// Proposition 6.1's relativization bound plus size counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryProfile {
    /// Quantifier rank `r` (maximum quantifier nesting depth).
    pub quantifier_rank: usize,
    /// Number of distinct constants `s`.
    pub constants: usize,
    /// Number of relational atoms.
    pub atoms: usize,
    /// Number of AST nodes.
    pub nodes: usize,
}

/// A query compiled once: original formula, normal form, fingerprint,
/// rank profile, and (when one exists) extensional safe plan.
///
/// The original formula is retained verbatim because the execute phase
/// evaluates *it* — not the normal form — to stay bit-for-bit identical
/// to the one-shot evaluation path.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    original: Formula,
    normalized: Formula,
    fingerprint: u64,
    profile: QueryProfile,
    safe_plan: Option<SafePlan>,
}

impl CompiledQuery {
    /// Compiles a formula: rectify → NNF → fingerprint → rank profile →
    /// safety analysis. Never fails; unsafe or non-CQ queries simply get
    /// no [`SafePlan`].
    pub fn compile(schema: &Schema, query: &Formula) -> Self {
        let normalized = to_nnf(&rectify(query));
        let fingerprint = fingerprint_normalized(schema, &normalized);
        let profile = QueryProfile {
            quantifier_rank: crate::rank::quantifier_rank(query),
            constants: crate::rank::constant_count(query),
            atoms: crate::rank::atom_count(query),
            nodes: crate::rank::node_count(query),
        };
        let safe_plan = as_cq(&normalized).ok().and_then(|cq| safe_plan(&cq).ok());
        CompiledQuery {
            original: query.clone(),
            normalized,
            fingerprint,
            profile,
            safe_plan,
        }
    }

    /// Parses and compiles query text in one step.
    pub fn compile_text(schema: &Schema, text: &str) -> Result<Self, LogicError> {
        Ok(Self::compile(schema, &crate::parse(text, schema)?))
    }

    /// The formula exactly as submitted (what the execute phase runs).
    pub fn original(&self) -> &Formula {
        &self.original
    }

    /// The rectified negation normal form.
    pub fn normalized(&self) -> &Formula {
        &self.normalized
    }

    /// The α-invariant structural fingerprint (the plan-cache key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The rank profile.
    pub fn profile(&self) -> QueryProfile {
        self.profile
    }

    /// The extensional safe plan, when the normalized query is a
    /// hierarchical self-join-free CQ.
    pub fn safe_plan(&self) -> Option<&SafePlan> {
        self.safe_plan.as_ref()
    }

    /// Whether an extensional safe plan exists.
    pub fn is_safe(&self) -> bool {
        self.safe_plan.is_some()
    }
}

/// Fingerprint of a query modulo normalization.
///
/// Rectification plus NNF is the normal form [`crate::normal`] provides;
/// hashing bound variables as de Bruijn indices on top makes the digest
/// independent of the names rectification happened to pick, so
/// α-equivalent queries share a fingerprint while genuinely different
/// queries do not. Atoms hash by relation *name* (schema-declaration
/// order does not matter).
pub fn query_fingerprint(schema: &Schema, query: &Formula) -> u64 {
    fingerprint_normalized(schema, &to_nnf(&rectify(query)))
}

fn fingerprint_normalized(schema: &Schema, normalized: &Formula) -> u64 {
    let mut fp = Fingerprinter::new();
    let mut binders: Vec<String> = Vec::new();
    hash_formula(&mut fp, schema, normalized, &mut binders);
    fp.finish()
}

fn hash_term(fp: &mut Fingerprinter, t: &Term, binders: &[String]) {
    match t {
        Term::Var(v) => {
            // innermost binder first: de Bruijn index
            match binders.iter().rev().position(|b| b == v) {
                Some(i) => fp.write_u64(1).write_u64(i as u64),
                // free variable: identity is its name
                None => fp.write_u64(2).write_bytes(v.as_bytes()),
            };
        }
        Term::Const(v) => {
            fp.write_u64(3).write_value(v);
        }
    }
}

fn hash_formula(fp: &mut Fingerprinter, schema: &Schema, f: &Formula, binders: &mut Vec<String>) {
    match f {
        Formula::True => {
            fp.write_u64(10);
        }
        Formula::False => {
            fp.write_u64(11);
        }
        Formula::Atom { rel, args } => {
            fp.write_u64(12);
            let name = schema.get(*rel).map(|r| r.name()).unwrap_or("?");
            fp.write_bytes(name.as_bytes());
            fp.write_u64(args.len() as u64);
            for a in args {
                hash_term(fp, a, binders);
            }
        }
        Formula::Eq(a, b) => {
            fp.write_u64(13);
            hash_term(fp, a, binders);
            hash_term(fp, b, binders);
        }
        Formula::Not(g) => {
            fp.write_u64(14);
            hash_formula(fp, schema, g, binders);
        }
        Formula::And(gs) => {
            fp.write_u64(15).write_u64(gs.len() as u64);
            for g in gs {
                hash_formula(fp, schema, g, binders);
            }
        }
        Formula::Or(gs) => {
            fp.write_u64(16).write_u64(gs.len() as u64);
            for g in gs {
                hash_formula(fp, schema, g, binders);
            }
        }
        Formula::Exists(v, g) => {
            fp.write_u64(17);
            binders.push(v.clone());
            hash_formula(fp, schema, g, binders);
            binders.pop();
        }
        Formula::Forall(v, g) => {
            fp.write_u64(18);
            binders.push(v.clone());
            hash_formula(fp, schema, g, binders);
            binders.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use infpdb_core::schema::Relation;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
    }

    fn compile(q: &str) -> CompiledQuery {
        let s = schema();
        CompiledQuery::compile(&s, &parse(q, &s).unwrap())
    }

    #[test]
    fn compile_preserves_the_original_formula() {
        let s = schema();
        let q = parse("!(!R(1))", &s).unwrap();
        let cq = CompiledQuery::compile(&s, &q);
        assert_eq!(cq.original(), &q);
        // while the normal form collapses the double negation
        assert_eq!(cq.normalized(), &parse("R(1)", &s).unwrap());
    }

    #[test]
    fn alpha_equivalent_queries_compile_to_equal_fingerprints() {
        assert_eq!(
            compile("exists x. R(x)").fingerprint(),
            compile("exists y. R(y)").fingerprint()
        );
        assert_eq!(
            compile("exists x. exists y. S(x, y)").fingerprint(),
            compile("exists a. exists b. S(a, b)").fingerprint()
        );
        // swapped roles are NOT α-equivalent
        assert_ne!(
            compile("exists x. exists y. S(x, y)").fingerprint(),
            compile("exists x. exists y. S(y, x)").fingerprint()
        );
        // distinct queries stay distinct
        assert_ne!(compile("R(1)").fingerprint(), compile("R(2)").fingerprint());
    }

    #[test]
    fn profile_reports_prop_6_1_parameters() {
        let cq = compile("exists x. exists y. S(x, y) /\\ R(1)");
        let p = cq.profile();
        assert_eq!(p.quantifier_rank, 2);
        assert_eq!(p.constants, 1);
        assert_eq!(p.atoms, 2);
        assert!(p.nodes >= 4);
    }

    #[test]
    fn safe_plan_recorded_for_hierarchical_cqs_only() {
        assert!(compile("exists x. R(x)").is_safe());
        assert!(compile("exists x. exists y. S(x, y)").is_safe());
        // a self-join is not safe-plannable
        let unsafe_q = compile("exists x. exists y. R(x) /\\ R(y)");
        assert!(unsafe_q.safe_plan().is_none());
        // non-CQ shapes compile fine without a plan
        assert!(!compile("forall x. R(x)").is_safe());
    }

    #[test]
    fn compile_text_round_trip_and_errors() {
        let s = schema();
        let cq = CompiledQuery::compile_text(&s, "exists x. R(x)").unwrap();
        assert_eq!(cq.fingerprint(), compile("exists x. R(x)").fingerprint());
        assert!(CompiledQuery::compile_text(&s, "exists x. R(x").is_err());
    }
}

//! Text syntax for first-order queries.
//!
//! Grammar (precedence low → high: `->`, `\/`, `/\`, `!`):
//!
//! ```text
//! formula   := 'exists' vars '.' formula
//!            | 'forall' vars '.' formula
//!            | implication
//! implication := disjunction [ '->' formula ]
//! disjunction := conjunction { ('\/' | '|' | 'or') conjunction }
//! conjunction := negation  { ('/\' | '&' | 'and') negation }
//! negation  := ('!' | 'not') negation | primary
//! primary   := '(' formula ')' | 'true' | 'false'
//!            | Rel '(' terms ')' | term ('=' | '!=') term
//! term      := identifier | integer | decimal | 'single' or "double" string
//! vars      := identifier { ',' identifier }
//! ```
//!
//! Relation names are resolved against a [`Schema`] at parse time, with
//! arity checking; identifiers in term position are variables; quoted
//! strings, integers and decimals are constants (elements of the universe,
//! per the paper's convention of not distinguishing elements from constant
//! symbols).

use crate::ast::{Formula, Term};
use crate::LogicError;
use infpdb_core::schema::Schema;
use infpdb_core::value::Value;

/// Parses `input` into a [`Formula`], resolving relation names against
/// `schema`.
///
/// ```
/// use infpdb_core::schema::{Relation, Schema};
/// use infpdb_logic::{parse, vars};
///
/// let schema = Schema::from_relations([Relation::new("Edge", 2)])?;
/// let q = parse("exists x, y. Edge(x, y) /\\ x != y", &schema)?;
/// assert!(vars::is_sentence(&q));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse(input: &str, schema: &Schema) -> Result<Formula, LogicError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        schema,
    };
    p.skip_ws();
    let f = p.formula()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> LogicError {
        LogicError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            self.skip_ws();
            true
        } else {
            false
        }
    }

    /// Eats a keyword: like `eat` but the next char must not continue an
    /// identifier.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw) {
            let after = self.pos + kw.len();
            let cont = self
                .bytes
                .get(after)
                .map(|b| b.is_ascii_alphanumeric() || *b == b'_')
                .unwrap_or(false);
            if !cont {
                self.pos = after;
                self.skip_ws();
                return true;
            }
        }
        false
    }

    fn identifier(&mut self) -> Option<String> {
        let start = self.pos;
        if !matches!(self.peek(), Some(b) if b.is_ascii_alphabetic() || b == b'_') {
            return None;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        let id = self.input[start..self.pos].to_string();
        self.skip_ws();
        Some(id)
    }

    fn formula(&mut self) -> Result<Formula, LogicError> {
        for (kw, is_exists) in [("exists", true), ("forall", false)] {
            let save = self.pos;
            if self.eat_kw(kw) {
                let mut vars = Vec::new();
                loop {
                    let v = self
                        .identifier()
                        .ok_or_else(|| self.err("expected variable name"))?;
                    vars.push(v);
                    if !self.eat(",") {
                        break;
                    }
                }
                if !self.eat(".") {
                    self.pos = save;
                    return Err(self.err("expected '.' after quantified variables"));
                }
                let body = self.formula()?;
                return Ok(vars.into_iter().rev().fold(body, |acc, v| {
                    if is_exists {
                        Formula::Exists(v, Box::new(acc))
                    } else {
                        Formula::Forall(v, Box::new(acc))
                    }
                }));
            }
        }
        self.implication()
    }

    fn implication(&mut self) -> Result<Formula, LogicError> {
        let lhs = self.disjunction()?;
        if self.eat("->") {
            let rhs = self.formula()?;
            return Ok(lhs.not().or(rhs));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.conjunction()?;
        loop {
            if self.eat("\\/") || self.eat("|") || self.eat_kw("or") {
                let g = self.conjunction()?;
                f = f.or(g);
            } else {
                return Ok(f);
            }
        }
    }

    fn conjunction(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.negation()?;
        loop {
            if self.eat("/\\") || self.eat("&") || self.eat_kw("and") {
                let g = self.negation()?;
                f = f.and(g);
            } else {
                return Ok(f);
            }
        }
    }

    fn negation(&mut self) -> Result<Formula, LogicError> {
        // careful not to eat the '!' of a '!=' inequality atom
        if !self.input[self.pos..].starts_with("!=") && self.eat("!") {
            return Ok(self.negation()?.not());
        }
        if self.eat_kw("not") {
            return Ok(self.negation()?.not());
        }
        // A quantifier may appear as an operand (`A /\ exists x. B`); its
        // body extends maximally to the right within the current parens.
        if self.looking_at_quantifier() {
            return self.formula();
        }
        self.primary()
    }

    fn looking_at_quantifier(&self) -> bool {
        for kw in ["exists", "forall"] {
            if self.input[self.pos..].starts_with(kw) {
                let after = self.pos + kw.len();
                let cont = self
                    .bytes
                    .get(after)
                    .map(|b| b.is_ascii_alphanumeric() || *b == b'_')
                    .unwrap_or(false);
                if !cont {
                    return true;
                }
            }
        }
        false
    }

    fn primary(&mut self) -> Result<Formula, LogicError> {
        if self.eat("(") {
            let f = self.formula()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(f);
        }
        if self.eat_kw("true") {
            return Ok(Formula::True);
        }
        if self.eat_kw("false") {
            return Ok(Formula::False);
        }
        // Try relation atom: identifier followed by '('
        let save = self.pos;
        if let Some(id) = self.identifier() {
            if self.eat("(") {
                let rel = self
                    .schema
                    .rel_id(&id)
                    .ok_or(LogicError::UnknownRelation(id.clone()))?;
                let mut args = Vec::new();
                if !self.eat(")") {
                    loop {
                        args.push(self.term()?);
                        if self.eat(")") {
                            break;
                        }
                        if !self.eat(",") {
                            return Err(self.err("expected ',' or ')' in atom"));
                        }
                    }
                }
                let expected = self.schema.relation(rel).arity();
                if expected != args.len() {
                    return Err(LogicError::ArityMismatch {
                        relation: id,
                        expected,
                        got: args.len(),
                    });
                }
                return Ok(Formula::Atom { rel, args });
            }
            // not an atom: identifier was a variable term in an equality
            self.pos = save;
            self.skip_ws();
        }
        // Equality / inequality between terms
        let lhs = self.term()?;
        if self.eat("!=") {
            let rhs = self.term()?;
            return Ok(Formula::Eq(lhs, rhs).not());
        }
        if self.eat("=") {
            let rhs = self.term()?;
            return Ok(Formula::Eq(lhs, rhs));
        }
        Err(self.err("expected '=' or '!=' after term"))
    }

    fn term(&mut self) -> Result<Term, LogicError> {
        match self.peek() {
            Some(b'\'') | Some(b'"') => {
                let quote = self.bytes[self.pos];
                self.pos += 1;
                let start = self.pos;
                while self.peek().map(|b| b != quote).unwrap_or(false) {
                    self.pos += 1;
                }
                if self.peek() != Some(quote) {
                    return Err(self.err("unterminated string literal"));
                }
                let s = self.input[start..self.pos].to_string();
                self.pos += 1;
                self.skip_ws();
                Ok(Term::Const(Value::str(s)))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' => {
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
                if self.peek() == Some(b'.')
                    && matches!(
                        self.bytes.get(self.pos + 1),
                        Some(c) if c.is_ascii_digit()
                    )
                {
                    self.pos += 1;
                    let frac_start = self.pos;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    let text = &self.input[start..self.pos];
                    let frac_len = (self.pos - frac_start) as u8;
                    let mantissa: i64 = text
                        .replace('.', "")
                        .parse()
                        .map_err(|_| self.err("decimal literal out of range"))?;
                    self.skip_ws();
                    return Ok(Term::Const(Value::fixed(mantissa, frac_len)));
                }
                let text = &self.input[start..self.pos];
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.err("integer literal out of range"))?;
                self.skip_ws();
                Ok(Term::Const(Value::int(n)))
            }
            _ => {
                let id = self.identifier().ok_or_else(|| self.err("expected term"))?;
                Ok(Term::Var(id))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::{free_vars, is_sentence};
    use infpdb_core::schema::Relation;

    fn schema() -> Schema {
        Schema::from_relations([
            Relation::new("R", 2),
            Relation::new("S", 1),
            Relation::new("T", 0),
        ])
        .unwrap()
    }

    #[test]
    fn parses_atoms_and_constants() {
        let s = schema();
        let f = parse("R(x, 3)", &s).unwrap();
        assert_eq!(
            f,
            Formula::atom(s.rel_id("R").unwrap(), [Term::var("x"), Term::cnst(3i64)])
        );
        let g = parse("S('abc')", &s).unwrap();
        assert_eq!(
            g,
            Formula::atom(s.rel_id("S").unwrap(), [Term::cnst("abc")])
        );
        let h = parse("R(\"a b\", -7)", &s).unwrap();
        match h {
            Formula::Atom { args, .. } => {
                assert_eq!(args[0], Term::cnst("a b"));
                assert_eq!(args[1], Term::cnst(-7i64));
            }
            other => panic!("{other:?}"),
        }
        let t = parse("T()", &s).unwrap();
        assert!(matches!(t, Formula::Atom { ref args, .. } if args.is_empty()));
    }

    #[test]
    fn parses_decimal_constants_as_fixed() {
        let s = schema();
        let f = parse("S(20.25)", &s).unwrap();
        match f {
            Formula::Atom { args, .. } => assert_eq!(args[0], Term::cnst(Value::fixed(2025, 2))),
            other => panic!("{other:?}"),
        }
        let g = parse("S(-0.5)", &s).unwrap();
        match g {
            Formula::Atom { args, .. } => assert_eq!(args[0], Term::cnst(Value::fixed(-5, 1))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_boolean_structure_with_precedence() {
        let s = schema();
        // a \/ b /\ c parses as a \/ (b /\ c)
        let f = parse("S(1) \\/ S(2) /\\ S(3)", &s).unwrap();
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::And(_)));
            }
            other => panic!("{other:?}"),
        }
        // keyword forms
        let g = parse("S(1) or S(2) and not S(3)", &s).unwrap();
        assert!(matches!(g, Formula::Or(_)));
        // ASCII operators
        let h = parse("S(1) | S(2) & !S(3)", &s).unwrap();
        assert!(matches!(h, Formula::Or(_)));
    }

    #[test]
    fn parses_quantifiers() {
        let s = schema();
        let f = parse("exists x, y. R(x, y)", &s).unwrap();
        assert!(is_sentence(&f));
        match &f {
            Formula::Exists(x, inner) => {
                assert_eq!(x, "x");
                assert!(matches!(**inner, Formula::Exists(ref y, _) if y == "y"));
            }
            other => panic!("{other:?}"),
        }
        let g = parse("forall x. exists y. R(x, y)", &s).unwrap();
        assert_eq!(crate::rank::quantifier_rank(&g), 2);
    }

    #[test]
    fn parses_equality_and_inequality() {
        let s = schema();
        let f = parse("x = 3", &s).unwrap();
        assert_eq!(f, Formula::Eq(Term::var("x"), Term::cnst(3i64)));
        let g = parse("x != y", &s).unwrap();
        assert_eq!(g, Formula::Eq(Term::var("x"), Term::var("y")).not());
    }

    #[test]
    fn parses_implication_as_sugar() {
        let s = schema();
        let f = parse("S(1) -> S(2)", &s).unwrap();
        // !S(1) \/ S(2)
        match f {
            Formula::Or(parts) => {
                assert!(matches!(parts[0], Formula::Not(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_parens_and_true_false() {
        let s = schema();
        assert_eq!(parse("true", &s).unwrap(), Formula::True);
        assert_eq!(parse("(false)", &s).unwrap(), Formula::False);
        let f = parse("(S(1) \\/ S(2)) /\\ S(3)", &s).unwrap();
        assert!(matches!(f, Formula::And(_)));
    }

    #[test]
    fn rejects_unknown_relation_and_arity() {
        let s = schema();
        assert!(matches!(
            parse("Q(x)", &s),
            Err(LogicError::UnknownRelation(_))
        ));
        assert!(matches!(
            parse("R(x)", &s),
            Err(LogicError::ArityMismatch { .. })
        ));
        assert!(matches!(
            parse("S(x, y)", &s),
            Err(LogicError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn rejects_syntax_errors() {
        let s = schema();
        for bad in [
            "R(x,",
            "exists . S(1)",
            "exists x S(1)",
            "S(1) /\\",
            "(S(1)",
            "S('abc)",
            "",
            "S(1)) ",
            "x",
            "= 3",
        ] {
            assert!(parse(bad, &s).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn free_variables_of_parsed_query() {
        let s = schema();
        let f = parse("exists x. R(x, y) /\\ S(z)", &s).unwrap();
        let fv = free_vars(&f);
        assert_eq!(
            fv.into_iter().collect::<Vec<_>>(),
            vec!["y".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn keyword_prefix_identifiers_are_variables() {
        // "orbit" starts with "or" but must lex as an identifier
        let s = schema();
        let f = parse("exists orbit. S(orbit)", &s).unwrap();
        assert!(is_sentence(&f));
        let g = parse("S(android) and S(notx)", &s).unwrap();
        assert_eq!(free_vars(&g).len(), 2);
    }

    #[test]
    fn paper_example_queries_parse() {
        // The query of Proposition 6.2: ∃x R(x); schema there is {R, S}
        // unary.
        let s = Schema::from_relations([Relation::new("Ru", 1), Relation::new("Su", 1)]).unwrap();
        let f = parse("exists x. Ru(x)", &s).unwrap();
        assert!(is_sentence(&f));
        assert_eq!(crate::rank::quantifier_rank(&f), 1);
    }
}

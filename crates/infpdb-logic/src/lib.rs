#![warn(missing_docs)]
//! First-order logic substrate for `infpdb`.
//!
//! Implements the query language of the paper (Section 2.1): first-order
//! formulas `FO[τ, U]` over a relational vocabulary expanded by constants
//! from the universe, together with
//!
//! * a text [`parser`] (`exists x. R(x, y) /\ !S(x)`),
//! * free-variable and substitution machinery ([`vars`]),
//! * quantifier rank and constant counts ([`rank`]) — the parameters `r`
//!   and `s` of the truncation argument in Proposition 6.1,
//! * an active-domain [`eval`]uator justified by Fact 2.1 (answers of
//!   domain-independent queries live in `(adom(D) ∪ adom(φ))^k`),
//! * a small relational [`algebra`] with hash joins, used to evaluate the
//!   existential-conjunctive fragment efficiently,
//! * FO [`view`]s `V : D[τ,U] → D[τ′,U]` with pushforward semantics
//!   (Section 3.1), and
//! * the hierarchical-query [`safety`] analysis that decides whether a
//!   self-join-free conjunctive query admits an extensional "safe plan"
//!   (used by the finite engine's lifted inference), and
//! * the prepare-phase [`compile`] step bundling normalization, an
//!   α-invariant fingerprint, ranking, and safety into one reusable
//!   [`compile::CompiledQuery`] artifact.

pub mod algebra;
pub mod ast;
pub mod compile;
pub mod eval;
pub mod normal;
pub mod parser;
pub mod rank;
pub mod safety;
pub mod vars;
pub mod view;

pub use ast::{Formula, Term, Var};
pub use compile::{CompiledQuery, Connective, QueryComponent};
pub use eval::Evaluator;
pub use parser::parse;
pub use view::FoView;

/// Errors of the logic layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicError {
    /// Syntax error at a byte offset.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A relation name used in a formula is not in the schema.
    UnknownRelation(String),
    /// An atom's argument count does not match the relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arguments in the atom.
        got: usize,
    },
    /// A formula was expected to be a sentence (no free variables).
    NotASentence(Vec<Var>),
    /// A formula is outside the fragment an operation supports.
    UnsupportedFragment(String),
}

impl std::fmt::Display for LogicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            LogicError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            LogicError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation} has arity {expected} but atom has {got} arguments"
            ),
            LogicError::NotASentence(vs) => {
                write!(
                    f,
                    "formula has free variables {vs:?}; a sentence was required"
                )
            }
            LogicError::UnsupportedFragment(m) => write!(f, "unsupported fragment: {m}"),
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LogicError::Parse {
            offset: 3,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(LogicError::UnknownRelation("Q".into())
            .to_string()
            .contains("Q"));
        assert!(LogicError::NotASentence(vec!["x".into()])
            .to_string()
            .contains("free"));
        assert!(LogicError::UnsupportedFragment("neg".into())
            .to_string()
            .contains("neg"));
        assert!(LogicError::ArityMismatch {
            relation: "R".into(),
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("arity 1"));
    }
}
